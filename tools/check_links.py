#!/usr/bin/env python3
"""Offline markdown link checker for the docs CI job.

Validates every inline markdown link in the given files:

* **relative file links** (``docs/streaming.md``, ``../README.md``) must
  point at an existing file or directory, resolved against the linking
  file's own directory;
* **internal anchors** (``#the-shard-layer``, ``other.md#contract``) must
  match a heading in the target file, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens);
* **external links** (``http://``, ``https://``, ``mailto:``) are skipped —
  the job runs offline by design.

Links inside fenced code blocks are ignored.  Exits non-zero with one line
per broken link, so the CI log names every offender at once.

Usage::

    python tools/check_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set

#: inline link: [text](target) — target captured without title suffix.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(```|~~~)")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor slug: lowercase, drop punctuation,
    spaces become hyphens (inline code/emphasis markers stripped)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_code_blocks(lines: List[str]) -> List[str]:
    """The lines outside fenced code blocks (others replaced by '')."""
    kept: List[str] = []
    fenced = False
    for line in lines:
        if _FENCE.match(line.strip()):
            fenced = not fenced
            kept.append("")
            continue
        kept.append("" if fenced else line)
    return kept


def heading_slugs(path: Path, cache: Dict[Path, Set[str]]) -> Set[str]:
    """All anchor slugs of a markdown file (duplicate-suffix rule included)."""
    resolved = path.resolve()
    slugs = cache.get(resolved)
    if slugs is not None:
        return slugs
    slugs = set()
    seen: Dict[str, int] = {}
    lines = strip_code_blocks(path.read_text().splitlines())
    for line in lines:
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    cache[resolved] = slugs
    return slugs


def check_file(path: Path, cache: Dict[Path, Set[str]]) -> List[str]:
    """All broken-link complaints for one markdown file."""
    problems: List[str] = []
    lines = strip_code_blocks(path.read_text().splitlines())
    for number, line in enumerate(lines, start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path}:{number}: broken file link -> {target}"
                    )
                    continue
                anchor_host = resolved
            else:
                anchor_host = path
            if anchor:
                if anchor_host.is_dir() or anchor_host.suffix != ".md":
                    problems.append(
                        f"{path}:{number}: anchor into non-markdown -> {target}"
                    )
                elif anchor not in heading_slugs(anchor_host, cache):
                    problems.append(
                        f"{path}:{number}: broken anchor -> {target}"
                    )
    return problems


def main(argv: List[str]) -> int:
    """Check every file named on the command line; 0 iff all links hold."""
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    cache: Dict[Path, Set[str]] = {}
    problems: List[str] = []
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        checked += 1
        problems.extend(check_file(path, cache))
    for problem in problems:
        print(problem)
    print(f"checked {checked} file(s): "
          f"{'OK' if not problems else f'{len(problems)} problem(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
