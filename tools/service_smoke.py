#!/usr/bin/env python3
"""End-to-end smoke check of the ``repro serve`` daemon for CI.

Boots the real CLI entry point as a subprocess, streams a churn trace at
it over HTTP, and holds the service to the offline parity contract:

1. compute the reference — :func:`repro.stream.driver.replay_trace` over
   the same workload and trace, final energy recorded;
2. ``repro serve`` on an ephemeral-ish port with ``--batch-max 1`` (one
   event per solve, the exact replay discipline) and a snapshot dir;
3. POST the trace through :class:`repro.service.client.ServiceClient`,
   wait for the queue to drain, ``GET /assignment``;
4. **assert the final energy equals the offline replay bit-for-bit**;
5. ``POST /shutdown`` and assert a clean exit (code 0) plus a shutdown
   snapshot on disk.

Exit code 0 means the whole path — CLI flags, HTTP ingestion, the writer
loop, snapshot-consistent reads, graceful drain — works against the same
numbers the offline engine produces.

With ``--trace-out PATH`` the daemon additionally runs with
``--trace-tail`` enabled; the smoke fetches ``GET /debug/trace`` before
shutdown and writes the Chrome trace-event JSON to PATH so CI can upload
it as an inspectable artifact (open in Perfetto / ``chrome://tracing``).

With ``--crash`` the smoke instead drills the durability contract: the
daemon runs with ``--wal --fsync always``, half the trace is ingested and
acknowledged, the process is SIGKILLed mid-life, restarted with
``--restore``, and the check asserts **zero acknowledged events were
lost** and that finishing the trace lands on the exact offline energy —
crash recovery is byte-parity, not best-effort.

Usage::

    python tools/service_smoke.py [--hosts 40] [--events 12] [--port 18351]
    python tools/service_smoke.py --trace-out service-trace.json
    python tools/service_smoke.py --crash
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.network.generator import (  # noqa: E402
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.service import ServiceClient  # noqa: E402
from repro.stream import ChurnConfig, random_churn_trace, replay_trace  # noqa: E402


def main() -> int:
    """Run the smoke sequence; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=40)
    parser.add_argument("--events", type=int, default=12)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--port", type=int, default=18351)
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="run the daemon with --trace-tail and write the /debug/trace "
        "Chrome JSON here (CI uploads it as an artifact)",
    )
    parser.add_argument(
        "--crash",
        action="store_true",
        help="SIGKILL the daemon mid-ingest and assert --restore recovers "
        "every acknowledged event and the exact offline energy",
    )
    args = parser.parse_args()

    # The same synthetic bootstrap `repro serve` performs with these flags.
    config = RandomNetworkConfig(
        hosts=args.hosts, degree=3, services=3,
        products_per_service=6, seed=args.seed,
    )
    network = random_network(config)
    similarity = random_similarity(config)
    trace = random_churn_trace(
        network,
        ChurnConfig(events=args.events, seed=args.seed, constraint_weight=0.3),
    )
    report = replay_trace(network.copy(), similarity.copy(), trace)
    offline_energy = report.records[-1].energy
    print(f"offline replay final energy: {offline_energy}")

    if args.crash:
        return crash_leg(args, trace, offline_energy)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(args.port),
            "--hosts", str(args.hosts), "--degree", "3",
            "--services", "3", "--products", "6",
            "--seed", str(args.seed),
            "--batch-max", "1",
            "--snapshot-dir", tmp,
        ]
        if args.trace_out is not None:
            command += ["--trace-tail", "4096"]
        daemon = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            # works both installed (CI) and straight from a checkout
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    filter(None, [str(REPO_ROOT / "src"),
                                  os.environ.get("PYTHONPATH")])
                ),
            },
        )
        try:
            client = ServiceClient(port=args.port, timeout=10)
            deadline = time.monotonic() + 120
            while True:
                try:
                    client.healthz()
                    break
                except OSError:
                    if daemon.poll() is not None:
                        print(daemon.stdout.read())
                        print("FAIL: daemon exited during startup")
                        return 1
                    if time.monotonic() > deadline:
                        print("FAIL: daemon never answered /healthz")
                        return 1
                    time.sleep(0.2)

            accepted = client.send(trace)
            print(f"ingested {accepted} events over HTTP")
            client.wait_idle(timeout=120)
            payload = client.assignment()
            print(
                f"service final energy: {payload['energy']} "
                f"(version {payload['version']}, "
                f"{payload['events_applied']} events applied)"
            )
            if payload["energy"] != offline_energy:
                print(
                    f"FAIL: energy parity broken — service "
                    f"{payload['energy']} vs offline {offline_energy}"
                )
                return 1
            text = client.metrics_text()
            if f"repro_events_applied_total {len(trace)}" not in text:
                print("FAIL: /metrics does not account for every event")
                return 1
            if "repro_build_info{" not in text:
                print("FAIL: /metrics is missing repro_build_info")
                return 1

            if args.trace_out is not None:
                chrome = client.debug_trace()
                spans = chrome.get("traceEvents", [])
                if not any(e.get("name") == "service.batch" for e in spans):
                    print("FAIL: /debug/trace has no service.batch spans")
                    return 1
                args.trace_out.write_text(json.dumps(chrome) + "\n")
                print(
                    f"trace tail: {len(spans)} events -> {args.trace_out}"
                )

            client.shutdown()
            code = daemon.wait(timeout=120)
            if code != 0:
                print(daemon.stdout.read())
                print(f"FAIL: daemon exited {code} after graceful shutdown")
                return 1
            snapshots = sorted(Path(tmp).glob("snap-*"))
            if not snapshots:
                print("FAIL: graceful shutdown left no snapshot")
                return 1
            print(
                f"clean shutdown, snapshot {snapshots[-1].name} written — OK"
            )
            return 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


def _spawn_daemon(args, tmp: Path, restore: bool) -> subprocess.Popen:
    """Launch ``repro serve`` with the durability flags the crash leg uses."""
    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", str(args.port),
        "--hosts", str(args.hosts), "--degree", "3",
        "--services", "3", "--products", "6",
        "--seed", str(args.seed),
        "--batch-max", "1",
        "--snapshot-dir", str(tmp / "snaps"),
        "--snapshot-every", "3",
        "--wal", str(tmp / "wal"),
        "--fsync", "always",
    ]
    if restore:
        command.append("--restore")
    return subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={
            **os.environ,
            "PYTHONPATH": os.pathsep.join(
                filter(None, [str(REPO_ROOT / "src"),
                              os.environ.get("PYTHONPATH")])
            ),
        },
    )


def _await_healthy(client: ServiceClient, daemon: subprocess.Popen) -> bool:
    deadline = time.monotonic() + 120
    while True:
        try:
            client.healthz()
            return True
        except OSError:
            if daemon.poll() is not None:
                print(daemon.stdout.read())
                print("FAIL: daemon exited during startup")
                return False
            if time.monotonic() > deadline:
                print("FAIL: daemon never answered /healthz")
                return False
            time.sleep(0.2)


def crash_leg(args, trace, offline_energy) -> int:
    """SIGKILL mid-ingest, restart with --restore, demand byte-parity."""
    half = len(trace) // 2
    with tempfile.TemporaryDirectory(prefix="repro-serve-crash-") as tmp:
        tmp = Path(tmp)
        daemon = _spawn_daemon(args, tmp, restore=False)
        try:
            client = ServiceClient(port=args.port, timeout=10)
            if not _await_healthy(client, daemon):
                return 1
            accepted = client.send(trace[:half])
            client.wait_idle(timeout=120)
            pre = client.assignment()
            print(
                f"acknowledged {accepted} events, then SIGKILL "
                f"(version {pre['version']})"
            )
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=60)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        daemon = _spawn_daemon(args, tmp, restore=True)
        try:
            client = ServiceClient(port=args.port, timeout=10)
            if not _await_healthy(client, daemon):
                return 1
            post = client.assignment()
            if post["events_applied"] != half:
                print(
                    f"FAIL: acknowledged events lost — recovered "
                    f"{post['events_applied']}/{half}"
                )
                return 1
            for key in ("assignment", "energy", "version"):
                if post[key] != pre[key]:
                    print(
                        f"FAIL: recovery parity broken on {key}: "
                        f"{post[key]!r} vs {pre[key]!r}"
                    )
                    return 1
            print(
                f"recovered all {half} acknowledged events "
                f"(version {post['version']}) — resuming trace"
            )
            client.send(trace[half:])
            client.wait_idle(timeout=120)
            final = client.assignment()
            if final["energy"] != offline_energy:
                print(
                    f"FAIL: post-recovery energy parity broken — "
                    f"{final['energy']} vs offline {offline_energy}"
                )
                return 1
            if final["version"] != len(trace) + 1:
                print(
                    f"FAIL: post-recovery version {final['version']} != "
                    f"{len(trace) + 1} (boot solve + one per event)"
                )
                return 1
            client.shutdown()
            code = daemon.wait(timeout=120)
            if code != 0:
                print(daemon.stdout.read())
                print(f"FAIL: daemon exited {code} after graceful shutdown")
                return 1
            print(
                "crash leg OK: zero acknowledged events lost, "
                "byte-parity after restore"
            )
            return 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
