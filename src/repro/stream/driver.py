"""Churn-scenario driver: replay an event trace, re-solve, record metrics.

:func:`replay_trace` feeds an event trace through a
:class:`~repro.stream.incremental.DynamicDiversifier`, re-solving after
every event and recording per-event latency, energy, warm/cold mode and
assignment stability.  With ``compare_cold=True`` every event additionally
times a from-scratch cold rebuild+solve of the mutated network — the
baseline the warm-start speedup claims are measured against (the cold
engine sees the same network objects but never mutates them).

The resulting :class:`ChurnReport` renders the per-event table behind
``repro stream`` and feeds ``benchmarks/bench_stream_churn.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.network.constraints import ConstraintSet
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.stream.events import Event
from repro.stream.incremental import DynamicDiversifier, StreamSolveResult

__all__ = ["ChurnRecord", "ChurnReport", "replay_trace"]


@dataclass(frozen=True)
class ChurnRecord:
    """Metrics of one replayed event.

    Attributes:
        step: position in the trace (0-based).
        event: human-readable event description.
        seconds: incremental re-solve latency (plan patch + solver).
        energy: post-event optimal energy.
        warm: whether the re-solve was warm-started.
        iterations: solver sweeps of the re-solve.
        stability: fraction of surviving variables keeping their product.
        hosts / links: network size after the event.
        cold_seconds / cold_energy: from-scratch rebuild+solve baseline for
            the same state (None unless the replay compared cold).
        shards_solved / shards_total: dirty-vs-total shard counts of a
            sharded replay (None for the monolithic engine).
    """

    step: int
    event: str
    seconds: float
    energy: float
    warm: bool
    iterations: int
    stability: float
    hosts: int
    links: int
    cold_seconds: Optional[float] = None
    cold_energy: Optional[float] = None
    shards_solved: Optional[int] = None
    shards_total: Optional[int] = None

    @property
    def speedup(self) -> Optional[float]:
        """cold / incremental latency, when a cold baseline was timed."""
        if self.cold_seconds is None or self.seconds <= 0:
            return None
        return self.cold_seconds / self.seconds

    def row(self) -> str:
        """One formatted per-event row for the churn table."""
        mode = "warm" if self.warm else "cold"
        text = (
            f"[{self.step:>3}] {self.event:<28} {mode:<4} "
            f"{1000 * self.seconds:8.1f}ms  E={self.energy:10.4f}  "
            f"stab={self.stability:5.3f}  it={self.iterations:<3} "
            f"hosts={self.hosts:<4} links={self.links}"
        )
        if self.shards_total is not None:
            text += f" shards={self.shards_solved}/{self.shards_total}"
        if self.cold_seconds is not None:
            text += (
                f"  cold={1000 * self.cold_seconds:8.1f}ms"
                f" ({self.speedup:4.1f}x)"
            )
        return text


@dataclass
class ChurnReport:
    """Replay outcome: the initial solve plus one record per event."""

    initial: StreamSolveResult
    records: List[ChurnRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Total incremental re-solve time over the trace."""
        return sum(r.seconds for r in self.records)

    @property
    def total_cold_seconds(self) -> Optional[float]:
        """Total cold-baseline time, or None when not compared."""
        timed = [r.cold_seconds for r in self.records if r.cold_seconds is not None]
        return sum(timed) if timed else None

    @property
    def warm_count(self) -> int:
        """Number of events re-solved on the warm path."""
        return sum(1 for r in self.records if r.warm)

    @property
    def mean_stability(self) -> float:
        """Mean per-event assignment stability (1.0 with no records)."""
        if not self.records:
            return 1.0
        return sum(r.stability for r in self.records) / len(self.records)

    def summary(self) -> str:
        """Multi-line replay summary (totals, stability, speedup)."""
        lines = [
            f"initial solve: {1000 * self.initial.seconds:.1f}ms, "
            f"energy {self.initial.energy:.4f}",
            f"{len(self.records)} events, {self.warm_count} warm re-solves, "
            f"mean stability {self.mean_stability:.3f}, "
            f"total incremental time {1000 * self.total_seconds:.1f}ms",
        ]
        cold = self.total_cold_seconds
        if cold is not None and self.total_seconds > 0:
            lines.append(
                f"cold rebuild+solve baseline {1000 * cold:.1f}ms "
                f"→ warm speedup {cold / self.total_seconds:.1f}x"
            )
        return "\n".join(lines)

    def format_rows(self) -> str:
        """The per-event table, one row per record."""
        return "\n".join(record.row() for record in self.records)


def replay_trace(
    network: Network,
    similarity: SimilarityTable,
    trace: Sequence[Event],
    solver: str = "trws",
    warm_start: bool = True,
    compare_cold: bool = False,
    rebuild_fraction: float = 0.25,
    sharded: bool = False,
    constraints: Optional[ConstraintSet] = None,
    **engine_options,
) -> ChurnReport:
    """Replay ``trace`` over ``network``, re-solving after every event.

    Mutates ``network``, ``similarity`` and ``constraints`` in place (pass
    copies to keep the originals).  ``engine_options`` are forwarded to
    :class:`DynamicDiversifier` (cost model + solver options);
    ``sharded=True`` switches the engine to per-component re-solves and
    fills the records' shard columns.

    With ``compare_cold=True`` each event also times a fresh engine's cold
    solve of the same mutated state (same network, similarity *and*
    constraint set), filling the records' ``cold_seconds``/``cold_energy``
    — the measured baseline for the warm-start speedup and the
    energy-parity check.

    >>> from repro.network import chain_network
    >>> from repro.nvd import SimilarityTable
    >>> from repro.stream import LinkRemove, PinService
    >>> net = chain_network(8)
    >>> table = SimilarityTable(products=["p0", "p1"])
    >>> report = replay_trace(
    ...     net, table,
    ...     [LinkRemove("h1", "h2"), PinService("h0", "svc", "p0")],
    ... )
    >>> len(report.records)
    2
    >>> report.warm_count
    2
    >>> report.records[1].event
    'pin h0.svc=p0'
    """
    engine = DynamicDiversifier(
        network,
        similarity,
        solver=solver,
        warm_start=warm_start,
        rebuild_fraction=rebuild_fraction,
        sharded=sharded,
        constraints=constraints,
        **engine_options,
    )
    report = ChurnReport(initial=engine.solve())
    for step, event in enumerate(trace):
        engine.apply(event)
        result = engine.solve()
        cold_seconds = cold_energy = None
        if compare_cold:
            cold_engine = DynamicDiversifier(
                network,
                similarity,
                solver=solver,
                warm_start=False,
                constraints=engine.constraints,
                **engine_options,
            )
            cold_result = cold_engine.solve()
            cold_seconds = cold_result.seconds
            cold_energy = cold_result.energy
        report.records.append(
            ChurnRecord(
                step=step,
                event=event.describe(),
                seconds=result.seconds,
                energy=result.energy,
                warm=result.warm,
                iterations=result.iterations,
                stability=result.stability,
                hosts=len(network),
                links=network.edge_count(),
                cold_seconds=cold_seconds,
                cold_energy=cold_energy,
                shards_solved=result.shards_solved if sharded else None,
                shards_total=result.shards_total if sharded else None,
            )
        )
    return report
