"""A live, delta-updatable MRF array plan over a mutating network.

:class:`StreamPlan` is the incremental counterpart of
:func:`repro.core.costs.build_mrf` + :class:`repro.mrf.vectorized.MRFArrays`
for the (constrained) diversification MRF.  It owns

* the ``(host, service) → node`` variable mapping and candidate ranges,
* the live operator :class:`~repro.network.constraints.ConstraintSet` and
  the unary masks / intra-host combination tables it compiles to,
* the shared stack of λ·similarity cost matrices (deduplicated by candidate
  range, exactly like the batch builder),
* the per-(link, shared-service) edge list, and
* a live :class:`MRFArrays` plan plus the solver's directed-message array,

and keeps all of them aligned while churn events arrive:

* **similarity updates** rewrite the affected cost-matrix entries and patch
  the plan's cost stack in place — no structural change, message state
  untouched;
* **link events** append/delete edge rows and the matching message slots
  eagerly, then re-derive the plan's slot/level structure lazily on
  :meth:`flush` (one vectorized pass however many events are pending);
* **host events** additionally append/remove node rows, remapping node ids,
  previous-solution labels and edge endpoints;
* **pin/forbid events** recompute one node's hard-mask unary from the live
  constraint set and write it in place (:meth:`MRFArrays.set_unary`) —
  value-only, like a feed update, but with a *stranded* flag when the mask
  lands on the label previously in use;
* **combination updates** recompute the affected hosts' intra-host tables
  from the live set: in place when the node pair already carries a table,
  an eager edge append/delete (through the lazy :meth:`flush` path) when a
  pair gains its first rule or retires its last.

See ``docs/streaming.md`` for the per-event contract table.

Because padded message entries are 0 — the additive identity — new slots
start cold at 0 while surviving slots keep their near-fixed-point values,
which is what makes the warm start work across structural deltas.

For the sharded re-solve path the plan additionally keeps a **touched set**
of (host, service) variable keys — every event adds the variables whose
node, incident edges or cost matrices it changed.  Keys are stable across
the node renumbering of host churn, so the incremental engine can map each
event to the connected components it dirtied (link adds merge shards, link
removals split them — both endpoints are touched either way, so every
resulting component carries a touched key) and leave every clean shard's
messages, labels and cached energy untouched.  :meth:`StreamPlan.parts`
exposes the raw arrays the shard partitioner consumes, which is how the
sharded engine skips the O(network) global slot/level re-derivation
entirely.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro import obs
from repro.core.compile import COMBO_META as _COMBO_META
from repro.core.costs import HARD_COST
from repro.mrf.vectorized import MRFArrays
from repro.network.constraints import GLOBAL, ConstraintSet
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.stream.events import (
    AllowRange,
    CombinationUpdate,
    Event,
    ForbidRange,
    HostJoin,
    HostLeave,
    LinkAdd,
    LinkRemove,
    PinService,
    SimilarityUpdate,
    UnpinService,
    apply_constraint_event,
)

__all__ = ["StreamPlan"]

#: (candidate range of first endpoint, of second endpoint, λ·service weight)
_MatrixKey = Tuple[Tuple[str, ...], Tuple[str, ...], float]


class StreamPlan:
    """Delta-updated MRF plan + message state for one live network.

    Args:
        network: the live network (mutated in place by :meth:`apply`).
        similarity: the live similarity table (likewise).
        unary_constant: the paper's ``Pr_const`` per-label base cost.
        pairwise_weight: λ scaling of the similarity penalty.
        service_weights: optional per-service multipliers of λ.
        track_touched: pay the O(edges) endpoint scan that maps a
            similarity event onto the :attr:`touched` variable-key set
            (the sharded engine's dirtiness signal).  Structural events
            always record their own (cheap, O(delta)) touched keys; a
            monolithic consumer turns this flag off to keep feed updates
            off the scan.
        constraints: the live operator constraint set.  Fix/Forbid masks
            and combination tables are compiled in, and constraint events
            (:class:`~repro.stream.events.PinService` & co.) keep plan and
            set aligned: unary masks rewrite in place
            (:meth:`MRFArrays.set_unary`), combination deltas edit the
            intra-host edges through the eager edge-edit + lazy
            :meth:`flush` path.

    The soft-preference-carrying cases stay on the batch
    :func:`~repro.core.costs.build_mrf` path; streaming covers the
    (constrained) MRF that re-solves at churn frequency.
    """

    def __init__(
        self,
        network: Network,
        similarity: SimilarityTable,
        unary_constant: float = 0.01,
        pairwise_weight: float = 1.0,
        service_weights: Optional[Mapping[str, float]] = None,
        track_touched: bool = True,
        constraints: Optional[ConstraintSet] = None,
    ) -> None:
        if pairwise_weight < 0:
            raise ValueError("pairwise_weight must be non-negative")
        if service_weights and any(w < 0 for w in service_weights.values()):
            raise ValueError("service weights must be non-negative")
        self.network = network
        self.similarity = similarity
        self.unary_constant = float(unary_constant)
        self.pairwise_weight = float(pairwise_weight)
        self.service_weights = dict(service_weights or {})
        self.track_touched = track_touched
        #: the live constraint set (mutated in place by constraint events).
        self.constraints = constraints if constraints is not None else ConstraintSet()
        self.rebuild()

    # ------------------------------------------------------------ cold build

    def rebuild(self) -> None:
        """Full cold build from the current network/similarity state.

        Also the fallback when the incremental engine judges a pending
        delta too large to be worth patching: messages restart at zero and
        the previous-solution labels are dropped.

        The build runs through the direct network→parts compiler
        (:func:`repro.core.compile.compile_stream_parts`) — the same
        variable/edge/matrix state the per-event append path maintains,
        emitted vectorized, so the incremental engine's cold-rebuild
        escalation costs NumPy passes instead of per-edge Python loops.
        """
        with obs.span("stream.rebuild", cat="stream"):
            self._rebuild()

    def _rebuild(self) -> None:
        """The cold-build body behind :meth:`rebuild`."""
        from repro.core.compile import compile_stream_parts

        parts = compile_stream_parts(
            self.network,
            self.similarity,
            unary_constant=self.unary_constant,
            pairwise_weight=self.pairwise_weight,
            service_weights=self.service_weights or None,
            constraints=self.constraints,
        )
        #: (host, service) keys of variables touched since the last solve —
        #: stable across node renumbering, consumed by the sharded engine.
        self.touched: Set[Tuple[str, str]] = set()
        self.variables: List[Tuple[str, str]] = parts.variables
        self.index: Dict[Tuple[str, str], int] = parts.index
        self.candidates: List[Tuple[str, ...]] = parts.candidates
        self._unaries: List[np.ndarray] = parts.unary_vectors()

        self._matrices: List[np.ndarray] = parts.matrices
        self._matrix_meta: List[_MatrixKey] = list(parts.matrix_meta)
        # Combination tables carry the placeholder meta; they never join
        # the similarity dedup index.
        self._matrix_ids: Dict[_MatrixKey, int] = {
            key: cid
            for cid, key in enumerate(self._matrix_meta)
            if key[0]
        }
        self._edge_keys: List[Tuple[Tuple[str, str], object]] = list(
            parts.edge_keys
        )
        #: (host, service_lo, service_hi) → cost id of the pair's live
        #: combination table (service order follows node order).
        self._combo_cids: Dict[Tuple[str, str, str], int] = {
            (key[0][0], key[1][0], key[1][1]): int(parts.edge_cid[e])
            for e, key in enumerate(parts.edge_keys)
            if isinstance(key[1], tuple)
        }
        self._edge_first: List[int] = parts.edge_first.tolist()
        self._edge_second: List[int] = parts.edge_second.tolist()
        self._edge_cid: List[int] = parts.edge_cid.tolist()

        self.plan = MRFArrays.from_dense(
            parts.unary,
            parts.label_counts,
            parts.edge_first,
            parts.edge_second,
            parts.edge_cid,
            self._matrices,
        )
        self.messages = self.plan.zero_messages()
        #: previous-solution labels, kept aligned across deltas (None until
        #: the engine records a solve).
        self.labels: Optional[np.ndarray] = None
        self._edges_dirty = False
        self._nodes_dirty = False
        self.reset_dirty_counters()

    def reset_dirty_counters(self) -> None:
        """Zero the per-solve churn counters (called after each solve)."""
        self.dirty_nodes = 0
        self.dirty_edges = 0
        #: unary-mask rewrites since the last solve — bulk constraint
        #: loads count against the rebuild threshold just like topology.
        self.dirty_masked = 0
        #: largest |Δ| applied to any cost-matrix entry since the last
        #: solve — the engine escalates its warm sweep budget when a feed
        #: update moves costs far enough to shift the message fixed point.
        self.dirty_cost = 0.0
        #: True when a constraint delta hard-masked the previous solution
        #: (the pinned/forbidden label was the one in use) — the engine
        #: then re-solves with its full budget, since the previous basin
        #: is no longer feasible.
        self.stranded = False
        self.touched.clear()

    # ------------------------------------------------------------ event apply

    def apply(self, event: Event) -> None:
        """Mutate network/similarity and patch the live plan for one event.

        While tracing is enabled each apply records a ``stream.apply`` span
        tagged with the event type; disabled, the extra cost is one branch.
        """
        if not obs.enabled():
            self._dispatch(event)
            return
        with obs.span(
            "stream.apply", cat="stream", event=type(event).__name__
        ):
            self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Route one event to its typed patch handler."""
        if isinstance(event, SimilarityUpdate):
            self._apply_similarity(event)
        elif isinstance(event, LinkAdd):
            self._apply_link_add(event)
        elif isinstance(event, LinkRemove):
            self._apply_link_remove(event)
        elif isinstance(event, HostJoin):
            self._apply_host_join(event)
        elif isinstance(event, HostLeave):
            self._apply_host_leave(event)
        elif isinstance(
            event, (PinService, UnpinService, ForbidRange, AllowRange)
        ):
            self._apply_unary_constraint(event)
        elif isinstance(event, CombinationUpdate):
            self._apply_combination(event)
        else:  # pragma: no cover - type escape hatch
            raise TypeError(f"unknown event {event!r}")

    def flush(self) -> MRFArrays:
        """Materialise pending structural deltas into the array plan.

        Value-only updates were already patched in place; this re-derives
        the slot/level structure once for however many link/host events
        accumulated.  Returns the (possibly new) plan.
        """
        if (self._nodes_dirty or self._edges_dirty) and obs.enabled():
            with obs.span(
                "stream.flush", cat="stream",
                nodes_dirty=self._nodes_dirty, edges_dirty=self._edges_dirty,
            ):
                return self._flush()
        return self._flush()

    def _flush(self) -> MRFArrays:
        """The structural-delta materialisation behind :meth:`flush`."""
        edge_first = np.asarray(self._edge_first, dtype=np.int64)
        edge_second = np.asarray(self._edge_second, dtype=np.int64)
        edge_cid = np.asarray(self._edge_cid, dtype=np.int64)
        if self._nodes_dirty:
            widest = max((len(u) for u in self._unaries), default=0)
            lmax = max(self.plan.lmax, widest)
            if lmax > self.plan.lmax:
                # Wider label spaces joined: grow the message padding; the
                # padded-message convention is 0, so this is exact.
                self.messages = np.pad(
                    self.messages, ((0, 0), (0, lmax - self.plan.lmax))
                )
            self.plan = MRFArrays.from_parts(
                self._unaries, edge_first, edge_second, edge_cid,
                self._matrices, lmax=lmax,
            )
        elif self._edges_dirty:
            self.plan.replace_edges(
                edge_first, edge_second, edge_cid, self._matrices
            )
        self._nodes_dirty = False
        self._edges_dirty = False
        return self.plan

    # ------------------------------------------------------------ shard view

    @property
    def node_count(self) -> int:
        """Live variable count (tracks pending deltas, unlike ``plan``)."""
        return len(self.variables)

    @property
    def edge_count(self) -> int:
        """Live edge count (tracks pending deltas, unlike ``plan``)."""
        return len(self._edge_first)

    def parts(self):
        """The raw plan parts, as the shard partitioner consumes them.

        Returns ``(unaries, edge_first, edge_second, edge_cid, matrices)``
        reflecting every applied event — including structural deltas not
        yet flushed into the global :class:`MRFArrays` plan, which is what
        lets the sharded engine partition without paying the global
        slot/level re-derivation.
        """
        return (
            self._unaries,
            np.asarray(self._edge_first, dtype=np.int64),
            np.asarray(self._edge_second, dtype=np.int64),
            np.asarray(self._edge_cid, dtype=np.int64),
            self._matrices,
        )

    def pad_messages(self) -> int:
        """Grow the message padding to the widest live label space.

        Returns the (possibly new) message width.  Padded message entries
        are the 0 additive identity, so widening is exact — the same
        invariant :meth:`flush` relies on.
        """
        widest = max((len(u) for u in self._unaries), default=0)
        width = self.messages.shape[1]
        if widest > width:
            self.messages = np.pad(self.messages, ((0, 0), (0, widest - width)))
            width = widest
        return width

    # -------------------------------------------------------------- solution

    def record_labels(self, labels: np.ndarray) -> None:
        """Store the latest solution labels for label-warm re-solves."""
        self.labels = np.asarray(labels, dtype=np.int64).copy()

    def assignment_values(
        self, labels: np.ndarray
    ) -> Dict[Tuple[str, str], str]:
        """Decode a labelling into a (host, service) → product mapping."""
        return {
            variable: self.candidates[node][int(labels[node])]
            for node, variable in enumerate(self.variables)
        }

    # ------------------------------------------------------------- internals

    def _append_variable(self, host: str, service: str) -> None:
        range_ = self.network.candidates(host, service)
        self.index[(host, service)] = len(self.variables)
        self.variables.append((host, service))
        self.candidates.append(range_)
        self._unaries.append(np.full(len(range_), self.unary_constant))
        # Touched-set bookkeeping: a rebuild touches everything and then
        # clears the set, so only post-rebuild appends persist.
        self.touched.add((host, service))

    def _weight(self, service: str) -> float:
        return self.pairwise_weight * float(self.service_weights.get(service, 1.0))

    def _matrix_for(
        self, range_a: Tuple[str, ...], range_b: Tuple[str, ...], weight: float
    ) -> Tuple[int, bool]:
        """Cost id for a candidate-range pair, plus whether the stored
        orientation is the transpose of the requested one (the caller then
        flips the edge's endpoints instead of storing a second matrix)."""
        key = (range_a, range_b, weight)
        cid = self._matrix_ids.get(key)
        if cid is not None:
            return cid, False
        flipped = self._matrix_ids.get((range_b, range_a, weight))
        if flipped is not None:
            return flipped, True
        matrix = np.empty((len(range_a), len(range_b)))
        for row, product_a in enumerate(range_a):
            for col, product_b in enumerate(range_b):
                matrix[row, col] = weight * self.similarity.get(product_a, product_b)
        cid = len(self._matrices)
        self._matrix_ids[key] = cid
        self._matrices.append(matrix)
        self._matrix_meta.append(key)
        return cid, False

    def _append_edge(self, a: str, b: str, service: str) -> None:
        node_a = self.index[(a, service)]
        node_b = self.index[(b, service)]
        cid, flip = self._matrix_for(
            self.candidates[node_a], self.candidates[node_b], self._weight(service)
        )
        first, second = (node_b, node_a) if flip else (node_a, node_b)
        self._edge_keys.append((_link_key(a, b), service))
        self._edge_first.append(first)
        self._edge_second.append(second)
        self._edge_cid.append(cid)
        self.touched.add((a, service))
        self.touched.add((b, service))

    # ------------------------------------------------------- event internals

    def _apply_similarity(self, event: SimilarityUpdate) -> None:
        a, b, value = event.product_a, event.product_b, event.value
        self.similarity.set(a, b, value)
        changed_cids = set()
        for cid, (range_a, range_b, weight) in enumerate(self._matrix_meta):
            matrix = self._matrices[cid]
            changed = False
            if a in range_a and b in range_b:
                row, col = range_a.index(a), range_b.index(b)
                self.dirty_cost = max(
                    self.dirty_cost, abs(weight * value - matrix[row, col])
                )
                matrix[row, col] = weight * value
                changed = True
            if b in range_a and a in range_b:
                row, col = range_a.index(b), range_b.index(a)
                self.dirty_cost = max(
                    self.dirty_cost, abs(weight * value - matrix[row, col])
                )
                matrix[row, col] = weight * value
                changed = True
            if changed:
                changed_cids.add(cid)
                # Matrices born after the last flush/rebuild (a pending
                # structural delta allocated them) are not in the live
                # plan's stack yet; the pending flush — or the sharded
                # path's per-shard rebuild — picks the new value up from
                # self._matrices, so only patch ids the stack knows.
                if cid < self.plan.stacked:
                    self.plan.set_cost_matrix(cid, matrix)
        if changed_cids and self.track_touched:
            # Shards whose edges price through a changed matrix must
            # re-solve; their endpoints mark them dirty (one pass for the
            # whole event, however many matrices it hit).
            for e, edge_cid in enumerate(self._edge_cid):
                if edge_cid in changed_cids:
                    self.touched.add(self.variables[self._edge_first[e]])
                    self.touched.add(self.variables[self._edge_second[e]])

    def _apply_unary_constraint(self, event) -> None:
        """Pin/Unpin/Forbid/Allow: mutate the set, rewrite one unary mask.

        The node's unary is recomputed from the *live constraint set* (base
        ``Pr_const`` plus every Fix/Forbid mask in constraint order — the
        exact accumulation of the batch compiler) and written onto the
        plan in place (:meth:`MRFArrays.set_unary`): a value-only delta,
        no slot/level/message change.
        """
        apply_constraint_event(self.network, self.constraints, event)
        self._refresh_unary(self.index[(event.host, event.service)])

    def _refresh_unary(self, node: int) -> None:
        """Recompute one node's unary from the live constraint set."""
        from repro.core.compile import constraint_mask

        host, service = self.variables[node]
        vector = np.full(len(self.candidates[node]), self.unary_constant)
        for constraint in self.constraints.unary_constraints_for(host, service):
            vector = vector + constraint_mask(
                self.candidates[node], constraint
            )
        self._unaries[node] = vector
        if not self._nodes_dirty:
            # Node ids in the live plan only diverge while a host delta is
            # pending; until then the in-place write keeps the plan hot.
            self.plan.set_unary(node, vector)
        if (
            self.labels is not None
            and vector[int(self.labels[node])] >= HARD_COST
        ):
            self.stranded = True
        self.touched.add((host, service))
        self.dirty_masked += 1

    def _apply_combination(self, event: CombinationUpdate) -> None:
        """Combination add/retire: mutate the set, patch intra-host edges.

        Each affected host's (service, service) pair gets its table
        recomputed from the live set — in-place (:meth:`MRFArrays.
        set_cost_matrix`) when the pair already carries a table, an eager
        edge append (new message slots at the 0 identity) when the rule
        couples the pair for the first time, an edge deletion when the
        last rule on the pair is retired.  Structural cases go through the
        usual lazy :meth:`flush`.
        """
        apply_constraint_event(self.network, self.constraints, event)
        constraint = event.constraint
        hosts = (
            self.network.hosts
            if constraint.host == GLOBAL
            else [constraint.host]
        )
        for host in hosts:
            if not (
                self.network.has_service(host, constraint.service_m)
                and self.network.has_service(host, constraint.service_n)
            ):
                continue
            self._refresh_combination(
                host, constraint.service_m, constraint.service_n
            )

    def _refresh_combination(
        self, host: str, service_m: str, service_n: str
    ) -> None:
        """Recompute one host pair's combination table from the live set."""
        from repro.core.compile import write_combination

        node_m = self.index[(host, service_m)]
        node_n = self.index[(host, service_n)]
        lo, hi = min(node_m, node_n), max(node_m, node_n)
        svc_lo = self.variables[lo][1]
        svc_hi = self.variables[hi][1]
        table = np.zeros(
            (len(self.candidates[lo]), len(self.candidates[hi]))
        )
        for constraint in self.constraints.combination_constraints():
            if constraint.host not in (host, GLOBAL):
                continue
            if not (
                self.network.has_service(host, constraint.service_m)
                and self.network.has_service(host, constraint.service_n)
            ):
                continue
            c_m = self.index[(host, constraint.service_m)]
            c_n = self.index[(host, constraint.service_n)]
            if {c_m, c_n} != {lo, hi}:
                continue
            write_combination(
                constraint,
                self.candidates[c_m],
                self.candidates[c_n],
                c_m == lo,
                table,
            )

        key = (host, svc_lo, svc_hi)
        cid = self._combo_cids.get(key)
        if table.any():
            if cid is None:
                cid = len(self._matrices)
                self._matrices.append(table)
                self._matrix_meta.append(_COMBO_META)
                self._combo_cids[key] = cid
                self._edge_keys.append(((host, host), (svc_lo, svc_hi)))
                self._edge_first.append(lo)
                self._edge_second.append(hi)
                self._edge_cid.append(cid)
                self.messages = np.vstack(
                    [self.messages, np.zeros((2, self.messages.shape[1]))]
                )
                self._edges_dirty = True
            else:
                self._matrices[cid][...] = table
                if cid < self.plan.stacked:
                    self.plan.set_cost_matrix(cid, table)
            if (
                self.labels is not None
                and table[int(self.labels[lo]), int(self.labels[hi])]
                >= HARD_COST
            ):
                self.stranded = True
        elif cid is not None:
            # The pair's last rule was retired: the edge goes with it (a
            # cold compile of the current set would not emit it either).
            # The orphaned table stays in the stack — cost ids are
            # append-only — and is dropped by the next rebuild.
            positions = [
                e
                for e, k in enumerate(self._edge_keys)
                if k == ((host, host), (svc_lo, svc_hi))
            ]
            self._delete_edges(positions)
            del self._combo_cids[key]
        self.touched.add((host, svc_lo))
        self.touched.add((host, svc_hi))
        self.dirty_edges += 1

    def _apply_link_add(self, event: LinkAdd) -> None:
        self.network.add_link(event.a, event.b)
        added = 0
        for service in self.network.shared_services(event.a, event.b):
            self._append_edge(event.a, event.b, service)
            added += 1
        if added:
            self.messages = np.vstack(
                [self.messages, np.zeros((2 * added, self.messages.shape[1]))]
            )
            self._edges_dirty = True
        self.dirty_edges += added

    def _apply_link_remove(self, event: LinkRemove) -> None:
        self.network.remove_link(event.a, event.b)
        key = _link_key(event.a, event.b)
        positions = [
            e for e, (link, _service) in enumerate(self._edge_keys) if link == key
        ]
        for e in positions:
            # A removal can split a shard; both halves keep a touched key.
            self.touched.add(self.variables[self._edge_first[e]])
            self.touched.add(self.variables[self._edge_second[e]])
        self._delete_edges(positions)
        self.dirty_edges += len(positions)

    def _apply_host_join(self, event: HostJoin) -> None:
        self.network.add_host(event.host, event.service_map())
        for service in self.network.services_of(event.host):
            self._append_variable(event.host, service)
            if self.labels is not None:
                # New variables start at label 0 (flat unaries make any
                # start equivalent; ICM repositions them in one sweep).
                self.labels = np.append(self.labels, 0)
            self.dirty_nodes += 1
        self._nodes_dirty = True
        for peer in event.links:
            self._apply_link_add(LinkAdd(a=event.host, b=peer))
        # GLOBAL combination rules apply to the newcomer immediately — a
        # cold compile of the same state would emit its tables too.
        pairs = set()
        for constraint in self.constraints.combination_constraints():
            if constraint.host == GLOBAL and (
                self.network.has_service(event.host, constraint.service_m)
                and self.network.has_service(event.host, constraint.service_n)
            ):
                pairs.add(
                    frozenset((constraint.service_m, constraint.service_n))
                )
        for pair in sorted(sorted(p) for p in pairs):
            self._refresh_combination(event.host, pair[0], pair[1])

    def _apply_host_leave(self, event: HostLeave) -> None:
        host = event.host
        removed = [
            self.index[(host, service)]
            for service in self.network.services_of(host)
        ]
        self.network.remove_host(host)
        # The host's constraints vanish with it (GLOBAL rules survive);
        # its combination edges are deleted by the endpoint scan below.
        self.constraints.prune_host(host)
        self._combo_cids = {
            key: cid
            for key, cid in self._combo_cids.items()
            if key[0] != host
        }
        removed_set = set(removed)
        positions = [
            e
            for e in range(len(self._edge_keys))
            if self._edge_first[e] in removed_set
            or self._edge_second[e] in removed_set
        ]
        for e in positions:
            # Surviving neighbours mark the shrunken/split shards dirty
            # (the removed variables' own keys vanish with them).
            for node in (self._edge_first[e], self._edge_second[e]):
                if node not in removed_set:
                    self.touched.add(self.variables[node])
        self._delete_edges(positions)
        self.dirty_edges += len(positions)

        # Renumber surviving nodes (order preserved).
        keep = [n for n in range(len(self.variables)) if n not in removed_set]
        remap = {old: new for new, old in enumerate(keep)}
        self.variables = [self.variables[n] for n in keep]
        self.candidates = [self.candidates[n] for n in keep]
        self._unaries = [self._unaries[n] for n in keep]
        self.index = {variable: n for n, variable in enumerate(self.variables)}
        if self.labels is not None:
            self.labels = self.labels[keep]
        self._edge_first = [remap[n] for n in self._edge_first]
        self._edge_second = [remap[n] for n in self._edge_second]
        self._nodes_dirty = True
        self.dirty_nodes += len(removed)

    def _delete_edges(self, positions: List[int]) -> None:
        if not positions:
            return
        drop = set(positions)
        keep = [e for e in range(len(self._edge_keys)) if e not in drop]
        self._edge_keys = [self._edge_keys[e] for e in keep]
        self._edge_first = [self._edge_first[e] for e in keep]
        self._edge_second = [self._edge_second[e] for e in keep]
        self._edge_cid = [self._edge_cid[e] for e in keep]
        slots = [s for e in positions for s in (2 * e, 2 * e + 1)]
        self.messages = np.delete(self.messages, slots, axis=0)
        self._edges_dirty = True


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)
