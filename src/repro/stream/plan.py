"""A live, delta-updatable MRF array plan over a mutating network.

:class:`StreamPlan` is the incremental counterpart of
:func:`repro.core.costs.build_mrf` + :class:`repro.mrf.vectorized.MRFArrays`
for the unconstrained diversification MRF.  It owns

* the ``(host, service) → node`` variable mapping and candidate ranges,
* the shared stack of λ·similarity cost matrices (deduplicated by candidate
  range, exactly like the batch builder),
* the per-(link, shared-service) edge list, and
* a live :class:`MRFArrays` plan plus the solver's directed-message array,

and keeps all of them aligned while churn events arrive:

* **similarity updates** rewrite the affected cost-matrix entries and patch
  the plan's cost stack in place — no structural change, message state
  untouched;
* **link events** append/delete edge rows and the matching message slots
  eagerly, then re-derive the plan's slot/level structure lazily on
  :meth:`flush` (one vectorized pass however many events are pending);
* **host events** additionally append/remove node rows, remapping node ids,
  previous-solution labels and edge endpoints.

Because padded message entries are 0 — the additive identity — new slots
start cold at 0 while surviving slots keep their near-fixed-point values,
which is what makes the warm start work across structural deltas.

For the sharded re-solve path the plan additionally keeps a **touched set**
of (host, service) variable keys — every event adds the variables whose
node, incident edges or cost matrices it changed.  Keys are stable across
the node renumbering of host churn, so the incremental engine can map each
event to the connected components it dirtied (link adds merge shards, link
removals split them — both endpoints are touched either way, so every
resulting component carries a touched key) and leave every clean shard's
messages, labels and cached energy untouched.  :meth:`StreamPlan.parts`
exposes the raw arrays the shard partitioner consumes, which is how the
sharded engine skips the O(network) global slot/level re-derivation
entirely.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.mrf.vectorized import MRFArrays
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.stream.events import (
    Event,
    HostJoin,
    HostLeave,
    LinkAdd,
    LinkRemove,
    SimilarityUpdate,
)

__all__ = ["StreamPlan"]

#: (candidate range of first endpoint, of second endpoint, λ·service weight)
_MatrixKey = Tuple[Tuple[str, ...], Tuple[str, ...], float]


class StreamPlan:
    """Delta-updated MRF plan + message state for one live network.

    Args:
        network: the live network (mutated in place by :meth:`apply`).
        similarity: the live similarity table (likewise).
        unary_constant: the paper's ``Pr_const`` per-label base cost.
        pairwise_weight: λ scaling of the similarity penalty.
        service_weights: optional per-service multipliers of λ.
        track_touched: pay the O(edges) endpoint scan that maps a
            similarity event onto the :attr:`touched` variable-key set
            (the sharded engine's dirtiness signal).  Structural events
            always record their own (cheap, O(delta)) touched keys; a
            monolithic consumer turns this flag off to keep feed updates
            off the scan.

    The constrained/preference-carrying cases stay on the batch
    :func:`~repro.core.costs.build_mrf` path; streaming covers the
    unconstrained MRF, which is what re-solves at churn frequency.
    """

    def __init__(
        self,
        network: Network,
        similarity: SimilarityTable,
        unary_constant: float = 0.01,
        pairwise_weight: float = 1.0,
        service_weights: Optional[Mapping[str, float]] = None,
        track_touched: bool = True,
    ) -> None:
        if pairwise_weight < 0:
            raise ValueError("pairwise_weight must be non-negative")
        if service_weights and any(w < 0 for w in service_weights.values()):
            raise ValueError("service weights must be non-negative")
        self.network = network
        self.similarity = similarity
        self.unary_constant = float(unary_constant)
        self.pairwise_weight = float(pairwise_weight)
        self.service_weights = dict(service_weights or {})
        self.track_touched = track_touched
        self.rebuild()

    # ------------------------------------------------------------ cold build

    def rebuild(self) -> None:
        """Full cold build from the current network/similarity state.

        Also the fallback when the incremental engine judges a pending
        delta too large to be worth patching: messages restart at zero and
        the previous-solution labels are dropped.

        The build runs through the direct network→parts compiler
        (:func:`repro.core.compile.compile_stream_parts`) — the same
        variable/edge/matrix state the per-event append path maintains,
        emitted vectorized, so the incremental engine's cold-rebuild
        escalation costs NumPy passes instead of per-edge Python loops.
        """
        from repro.core.compile import compile_stream_parts

        parts = compile_stream_parts(
            self.network,
            self.similarity,
            unary_constant=self.unary_constant,
            pairwise_weight=self.pairwise_weight,
            service_weights=self.service_weights or None,
        )
        #: (host, service) keys of variables touched since the last solve —
        #: stable across node renumbering, consumed by the sharded engine.
        self.touched: Set[Tuple[str, str]] = set()
        self.variables: List[Tuple[str, str]] = parts.variables
        self.index: Dict[Tuple[str, str], int] = parts.index
        self.candidates: List[Tuple[str, ...]] = parts.candidates
        self._unaries: List[np.ndarray] = parts.unary_vectors()

        self._matrices: List[np.ndarray] = parts.matrices
        self._matrix_meta: List[_MatrixKey] = list(parts.matrix_meta)
        self._matrix_ids: Dict[_MatrixKey, int] = {
            key: cid for cid, key in enumerate(self._matrix_meta)
        }
        self._edge_keys: List[Tuple[Tuple[str, str], str]] = list(
            parts.edge_keys
        )
        self._edge_first: List[int] = parts.edge_first.tolist()
        self._edge_second: List[int] = parts.edge_second.tolist()
        self._edge_cid: List[int] = parts.edge_cid.tolist()

        self.plan = MRFArrays.from_dense(
            parts.unary,
            parts.label_counts,
            parts.edge_first,
            parts.edge_second,
            parts.edge_cid,
            self._matrices,
        )
        self.messages = self.plan.zero_messages()
        #: previous-solution labels, kept aligned across deltas (None until
        #: the engine records a solve).
        self.labels: Optional[np.ndarray] = None
        self._edges_dirty = False
        self._nodes_dirty = False
        self.reset_dirty_counters()

    def reset_dirty_counters(self) -> None:
        """Zero the per-solve churn counters (called after each solve)."""
        self.dirty_nodes = 0
        self.dirty_edges = 0
        #: largest |Δ| applied to any cost-matrix entry since the last
        #: solve — the engine escalates its warm sweep budget when a feed
        #: update moves costs far enough to shift the message fixed point.
        self.dirty_cost = 0.0
        self.touched.clear()

    # ------------------------------------------------------------ event apply

    def apply(self, event: Event) -> None:
        """Mutate network/similarity and patch the live plan for one event."""
        if isinstance(event, SimilarityUpdate):
            self._apply_similarity(event)
        elif isinstance(event, LinkAdd):
            self._apply_link_add(event)
        elif isinstance(event, LinkRemove):
            self._apply_link_remove(event)
        elif isinstance(event, HostJoin):
            self._apply_host_join(event)
        elif isinstance(event, HostLeave):
            self._apply_host_leave(event)
        else:  # pragma: no cover - type escape hatch
            raise TypeError(f"unknown event {event!r}")

    def flush(self) -> MRFArrays:
        """Materialise pending structural deltas into the array plan.

        Value-only updates were already patched in place; this re-derives
        the slot/level structure once for however many link/host events
        accumulated.  Returns the (possibly new) plan.
        """
        edge_first = np.asarray(self._edge_first, dtype=np.int64)
        edge_second = np.asarray(self._edge_second, dtype=np.int64)
        edge_cid = np.asarray(self._edge_cid, dtype=np.int64)
        if self._nodes_dirty:
            widest = max((len(u) for u in self._unaries), default=0)
            lmax = max(self.plan.lmax, widest)
            if lmax > self.plan.lmax:
                # Wider label spaces joined: grow the message padding; the
                # padded-message convention is 0, so this is exact.
                self.messages = np.pad(
                    self.messages, ((0, 0), (0, lmax - self.plan.lmax))
                )
            self.plan = MRFArrays.from_parts(
                self._unaries, edge_first, edge_second, edge_cid,
                self._matrices, lmax=lmax,
            )
        elif self._edges_dirty:
            self.plan.replace_edges(
                edge_first, edge_second, edge_cid, self._matrices
            )
        self._nodes_dirty = False
        self._edges_dirty = False
        return self.plan

    # ------------------------------------------------------------ shard view

    @property
    def node_count(self) -> int:
        """Live variable count (tracks pending deltas, unlike ``plan``)."""
        return len(self.variables)

    @property
    def edge_count(self) -> int:
        """Live edge count (tracks pending deltas, unlike ``plan``)."""
        return len(self._edge_first)

    def parts(self):
        """The raw plan parts, as the shard partitioner consumes them.

        Returns ``(unaries, edge_first, edge_second, edge_cid, matrices)``
        reflecting every applied event — including structural deltas not
        yet flushed into the global :class:`MRFArrays` plan, which is what
        lets the sharded engine partition without paying the global
        slot/level re-derivation.
        """
        return (
            self._unaries,
            np.asarray(self._edge_first, dtype=np.int64),
            np.asarray(self._edge_second, dtype=np.int64),
            np.asarray(self._edge_cid, dtype=np.int64),
            self._matrices,
        )

    def pad_messages(self) -> int:
        """Grow the message padding to the widest live label space.

        Returns the (possibly new) message width.  Padded message entries
        are the 0 additive identity, so widening is exact — the same
        invariant :meth:`flush` relies on.
        """
        widest = max((len(u) for u in self._unaries), default=0)
        width = self.messages.shape[1]
        if widest > width:
            self.messages = np.pad(self.messages, ((0, 0), (0, widest - width)))
            width = widest
        return width

    # -------------------------------------------------------------- solution

    def record_labels(self, labels: np.ndarray) -> None:
        """Store the latest solution labels for label-warm re-solves."""
        self.labels = np.asarray(labels, dtype=np.int64).copy()

    def assignment_values(
        self, labels: np.ndarray
    ) -> Dict[Tuple[str, str], str]:
        """Decode a labelling into a (host, service) → product mapping."""
        return {
            variable: self.candidates[node][int(labels[node])]
            for node, variable in enumerate(self.variables)
        }

    # ------------------------------------------------------------- internals

    def _append_variable(self, host: str, service: str) -> None:
        range_ = self.network.candidates(host, service)
        self.index[(host, service)] = len(self.variables)
        self.variables.append((host, service))
        self.candidates.append(range_)
        self._unaries.append(np.full(len(range_), self.unary_constant))
        # Touched-set bookkeeping: a rebuild touches everything and then
        # clears the set, so only post-rebuild appends persist.
        self.touched.add((host, service))

    def _weight(self, service: str) -> float:
        return self.pairwise_weight * float(self.service_weights.get(service, 1.0))

    def _matrix_for(
        self, range_a: Tuple[str, ...], range_b: Tuple[str, ...], weight: float
    ) -> Tuple[int, bool]:
        """Cost id for a candidate-range pair, plus whether the stored
        orientation is the transpose of the requested one (the caller then
        flips the edge's endpoints instead of storing a second matrix)."""
        key = (range_a, range_b, weight)
        cid = self._matrix_ids.get(key)
        if cid is not None:
            return cid, False
        flipped = self._matrix_ids.get((range_b, range_a, weight))
        if flipped is not None:
            return flipped, True
        matrix = np.empty((len(range_a), len(range_b)))
        for row, product_a in enumerate(range_a):
            for col, product_b in enumerate(range_b):
                matrix[row, col] = weight * self.similarity.get(product_a, product_b)
        cid = len(self._matrices)
        self._matrix_ids[key] = cid
        self._matrices.append(matrix)
        self._matrix_meta.append(key)
        return cid, False

    def _append_edge(self, a: str, b: str, service: str) -> None:
        node_a = self.index[(a, service)]
        node_b = self.index[(b, service)]
        cid, flip = self._matrix_for(
            self.candidates[node_a], self.candidates[node_b], self._weight(service)
        )
        first, second = (node_b, node_a) if flip else (node_a, node_b)
        self._edge_keys.append((_link_key(a, b), service))
        self._edge_first.append(first)
        self._edge_second.append(second)
        self._edge_cid.append(cid)
        self.touched.add((a, service))
        self.touched.add((b, service))

    # ------------------------------------------------------- event internals

    def _apply_similarity(self, event: SimilarityUpdate) -> None:
        a, b, value = event.product_a, event.product_b, event.value
        self.similarity.set(a, b, value)
        changed_cids = set()
        for cid, (range_a, range_b, weight) in enumerate(self._matrix_meta):
            matrix = self._matrices[cid]
            changed = False
            if a in range_a and b in range_b:
                row, col = range_a.index(a), range_b.index(b)
                self.dirty_cost = max(
                    self.dirty_cost, abs(weight * value - matrix[row, col])
                )
                matrix[row, col] = weight * value
                changed = True
            if b in range_a and a in range_b:
                row, col = range_a.index(b), range_b.index(a)
                self.dirty_cost = max(
                    self.dirty_cost, abs(weight * value - matrix[row, col])
                )
                matrix[row, col] = weight * value
                changed = True
            if changed:
                changed_cids.add(cid)
                # Matrices born after the last flush/rebuild (a pending
                # structural delta allocated them) are not in the live
                # plan's stack yet; the pending flush — or the sharded
                # path's per-shard rebuild — picks the new value up from
                # self._matrices, so only patch ids the stack knows.
                if cid < self.plan.stacked:
                    self.plan.set_cost_matrix(cid, matrix)
        if changed_cids and self.track_touched:
            # Shards whose edges price through a changed matrix must
            # re-solve; their endpoints mark them dirty (one pass for the
            # whole event, however many matrices it hit).
            for e, edge_cid in enumerate(self._edge_cid):
                if edge_cid in changed_cids:
                    self.touched.add(self.variables[self._edge_first[e]])
                    self.touched.add(self.variables[self._edge_second[e]])

    def _apply_link_add(self, event: LinkAdd) -> None:
        self.network.add_link(event.a, event.b)
        added = 0
        for service in self.network.shared_services(event.a, event.b):
            self._append_edge(event.a, event.b, service)
            added += 1
        if added:
            self.messages = np.vstack(
                [self.messages, np.zeros((2 * added, self.messages.shape[1]))]
            )
            self._edges_dirty = True
        self.dirty_edges += added

    def _apply_link_remove(self, event: LinkRemove) -> None:
        self.network.remove_link(event.a, event.b)
        key = _link_key(event.a, event.b)
        positions = [
            e for e, (link, _service) in enumerate(self._edge_keys) if link == key
        ]
        for e in positions:
            # A removal can split a shard; both halves keep a touched key.
            self.touched.add(self.variables[self._edge_first[e]])
            self.touched.add(self.variables[self._edge_second[e]])
        self._delete_edges(positions)
        self.dirty_edges += len(positions)

    def _apply_host_join(self, event: HostJoin) -> None:
        self.network.add_host(event.host, event.service_map())
        for service in self.network.services_of(event.host):
            self._append_variable(event.host, service)
            if self.labels is not None:
                # New variables start at label 0 (flat unaries make any
                # start equivalent; ICM repositions them in one sweep).
                self.labels = np.append(self.labels, 0)
            self.dirty_nodes += 1
        self._nodes_dirty = True
        for peer in event.links:
            self._apply_link_add(LinkAdd(a=event.host, b=peer))

    def _apply_host_leave(self, event: HostLeave) -> None:
        host = event.host
        removed = [
            self.index[(host, service)]
            for service in self.network.services_of(host)
        ]
        self.network.remove_host(host)
        removed_set = set(removed)
        positions = [
            e
            for e in range(len(self._edge_keys))
            if self._edge_first[e] in removed_set
            or self._edge_second[e] in removed_set
        ]
        for e in positions:
            # Surviving neighbours mark the shrunken/split shards dirty
            # (the removed variables' own keys vanish with them).
            for node in (self._edge_first[e], self._edge_second[e]):
                if node not in removed_set:
                    self.touched.add(self.variables[node])
        self._delete_edges(positions)
        self.dirty_edges += len(positions)

        # Renumber surviving nodes (order preserved).
        keep = [n for n in range(len(self.variables)) if n not in removed_set]
        remap = {old: new for new, old in enumerate(keep)}
        self.variables = [self.variables[n] for n in keep]
        self.candidates = [self.candidates[n] for n in keep]
        self._unaries = [self._unaries[n] for n in keep]
        self.index = {variable: n for n, variable in enumerate(self.variables)}
        if self.labels is not None:
            self.labels = self.labels[keep]
        self._edge_first = [remap[n] for n in self._edge_first]
        self._edge_second = [remap[n] for n in self._edge_second]
        self._nodes_dirty = True
        self.dirty_nodes += len(removed)

    def _delete_edges(self, positions: List[int]) -> None:
        if not positions:
            return
        drop = set(positions)
        keep = [e for e in range(len(self._edge_keys)) if e not in drop]
        self._edge_keys = [self._edge_keys[e] for e in keep]
        self._edge_first = [self._edge_first[e] for e in keep]
        self._edge_second = [self._edge_second[e] for e in keep]
        self._edge_cid = [self._edge_cid[e] for e in keep]
        slots = [s for e in positions for s in (2 * e, 2 * e + 1)]
        self.messages = np.delete(self.messages, slots, axis=0)
        self._edges_dirty = True


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)
