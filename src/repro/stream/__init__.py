"""Incremental diversification under network churn (the streaming engine).

The batch pipeline answers "what is the optimal assignment for this
network?"; this package answers "the network just changed — what is it
now?" without paying for a rebuild and a cold solve:

* :mod:`repro.stream.events` — the typed churn vocabulary (host join/leave,
  link add/remove, similarity re-score, constraint pin/forbid/combination
  updates) and synthetic trace generation;
* :mod:`repro.stream.plan` — a live MRF array plan that absorbs event
  deltas (cost values patched in place, structure re-derived vectorized,
  message state preserved);
* :mod:`repro.stream.incremental` — :class:`DynamicDiversifier`, the
  warm-started re-solver with its cold-rebuild fallback;
* :mod:`repro.stream.driver` — trace replay with per-event
  latency/energy/stability metrics (behind ``repro stream``).
"""

from repro.stream.driver import ChurnRecord, ChurnReport, replay_trace
from repro.stream.events import (
    AllowRange,
    ChurnConfig,
    CombinationUpdate,
    ConstraintEvent,
    Event,
    ForbidRange,
    HostJoin,
    HostLeave,
    LinkAdd,
    LinkRemove,
    PinService,
    SimilarityUpdate,
    UnpinService,
    apply_constraint_event,
    apply_event,
    event_from_dict,
    event_to_dict,
    random_churn_trace,
)
from repro.stream.incremental import DynamicDiversifier, StreamSolveResult
from repro.stream.plan import StreamPlan

__all__ = [
    "AllowRange",
    "ChurnConfig",
    "ChurnRecord",
    "ChurnReport",
    "CombinationUpdate",
    "ConstraintEvent",
    "DynamicDiversifier",
    "Event",
    "ForbidRange",
    "HostJoin",
    "HostLeave",
    "LinkAdd",
    "LinkRemove",
    "PinService",
    "SimilarityUpdate",
    "StreamPlan",
    "StreamSolveResult",
    "UnpinService",
    "apply_constraint_event",
    "apply_event",
    "event_from_dict",
    "event_to_dict",
    "random_churn_trace",
    "replay_trace",
]
