"""Incremental re-diversification with warm-started solvers.

:class:`DynamicDiversifier` keeps a network's optimal product assignment
fresh while churn events stream in.  Instead of the batch pipeline —
rebuild the MRF, cold-start TRW-S — it owns a :class:`~repro.stream.plan.
StreamPlan` (a delta-updated array plan plus the solver's directed-message
state) and re-solves each delta by

1. patching the live plan (cost values in place, slot/level structure
   re-derived vectorized),
2. warm-starting TRW-S or BP from the previous run's messages, and
3. seeding the ICM refine stage with the previous solution's labels,

falling back to a full cold rebuild when the accumulated delta exceeds a
configurable fraction of the plan (patching pays off only while the change
is small).  Warm starts cannot corrupt the *model*: any message state is a
valid TRW-S reparametrisation, so energies and dual bounds keep their
meaning, and the reported energy always equals the true E(N) of the
returned assignment on the mutated network.

Solution *quality* relative to a cold solve depends on the instance.  On
workloads where TRW-S+ICM reliably finds the optimum — the sparse,
well-colorable family the tests and ``benchmarks/bench_stream_churn.py``
pin — an incremental solve reaches exactly the cold-solve energy after
every event.  On dense, frustrated instances both starts are heuristics
that can land in different local optima (warm is usually the better one,
since it continues from a previously-optimised state, but neither
dominates); treat energy parity as a property of the workload family, not
a universal guarantee.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.mrf.bp import LoopyBPSolver
from repro.mrf.solvers import SolverResult
from repro.mrf.trws import TRWSSolver
from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.stream.events import Event
from repro.stream.plan import StreamPlan

__all__ = ["StreamSolveResult", "DynamicDiversifier"]


@dataclass
class StreamSolveResult:
    """One (re-)diversification of the live network.

    Attributes:
        assignment: the decoded optimal assignment for the current state.
        energy: MRF energy of the assignment (paper Eq. 1).
        lower_bound: dual lower bound (TRW-S; ``-inf`` for BP).
        certified_optimal: True when the gap certifies a global optimum.
        warm: True when the solve reused the previous message state;
            False marks a cold (re)build — the first solve, an explicitly
            cold engine, or a delta past the rebuild threshold.
        stability: fraction of (host, service) variables present both
            before and after that kept their product — the
            assignment-stability metric of the churn scenarios (1.0 on the
            first solve).
        seconds: wall-clock time of this solve (patch + solver).
        solver_result: raw solver output (iterations, traces, ...).
    """

    assignment: ProductAssignment
    energy: float
    lower_bound: float
    certified_optimal: bool
    warm: bool
    stability: float
    seconds: float
    solver_result: SolverResult

    @property
    def iterations(self) -> int:
        return self.solver_result.iterations


class DynamicDiversifier:
    """Keeps an optimal diversification current under network churn.

    Args:
        network: the live network; the engine mutates it as events apply.
        similarity: the live similarity table (likewise).
        solver: ``"trws"`` (default) or ``"bp"`` — the two message-passing
            solvers with a warm-start API.
        warm_start: disable to force a cold rebuild+solve on every
            :meth:`solve` — the baseline the benchmarks compare against.
        warm_iterations: sweep budget of a warm re-solve.  Starting from
            the previous fixed point, a handful of repair sweeps
            re-propagates a local delta; primal quality is guarded by the
            ICM refine from the previous labels, so more sweeps buy dual
            tightening, not better assignments.  The budget is what turns
            "same iterations as cold" into the measured warm-start
            speedup.
        rebuild_fraction: cold-rebuild threshold; when pending events have
            touched more than this fraction of the plan's nodes or edges,
            patching is abandoned for a rebuild.
        cost_jump_threshold: escalation threshold for similarity deltas.
            A feed update that moves some cost entry by more than this
            keeps the warm messages but re-solves with the full sweep
            budget and init set — a large re-score can shift the message
            fixed point far enough that a couple of repair sweeps would
            land in a worse basin than a cold solve.
        unary_constant / pairwise_weight / service_weights: cost model, as
            in :func:`repro.core.diversify.diversify`.
        **solver_options: forwarded to the solver constructor.
    """

    def __init__(
        self,
        network: Network,
        similarity: SimilarityTable,
        solver: str = "trws",
        warm_start: bool = True,
        warm_iterations: int = 2,
        rebuild_fraction: float = 0.25,
        cost_jump_threshold: float = 0.2,
        unary_constant: float = 0.01,
        pairwise_weight: float = 1.0,
        service_weights: Optional[Mapping[str, float]] = None,
        **solver_options,
    ) -> None:
        if warm_iterations < 1:
            raise ValueError("warm_iterations must be >= 1")
        if solver == "trws":
            self._solver = TRWSSolver(**solver_options)
            self._warm_solver = TRWSSolver(
                **{**solver_options, "max_iterations": warm_iterations}
            )
        elif solver == "bp":
            self._solver = LoopyBPSolver(**solver_options)
            self._warm_solver = LoopyBPSolver(
                **{**solver_options, "max_iterations": warm_iterations}
            )
        else:
            raise ValueError(
                f"streaming supports solvers 'trws' and 'bp', got {solver!r}"
            )
        if not 0.0 <= rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must be in [0, 1]")
        if cost_jump_threshold < 0:
            raise ValueError("cost_jump_threshold must be non-negative")
        self.solver_name = solver
        self.warm_start = warm_start
        self.rebuild_fraction = rebuild_fraction
        self.cost_jump_threshold = cost_jump_threshold
        self.plan = StreamPlan(
            network,
            similarity,
            unary_constant=unary_constant,
            pairwise_weight=pairwise_weight,
            service_weights=service_weights,
        )
        self._previous: Optional[Dict[Tuple[str, str], str]] = None

    # ----------------------------------------------------------------- churn

    @property
    def network(self) -> Network:
        return self.plan.network

    @property
    def similarity(self) -> SimilarityTable:
        return self.plan.similarity

    def apply(self, event: Event) -> None:
        """Apply one churn event (mutates network/similarity, patches the
        plan).  Events batch: several applies then one :meth:`solve`."""
        self.plan.apply(event)

    def apply_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.apply(event)

    # ----------------------------------------------------------------- solve

    def solve(self) -> StreamSolveResult:
        """(Re-)optimise the current network state.

        Warm path: flush pending structural deltas into the plan, restart
        the solver from the previous messages and seed the refine stage
        with the previous labels.  Cold path (first solve, ``warm_start=
        False``, or delta past ``rebuild_fraction``): rebuild everything
        and start from zero messages and a fresh greedy labelling.
        """
        start = time.perf_counter()
        plan = self.plan
        warm = (
            self.warm_start
            and plan.labels is not None
            and not self._delta_too_large()
        )
        is_trws = self.solver_name == "trws"
        if warm:
            plan.flush()
            if plan.dirty_cost > self.cost_jump_threshold:
                # A large similarity re-score: keep the warm messages (any
                # message state is a valid reparametrisation) but give the
                # solver its full budget and the cold init set so it can
                # leave the previous basin.
                solver = self._solver
                extra_inits = (plan.labels,)
                if is_trws:
                    extra_inits += (plan.plan.greedy_labels(),)
            else:
                solver = self._warm_solver
                extra_inits = (plan.labels,)
        else:
            plan.rebuild()
            solver = self._solver
            # The greedy init only feeds TRW-S's refine stage; BP's
            # solve_arrays takes no inits, so don't pay for it there.
            extra_inits = (plan.plan.greedy_labels(),) if is_trws else ()

        if is_trws:
            result = solver.solve_arrays(
                plan.plan,
                messages=plan.messages,
                extra_inits=extra_inits,
                default_inits=solver is not self._warm_solver,
            )
        else:
            result = solver.solve_arrays(plan.plan, messages=plan.messages)

        labels = np.asarray(result.labels, dtype=np.int64)
        energy = result.energy
        if warm:
            # Stability tie-break: among equal-energy optima prefer the one
            # closest to the previous deployment (re-diversification is a
            # reconfiguration plan — gratuitous churn costs real downtime).
            # The ICM polish of the previous labels can only tie, never
            # beat, the solver's best (it was one of the refine inits).
            polished = plan.plan.icm(plan.labels)
            polished_energy = plan.plan.energy(polished)
            if polished_energy <= energy + 1e-9:
                labels = polished
                energy = polished_energy
        plan.record_labels(labels)
        plan.reset_dirty_counters()

        values = plan.assignment_values(labels)
        assignment = ProductAssignment.from_decoded(plan.network, values)
        stability = _stability(self._previous, values)
        self._previous = values
        certified = (
            np.isfinite(result.lower_bound)
            and energy - result.lower_bound <= 1e-6
        )
        return StreamSolveResult(
            assignment=assignment,
            energy=energy,
            lower_bound=result.lower_bound,
            certified_optimal=certified,
            warm=warm,
            stability=stability,
            seconds=time.perf_counter() - start,
            solver_result=result,
        )

    # ------------------------------------------------------------- internals

    def _delta_too_large(self) -> bool:
        plan = self.plan
        node_frac = plan.dirty_nodes / max(1, plan.plan.node_count)
        edge_frac = plan.dirty_edges / max(1, plan.plan.edge_count)
        return max(node_frac, edge_frac) > self.rebuild_fraction


def _stability(
    previous: Optional[Dict[Tuple[str, str], str]],
    current: Dict[Tuple[str, str], str],
) -> float:
    """Fraction of variables present in both snapshots keeping their
    product; 1.0 when there is no previous snapshot or no overlap."""
    if previous is None:
        return 1.0
    shared = [key for key in current if key in previous]
    if not shared:
        return 1.0
    unchanged = sum(1 for key in shared if previous[key] == current[key])
    return unchanged / len(shared)
