"""Incremental re-diversification with warm-started solvers.

:class:`DynamicDiversifier` keeps a network's optimal product assignment
fresh while churn events stream in.  Instead of the batch pipeline —
rebuild the MRF, cold-start TRW-S — it owns a :class:`~repro.stream.plan.
StreamPlan` (a delta-updated array plan plus the solver's directed-message
state) and re-solves each delta by

1. patching the live plan (cost values in place, slot/level structure
   re-derived vectorized),
2. warm-starting TRW-S or BP from the previous run's messages, and
3. seeding the ICM refine stage with the previous solution's labels,

falling back to a full cold rebuild when the accumulated delta exceeds a
configurable fraction of the plan (patching pays off only while the change
is small).  Operator-constraint churn streams the same way: pins and
forbids are in-place unary-mask rewrites, combination rules edit the
intra-host edges, and a flip that hard-masks the previous solution
escalates to the full-budget solve (``docs/streaming.md`` tabulates the
per-event semantics).  Warm starts cannot corrupt the *model*: any message
state is a valid TRW-S reparametrisation, so energies and dual bounds keep
their meaning, and the reported energy always equals the true E(N) of the
returned assignment on the mutated network and constraint set.

With ``sharded=True`` the engine additionally partitions the live plan
into connected-component shards (:mod:`repro.mrf.partition`) and re-solves
**only the shards touched by the pending events** — the plan's stable
(host, service) touched-keys map each event to the components it dirtied,
link adds merge shards and removals split them (the partition is recomputed
from the raw parts every solve, so merges/splits are handled by
construction), and clean shards keep their message slices, labels and
cached energies byte-for-byte.  Churn cost becomes proportional to the
touched component instead of the network; components share no edges, so
per-shard energies and dual bounds just add and the parity contract below
is unchanged.

Solution *quality* relative to a cold solve depends on the instance.  On
workloads where TRW-S+ICM reliably finds the optimum — the sparse,
well-colorable family the tests and ``benchmarks/bench_stream_churn.py``
pin — an incremental solve reaches exactly the cold-solve energy after
every event.  On dense, frustrated instances both starts are heuristics
that can land in different local optima (warm is usually the better one,
since it continues from a previously-optimised state, but neither
dominates); treat energy parity as a property of the workload family, not
a universal guarantee.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.mrf.bp import LoopyBPSolver
from repro.mrf.partition import Shard, merge_shard_results, split_parts
from repro.mrf.solvers import SolverResult
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import SolverScratch, SolverScratchPool
from repro.network.assignment import ProductAssignment
from repro.network.constraints import ConstraintSet
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.runner import Job, resolve_workers, run_jobs
from repro.stream.events import Event
from repro.stream.plan import StreamPlan

__all__ = ["StreamSolveResult", "DynamicDiversifier"]

#: Per-process workspace of :func:`_stream_shard_job` — pool workers are
#: single-threaded, so one scratch per worker is reused across jobs.
_STREAM_JOB_SCRATCH: Optional[SolverScratch] = None


@dataclass
class _ShardEntry:
    """Cached per-shard solve summary (valid while the shard stays clean)."""

    energy: float
    lower_bound: float
    converged: bool


@dataclass
class StreamSolveResult:
    """One (re-)diversification of the live network.

    Attributes:
        assignment: the decoded optimal assignment for the current state.
        energy: MRF energy of the assignment (paper Eq. 1).
        lower_bound: dual lower bound (TRW-S; ``-inf`` for BP).
        certified_optimal: True when the gap certifies a global optimum.
        warm: True when the solve reused the previous message state;
            False marks a cold (re)build — the first solve, an explicitly
            cold engine, or a delta past the rebuild threshold.
        stability: fraction of (host, service) variables present both
            before and after that kept their product — the
            assignment-stability metric of the churn scenarios (1.0 on the
            first solve).
        seconds: wall-clock time of this solve (patch + solver).
        solver_result: raw solver output (iterations, traces, ...).
        shards_total: shard count of the partition this solve ran over
            (1 for the monolithic engine).
        shards_solved: shards actually re-solved — on a sharded warm solve
            only the components touched by the pending events; clean
            shards kept their messages/labels/energy untouched.
        escalation: why this solve left the cheap warm path, or ``None``
            for a plain warm re-solve.  ``"cost_jump"`` / ``"stranded"``
            mark warm solves escalated to the full budget; ``"node_churn"``
            / ``"edge_churn"`` / ``"mask_churn"`` name the fraction that
            crossed the rebuild threshold; ``"first_solve"`` and
            ``"warm_disabled"`` mark the other cold cases.
        shard_seconds: wall time of each dirty-shard solve (sharded mode;
            empty for the monolithic engine) — the skew signal behind the
            service's per-shard latency histogram.
    """

    assignment: ProductAssignment
    energy: float
    lower_bound: float
    certified_optimal: bool
    warm: bool
    stability: float
    seconds: float
    solver_result: SolverResult
    shards_total: int = 1
    shards_solved: int = 1
    escalation: Optional[str] = None
    shard_seconds: List[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Solver sweeps of this re-solve."""
        return self.solver_result.iterations


class DynamicDiversifier:
    """Keeps an optimal diversification current under network churn.

    Args:
        network: the live network; the engine mutates it as events apply.
        similarity: the live similarity table (likewise).
        solver: ``"trws"`` (default) or ``"bp"`` — the two message-passing
            solvers with a warm-start API.
        warm_start: disable to force a cold rebuild+solve on every
            :meth:`solve` — the baseline the benchmarks compare against.
        warm_iterations: sweep budget of a warm re-solve.  Starting from
            the previous fixed point, a handful of repair sweeps
            re-propagates a local delta; primal quality is guarded by the
            ICM refine from the previous labels, so more sweeps buy dual
            tightening, not better assignments.  The budget is what turns
            "same iterations as cold" into the measured warm-start
            speedup.
        rebuild_fraction: cold-rebuild threshold; when pending events have
            touched more than this fraction of the plan's nodes or edges,
            patching is abandoned for a rebuild.
        cost_jump_threshold: escalation threshold for similarity deltas.
            A feed update that moves some cost entry by more than this
            keeps the warm messages but re-solves with the full sweep
            budget and init set — a large re-score can shift the message
            fixed point far enough that a couple of repair sweeps would
            land in a worse basin than a cold solve.
        unary_constant / pairwise_weight / service_weights: cost model, as
            in :func:`repro.core.diversify.diversify`.
        constraints: initial operator constraint set (pins, forbids,
            combination rules).  Constraint *churn* then streams in as
            typed events — :class:`~repro.stream.events.PinService`,
            :class:`~repro.stream.events.ForbidRange`,
            :class:`~repro.stream.events.CombinationUpdate` & co. — and
            patches the live plan in place; a flip that hard-masks the
            previous solution escalates to the full-budget solve, and a
            bulk load past ``rebuild_fraction`` falls back to a cold
            recompile.
        sharded: partition the live plan into connected-component shards
            and warm re-solve only the shards touched by pending events
            (see the module docstring).  The decomposition itself is
            exact (shard energies/bounds add, reported energy always
            equals the true E(N) of the returned assignment), and on the
            workload families where warm/cold parity holds it holds for
            this mode too — but the two modes follow *different* warm
            trajectories (per-shard tie-breaking noise, per-shard ICM
            basins), so on hard instances they can land in different
            local optima and the stability metric may differ; cross-mode
            energy equality is a property of the workload, exactly like
            the warm/cold contract above.
        shard_workers: concurrent dirty-shard solves (``None``/1 serial,
            ``-1`` one thread per CPU); dirty shards are independent, so
            the fan-out never changes results.
        shard_process_nodes: dirty shards at or above this node count are
            solved as :mod:`repro.runner` *process* jobs instead of
            in-process threads — the same solve, byte-identically (same
            plan rebuild, solver options, warm messages, inits and ICM
            polish), so results never depend on where a shard ran; only
            huge dirty components pay the pickling toll, and only when
            they would otherwise serialise behind the GIL-bound parent.
            ``None`` (default) keeps every dirty shard in-process.
        dual_shard_nodes: opt-in dual decomposition for *giant* dirty
            components (``"trws"`` only): a dirty shard at or above this
            node count is re-solved cold by
            :class:`~repro.mrf.dual.DualDecompositionSolver` across a
            balanced edge cut instead of one warm monolithic shard run.
            The shard's parent message slice is left untouched (the dual
            loop owns its own boundary state), clean shards stay
            byte-identical, and the shard's cached bound is the dual
            loop's certified bound.  ``None`` (default) disables.
        dual_options: constructor options of the per-shard
            :class:`~repro.mrf.dual.DualDecompositionSolver` (``parts``,
            ``max_rounds``, ``gap_tolerance``, ``executor``, ...) when
            ``dual_shard_nodes`` triggers.
        **solver_options: forwarded to the solver constructor.
    """

    def __init__(
        self,
        network: Network,
        similarity: SimilarityTable,
        solver: str = "trws",
        warm_start: bool = True,
        warm_iterations: int = 2,
        rebuild_fraction: float = 0.25,
        cost_jump_threshold: float = 0.2,
        unary_constant: float = 0.01,
        pairwise_weight: float = 1.0,
        service_weights: Optional[Mapping[str, float]] = None,
        constraints: Optional[ConstraintSet] = None,
        sharded: bool = False,
        shard_workers: Optional[int] = None,
        shard_process_nodes: Optional[int] = None,
        dual_shard_nodes: Optional[int] = None,
        dual_options: Optional[Mapping] = None,
        **solver_options,
    ) -> None:
        if warm_iterations < 1:
            raise ValueError("warm_iterations must be >= 1")
        if solver == "trws":
            self._solver = TRWSSolver(**solver_options)
            self._warm_solver = TRWSSolver(
                **{**solver_options, "max_iterations": warm_iterations}
            )
        elif solver == "bp":
            self._solver = LoopyBPSolver(**solver_options)
            self._warm_solver = LoopyBPSolver(
                **{**solver_options, "max_iterations": warm_iterations}
            )
        else:
            raise ValueError(
                f"streaming supports solvers 'trws' and 'bp', got {solver!r}"
            )
        if not 0.0 <= rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must be in [0, 1]")
        if cost_jump_threshold < 0:
            raise ValueError("cost_jump_threshold must be non-negative")
        self.solver_name = solver
        self.warm_start = warm_start
        self.rebuild_fraction = rebuild_fraction
        self.cost_jump_threshold = cost_jump_threshold
        if shard_process_nodes is not None and shard_process_nodes < 1:
            raise ValueError("shard_process_nodes must be >= 1")
        if dual_shard_nodes is not None and dual_shard_nodes < 1:
            raise ValueError("dual_shard_nodes must be >= 1")
        if dual_shard_nodes is not None and solver != "trws":
            raise ValueError("dual_shard_nodes requires solver='trws'")
        self.sharded = sharded
        self.shard_workers = shard_workers
        self.shard_process_nodes = shard_process_nodes
        self.dual_shard_nodes = dual_shard_nodes
        self._dual_options = dict(dual_options or {})
        self._solver_options = dict(solver_options)
        self._warm_iterations = int(warm_iterations)
        #: per-shard cache: frozen variable-key set → solved summary.
        self._shard_cache: Dict[frozenset, _ShardEntry] = {}
        #: reusable solver work buffers — steady-state warm re-solves stop
        #: churning the NumPy allocator.  Monolithic solves use one scratch;
        #: the sharded fan-out leases from a pool (the per-event thread
        #: pools are short-lived, so thread-locals would never be reused).
        self._scratch = SolverScratch()
        self._shard_scratches = SolverScratchPool()
        self.plan = StreamPlan(
            network,
            similarity,
            unary_constant=unary_constant,
            pairwise_weight=pairwise_weight,
            service_weights=service_weights,
            track_touched=sharded,
            constraints=constraints,
        )
        self._previous: Optional[Dict[Tuple[str, str], str]] = None

    # ----------------------------------------------------------------- churn

    @property
    def network(self) -> Network:
        """The live network (mutated as events apply)."""
        return self.plan.network

    @property
    def similarity(self) -> SimilarityTable:
        """The live similarity table (mutated by feed events)."""
        return self.plan.similarity

    @property
    def constraints(self) -> ConstraintSet:
        """The live constraint set (mutated by constraint events)."""
        return self.plan.constraints

    def apply(self, event: Event) -> None:
        """Apply one churn event (mutates network/similarity, patches the
        plan).  Events batch: several applies then one :meth:`solve`."""
        self.plan.apply(event)

    def apply_all(self, events: Iterable[Event]) -> None:
        """Apply a batch of events (one solve then covers them all)."""
        for event in events:
            self.apply(event)

    # ----------------------------------------------------------------- solve

    def solve(self, force_cold: bool = False) -> StreamSolveResult:
        """(Re-)optimise the current network state.

        Warm path: flush pending structural deltas into the plan, restart
        the solver from the previous messages and seed the refine stage
        with the previous labels.  Cold path (first solve, ``warm_start=
        False``, or delta past ``rebuild_fraction``): rebuild everything
        and start from zero messages and a fresh greedy labelling.
        ``force_cold=True`` takes the cold path unconditionally
        (escalation reason ``"forced"``) — the recovery lever the service
        writer pulls after a solver exception, since a full rebuild
        discards whatever incremental state went bad.

        A ``sharded=True`` engine dispatches to the per-component path,
        which re-solves only the shards the pending events touched.
        """
        if self.sharded:
            return self._solve_sharded(force_cold=force_cold)
        start = time.perf_counter()
        wall_ns = time.time_ns() if obs.enabled() else 0
        plan = self.plan
        warm, escalation = self._classify_solve(force_cold=force_cold)
        if escalation is not None:
            obs.instant("stream.escalation", cat="stream", reason=escalation)
        is_trws = self.solver_name == "trws"
        if warm:
            plan.flush()
            if escalation is not None:
                # A large similarity re-score ("cost_jump"), or a
                # constraint flip that hard-masked the previous solution
                # ("stranded"): keep the warm messages (any message state
                # is a valid reparametrisation) but give the solver its
                # full budget and the cold init set so it can leave the
                # previous basin — which a stranding mask just made
                # infeasible.
                solver = self._solver
                extra_inits = (plan.labels,)
                if is_trws:
                    extra_inits += (plan.plan.greedy_labels(),)
            else:
                solver = self._warm_solver
                extra_inits = (plan.labels,)
        else:
            plan.rebuild()
            solver = self._solver
            # The greedy init only feeds TRW-S's refine stage; BP's
            # solve_arrays takes no inits, so don't pay for it there.
            extra_inits = (plan.plan.greedy_labels(),) if is_trws else ()

        if is_trws:
            result = solver.solve_arrays(
                plan.plan,
                messages=plan.messages,
                extra_inits=extra_inits,
                default_inits=solver is not self._warm_solver,
                scratch=self._scratch,
            )
        else:
            result = solver.solve_arrays(
                plan.plan, messages=plan.messages, scratch=self._scratch
            )

        labels = np.asarray(result.labels, dtype=np.int64)
        energy = result.energy
        if warm:
            # Stability tie-break: among equal-energy optima prefer the one
            # closest to the previous deployment (re-diversification is a
            # reconfiguration plan — gratuitous churn costs real downtime).
            # The ICM polish of the previous labels can only tie, never
            # beat, the solver's best (it was one of the refine inits).
            polished = plan.plan.icm(plan.labels, scratch=self._scratch)
            polished_energy = plan.plan.energy(polished)
            if polished_energy <= energy + 1e-9:
                labels = polished
                energy = polished_energy
        plan.record_labels(labels)
        plan.reset_dirty_counters()

        values = plan.assignment_values(labels)
        assignment = ProductAssignment.from_decoded(plan.network, values)
        stability = _stability(self._previous, values)
        self._previous = values
        certified = (
            np.isfinite(result.lower_bound)
            and energy - result.lower_bound <= 1e-6
        )
        seconds = time.perf_counter() - start
        trace = obs.current_trace()
        if trace is not None and wall_ns:
            trace.record(
                "stream.solve", "stream",
                ts=wall_ns / 1000.0, dur=seconds * 1e6,
                args={
                    "warm": warm,
                    "escalation": escalation or "",
                    "energy": energy,
                },
            )
        return StreamSolveResult(
            assignment=assignment,
            energy=energy,
            lower_bound=result.lower_bound,
            certified_optimal=certified,
            warm=warm,
            stability=stability,
            seconds=seconds,
            solver_result=result,
            escalation=escalation,
        )

    # -------------------------------------------------------- sharded solve

    def _solve_sharded(self, force_cold: bool = False) -> StreamSolveResult:
        """Per-component re-solve: only touched shards pay a solver run.

        Partitions the live plan's raw parts (no global slot/level
        re-derivation), keys each shard by its frozen (host, service) set
        — stable across node renumbering — and re-solves a shard only when
        it is new or contains a touched key.  Clean shards keep their
        message slices and labels untouched and contribute their cached
        energy/bound; merges and splits fall out of re-partitioning.
        """
        start = time.perf_counter()
        wall_ns = time.time_ns() if obs.enabled() else 0
        plan = self.plan
        warm, escalation = self._classify_solve(force_cold=force_cold)
        if escalation is not None:
            obs.instant("stream.escalation", cat="stream", reason=escalation)
        if not warm:
            plan.rebuild()
            self._shard_cache.clear()
        touched = set(plan.touched)
        escalate = warm and escalation is not None
        width = plan.pad_messages()
        unaries, edge_first, edge_second, edge_cid, matrices = plan.parts()
        partition = split_parts(
            unaries, edge_first, edge_second, edge_cid, matrices, lmax=width
        )

        labels = (
            plan.labels.copy()
            if plan.labels is not None
            else np.zeros(plan.node_count, dtype=np.int64)
        )
        keys = [
            frozenset(plan.variables[int(node)] for node in shard.nodes)
            for shard in partition
        ]
        entries: List[Optional[_ShardEntry]] = []
        dirty: List[Tuple[Shard, frozenset]] = []
        for shard, key in zip(partition, keys):
            entry = self._shard_cache.get(key)
            if warm and entry is not None and not (key & touched):
                entries.append(entry)
            else:
                entries.append(None)
                dirty.append((shard, key))

        solved: Dict[frozenset, _ShardEntry] = {}
        outcomes: List[Optional[Tuple[_ShardEntry, np.ndarray, int, float]]] = (
            [None] * len(dirty)
        )
        remote = [
            position
            for position, (shard, _key) in enumerate(dirty)
            if self._runs_in_process(shard)
        ]
        if remote:
            # Huge dirty shards ship to worker processes — byte-identical
            # to the in-process path (same plan rebuild, solver options,
            # warm messages, inits and polish), so placement is purely a
            # scheduling decision.
            jobs = []
            for position in remote:
                shard = dirty[position][0]
                jobs.append(
                    Job(
                        key=position,
                        fn=_stream_shard_job,
                        kwargs=dict(
                            unaries=[unaries[int(v)] for v in shard.nodes],
                            edge_first=shard.local_first,
                            edge_second=shard.local_second,
                            edge_cid=shard.local_cid,
                            lmax=width,
                            matrices=[matrices[int(k)] for k in shard.cids],
                            solver_name=self.solver_name,
                            solver_options=self._solver_options,
                            warm_iterations=self._warm_iterations,
                            messages=plan.messages[shard.slots],
                            previous=labels[shard.nodes] if warm else None,
                            warm=warm,
                            escalate=escalate,
                            shard_index=shard.index,
                        ),
                    )
                )
            shipped = run_jobs(
                jobs, workers=min(resolve_workers(self.shard_workers), len(jobs))
            )
            for position in remote:
                shard = dirty[position][0]
                energy, bound, conv, sub_labels, iters, msg, secs = shipped[
                    position
                ]
                plan.messages[shard.slots] = np.asarray(msg)
                outcomes[position] = (
                    _ShardEntry(
                        energy=energy, lower_bound=bound, converged=conv
                    ),
                    np.asarray(sub_labels, dtype=np.int64),
                    iters,
                    secs,
                )
        local = [
            position for position in range(len(dirty)) if outcomes[position] is None
        ]
        fan_out = min(resolve_workers(self.shard_workers), len(local))
        if fan_out > 1:
            # Dirty shards are independent (disjoint nodes and message
            # slots), so a thread fan-out never changes results.
            with ThreadPoolExecutor(max_workers=fan_out) as pool:
                for position, outcome in zip(
                    local,
                    pool.map(
                        lambda position: self._solve_shard(
                            dirty[position][0], labels, warm, escalate
                        ),
                        local,
                    ),
                ):
                    outcomes[position] = outcome
        else:
            for position in local:
                outcomes[position] = self._solve_shard(
                    dirty[position][0], labels, warm, escalate
                )
        dirty_iterations = []
        shard_seconds: List[float] = []
        for (shard, key), (entry, sub_labels, sub_iters, sub_secs) in zip(
            dirty, outcomes
        ):
            labels[shard.nodes] = sub_labels
            solved[key] = entry
            dirty_iterations.append(sub_iters)
            shard_seconds.append(sub_secs)
        for position, (entry, key) in enumerate(zip(entries, keys)):
            if entry is None:
                entries[position] = solved[key]
        final_entries: List[_ShardEntry] = entries  # all filled now
        # Clean shards contribute no iterations — nothing ran for them.
        merged = merge_shard_results(
            [e.energy for e in final_entries],
            [e.lower_bound for e in final_entries],
            dirty_iterations,
            [e.converged for e in final_entries],
        )
        energy = merged.energy
        lower_bound = merged.lower_bound
        # Prune stale keys so departed/merged shards cannot resurrect.
        self._shard_cache = dict(zip(keys, final_entries))

        plan.record_labels(labels)
        plan.reset_dirty_counters()
        values = plan.assignment_values(labels)
        assignment = ProductAssignment.from_decoded(plan.network, values)
        stability = _stability(self._previous, values)
        self._previous = values
        certified = (
            np.isfinite(lower_bound) and energy - lower_bound <= 1e-6
        )
        solver_result = SolverResult(
            labels=[int(x) for x in labels],
            energy=energy,
            lower_bound=lower_bound,
            iterations=merged.iterations,
            converged=merged.converged,
            solver=f"{self.solver_name}-sharded",
        )
        seconds = time.perf_counter() - start
        trace = obs.current_trace()
        if trace is not None and wall_ns:
            trace.record(
                "stream.solve", "stream",
                ts=wall_ns / 1000.0, dur=seconds * 1e6,
                args={
                    "warm": warm,
                    "escalation": escalation or "",
                    "energy": energy,
                    "shards_total": len(partition),
                    "shards_solved": len(dirty),
                },
            )
        return StreamSolveResult(
            assignment=assignment,
            energy=energy,
            lower_bound=lower_bound,
            certified_optimal=certified,
            warm=warm,
            stability=stability,
            seconds=seconds,
            solver_result=solver_result,
            shards_total=len(partition),
            shards_solved=len(dirty),
            escalation=escalation,
            shard_seconds=shard_seconds,
        )

    def _solve_shard(
        self,
        shard: Shard,
        labels: np.ndarray,
        warm: bool,
        escalate: bool,
    ) -> Tuple[_ShardEntry, np.ndarray, int, float]:
        """One dirty-shard solve, mirroring the monolithic mode choice.

        Returns ``(entry, labels, iterations, seconds)``; the wall time
        feeds the result's ``shard_seconds`` skew stats (always measured —
        two clock reads per shard are noise next to a solver run).
        """
        shard_start = time.perf_counter()
        plan = self.plan
        previous = labels[shard.nodes] if warm else None
        if (
            self.dual_shard_nodes is not None
            and self.solver_name == "trws"
            and len(shard.nodes) >= self.dual_shard_nodes
        ):
            return self._solve_shard_dual(shard, previous, warm, shard_start)
        messages = plan.messages[shard.slots]
        scratch = self._shard_scratches.acquire()
        with obs.span(
            "shard.solve",
            cat="shard",
            shard=int(shard.index),
            nodes=len(shard.nodes),
            warm=warm,
        ) as shard_span:
            try:
                energy, sub_labels, result = _solve_shard_arrays(
                    shard.plan,
                    messages,
                    previous,
                    warm,
                    escalate,
                    self.solver_name,
                    self._solver,
                    self._warm_solver,
                    scratch,
                )
                plan.messages[shard.slots] = messages
            finally:
                self._shard_scratches.release(scratch)
            shard_span.add(energy=energy, iterations=result.iterations)
        entry = _ShardEntry(
            energy=energy,
            lower_bound=result.lower_bound,
            converged=result.converged,
        )
        seconds = time.perf_counter() - shard_start
        return entry, sub_labels, result.iterations, seconds

    def _solve_shard_dual(
        self,
        shard: Shard,
        previous: Optional[np.ndarray],
        warm: bool,
        shard_start: float,
    ) -> Tuple[_ShardEntry, np.ndarray, int, float]:
        """Cold dual re-solve of one giant dirty component.

        The dual loop owns its own boundary state, so the shard's slice of
        the parent message array is deliberately left untouched — a later
        warm re-solve of this shard continues from the last message-passing
        fixed point, and clean shards are never perturbed.  The cached
        bound is the dual loop's certified bound; the per-shard stability
        tie-break (polish the previous labels, keep them on an energy tie)
        applies exactly as on the warm path.
        """
        from repro.mrf.dual import DualDecompositionSolver

        scratch = self._shard_scratches.acquire()
        with obs.span(
            "shard.dual",
            cat="shard",
            shard=int(shard.index),
            nodes=len(shard.nodes),
        ) as shard_span:
            try:
                result = DualDecompositionSolver(
                    **{**self._solver_options, **self._dual_options}
                ).solve_arrays(shard.plan)
                sub_labels = np.asarray(result.labels, dtype=np.int64)
                energy = result.energy
                if warm and previous is not None:
                    polished = shard.plan.icm(previous, scratch=scratch)
                    polished_energy = shard.plan.energy(polished)
                    if polished_energy <= energy + 1e-9:
                        sub_labels = polished
                        energy = polished_energy
            finally:
                self._shard_scratches.release(scratch)
            shard_span.add(
                energy=energy, rounds=result.rounds, gap=result.duality_gap
            )
        entry = _ShardEntry(
            energy=energy,
            lower_bound=result.lower_bound,
            converged=result.converged,
        )
        return entry, sub_labels, result.iterations, (
            time.perf_counter() - shard_start
        )

    # ------------------------------------------------------------- internals

    def _runs_in_process(self, shard: Shard) -> bool:
        """True when a dirty shard should ship to a worker process.

        Dual-eligible shards stay in-process — the dual loop fans out its
        own shard solves and would fight the pool for cores.
        """
        if (
            self.shard_process_nodes is None
            or len(shard.nodes) < self.shard_process_nodes
        ):
            return False
        return not (
            self.dual_shard_nodes is not None
            and self.solver_name == "trws"
            and len(shard.nodes) >= self.dual_shard_nodes
        )

    def _delta_too_large(self) -> bool:
        """Did pending deltas (topology or constraint churn) outgrow the
        rebuild threshold?  Bulk constraint loads count like topology: a
        policy file rewriting a quarter of the unary masks is cheaper to
        recompile than to patch mask by mask."""
        return self._delta_reason() is not None

    def _delta_reason(self) -> Optional[str]:
        """The dominating churn fraction past the rebuild threshold, or
        ``None`` when patching is still worthwhile."""
        plan = self.plan
        fractions = {
            "node_churn": plan.dirty_nodes / max(1, plan.node_count),
            "edge_churn": plan.dirty_edges / max(1, plan.edge_count),
            "mask_churn": plan.dirty_masked / max(1, plan.node_count),
        }
        name, frac = max(fractions.items(), key=lambda item: item[1])
        return name if frac > self.rebuild_fraction else None

    def _classify_solve(
        self, force_cold: bool = False
    ) -> Tuple[bool, Optional[str]]:
        """``(warm, escalation reason)`` for the pending delta.

        ``warm=False`` reasons name the cold-rebuild trigger
        (``"first_solve"``, ``"warm_disabled"``, ``"forced"``, or the
        dominating churn fraction); ``warm=True`` with a reason marks a
        warm solve escalated to the full budget (``"cost_jump"`` /
        ``"stranded"``); ``(True, None)`` is the plain cheap warm
        re-solve.
        """
        plan = self.plan
        if plan.labels is None:
            return False, "first_solve"
        if force_cold:
            return False, "forced"
        if not self.warm_start:
            return False, "warm_disabled"
        churn = self._delta_reason()
        if churn is not None:
            return False, churn
        if plan.dirty_cost > self.cost_jump_threshold:
            return True, "cost_jump"
        if plan.stranded:
            return True, "stranded"
        return True, None


def _solve_shard_arrays(
    shard_plan,
    messages: np.ndarray,
    previous: Optional[np.ndarray],
    warm: bool,
    escalate: bool,
    solver_name: str,
    solver,
    warm_solver,
    scratch: SolverScratch,
):
    """The dirty-shard solve body, shared by every execution venue.

    One function holds the mode choice (warm repair / escalated full
    budget / cold), the solver dispatch and the per-shard stability
    tie-break, so the in-process thread path and the
    :func:`_stream_shard_job` process path cannot drift apart — a shard
    solves byte-identically wherever it runs.  Returns ``(energy,
    labels, result)``; ``messages`` is updated in place.
    """
    is_trws = solver_name == "trws"
    if warm and not escalate:
        active = warm_solver
        extra_inits: Tuple[np.ndarray, ...] = (previous,)
        default_inits = False
    elif warm:
        active = solver
        extra_inits = (previous,)
        if is_trws:
            extra_inits += (shard_plan.greedy_labels(),)
        default_inits = True
    else:
        active = solver
        extra_inits = (shard_plan.greedy_labels(),) if is_trws else ()
        default_inits = True
    if is_trws:
        result = active.solve_arrays(
            shard_plan,
            messages=messages,
            extra_inits=extra_inits,
            default_inits=default_inits,
            scratch=scratch,
        )
    else:
        result = active.solve_arrays(
            shard_plan, messages=messages, scratch=scratch
        )
    sub_labels = np.asarray(result.labels, dtype=np.int64)
    energy = result.energy
    if warm and previous is not None:
        # Stability tie-break, per shard (see the monolithic path).
        polished = shard_plan.icm(previous, scratch=scratch)
        polished_energy = shard_plan.energy(polished)
        if polished_energy <= energy + 1e-9:
            sub_labels = polished
            energy = polished_energy
    return energy, sub_labels, result


def _stream_shard_job(
    unaries,
    edge_first,
    edge_second,
    edge_cid,
    lmax,
    matrices,
    solver_name,
    solver_options,
    warm_iterations,
    messages,
    previous,
    warm,
    escalate,
    shard_index,
):
    """One huge dirty-shard solve as a process job (picklable top-level).

    Rebuilds the shard plan from raw parts in the worker (the same
    :meth:`MRFArrays.from_parts` call the in-process partition factory
    makes), constructs the same solver pair from the same options, and
    runs :func:`_solve_shard_arrays` — so the result is byte-identical to
    an in-process solve of the same shard.  Returns ``(energy,
    lower_bound, converged, labels, iterations, messages, seconds)``; the
    updated warm messages ride back for the parent to scatter into its
    global array.
    """
    from repro.mrf.vectorized import MRFArrays

    global _STREAM_JOB_SCRATCH
    if _STREAM_JOB_SCRATCH is None:
        _STREAM_JOB_SCRATCH = SolverScratch()
    shard_start = time.perf_counter()
    factory = TRWSSolver if solver_name == "trws" else LoopyBPSolver
    solver = factory(**solver_options)
    warm_solver = factory(
        **{**solver_options, "max_iterations": warm_iterations}
    )
    with obs.span(
        "shard.solve",
        cat="shard",
        shard=int(shard_index),
        nodes=len(unaries),
        warm=warm,
    ) as shard_span:
        plan = MRFArrays.from_parts(
            unaries, edge_first, edge_second, edge_cid, matrices, lmax=lmax
        )
        energy, sub_labels, result = _solve_shard_arrays(
            plan,
            messages,
            previous,
            warm,
            escalate,
            solver_name,
            solver,
            warm_solver,
            _STREAM_JOB_SCRATCH,
        )
        shard_span.add(energy=energy, iterations=result.iterations)
    return (
        energy,
        result.lower_bound,
        result.converged,
        sub_labels,
        result.iterations,
        messages,
        time.perf_counter() - shard_start,
    )


def _stability(
    previous: Optional[Dict[Tuple[str, str], str]],
    current: Dict[Tuple[str, str], str],
) -> float:
    """Fraction of variables present in both snapshots keeping their
    product; 1.0 when there is no previous snapshot or no overlap."""
    if previous is None:
        return 1.0
    shared = [key for key in current if key in previous]
    if not shared:
        return 1.0
    unchanged = sum(1 for key in shared if previous[key] == current[key])
    return unchanged / len(shared)
