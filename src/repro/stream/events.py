"""Typed network-churn events and synthetic event traces.

The paper computes one static assignment per network; a production fleet
churns continuously — hosts are provisioned and decommissioned, links come
and go with VLAN changes, and CVE feeds re-score product-pair similarity
every day.  This module gives that churn a typed vocabulary:

* :class:`HostJoin` / :class:`HostLeave` — a host (with its services,
  candidate ranges and links) enters or leaves the network;
* :class:`LinkAdd` / :class:`LinkRemove` — the host graph gains or loses an
  undirected link;
* :class:`SimilarityUpdate` — a vulnerability feed re-scores one product
  pair (the table's values change, the network does not).

:func:`apply_event` replays one event onto a ``(network, similarity)``
pair — the ground-truth mutation every consumer (the incremental engine,
cold-solve cross-checks, tests) shares.  :func:`random_churn_trace` draws a
deterministic synthetic workload of valid events against an evolving copy
of the network, so a trace can be replayed on the original without
surprises.  Real-world churn is not independent — provisioning lands a
rack at a time and CVE feeds re-score one vendor's products in a batch —
so :class:`ChurnConfig` can correlate the trace: ``rack_size`` expands
each join draw into a rack of hosts sharing one peer set (plus intra-rack
links), ``vendor_batch`` expands each feed draw into a burst of re-scores
against one candidate range.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = [
    "HostJoin",
    "HostLeave",
    "LinkAdd",
    "LinkRemove",
    "SimilarityUpdate",
    "Event",
    "apply_event",
    "ChurnConfig",
    "random_churn_trace",
]


@dataclass(frozen=True)
class HostJoin:
    """A new host joins, running ``services`` and linked to ``links``."""

    host: str
    services: Tuple[Tuple[str, Tuple[str, ...]], ...]
    links: Tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"join {self.host} ({len(self.services)} services, "
            f"{len(self.links)} links)"
        )

    def service_map(self) -> Dict[str, Tuple[str, ...]]:
        """The services as the mapping :meth:`Network.add_host` expects."""
        return dict(self.services)


@dataclass(frozen=True)
class HostLeave:
    """A host is decommissioned (its links disappear with it)."""

    host: str

    def describe(self) -> str:
        return f"leave {self.host}"


@dataclass(frozen=True)
class LinkAdd:
    """An undirected link appears between two existing hosts."""

    a: str
    b: str

    def describe(self) -> str:
        return f"link+ {self.a}--{self.b}"


@dataclass(frozen=True)
class LinkRemove:
    """An undirected link disappears."""

    a: str
    b: str

    def describe(self) -> str:
        return f"link- {self.a}--{self.b}"


@dataclass(frozen=True)
class SimilarityUpdate:
    """A vulnerability feed re-scores the similarity of one product pair."""

    product_a: str
    product_b: str
    value: float

    def __post_init__(self) -> None:
        if self.product_a == self.product_b:
            raise ValueError("self-similarity is fixed at 1.0")
        if not 0.0 <= self.value <= 1.0:
            raise ValueError(f"similarity must be in [0, 1], got {self.value}")

    def describe(self) -> str:
        return f"sim {self.product_a}~{self.product_b}={self.value:.3f}"


Event = Union[HostJoin, HostLeave, LinkAdd, LinkRemove, SimilarityUpdate]


def apply_event(
    network: Network,
    similarity: Optional[SimilarityTable],
    event: Event,
) -> None:
    """Mutate ``network`` (and ``similarity``) according to one event.

    This is the reference semantics of the event vocabulary; the
    incremental engine additionally patches its live plan, and tests
    cross-validate the two by cold-solving the mutated network.
    """
    if isinstance(event, HostJoin):
        network.add_host(event.host, event.service_map())
        for peer in event.links:
            network.add_link(event.host, peer)
    elif isinstance(event, HostLeave):
        network.remove_host(event.host)
    elif isinstance(event, LinkAdd):
        network.add_link(event.a, event.b)
    elif isinstance(event, LinkRemove):
        network.remove_link(event.a, event.b)
    elif isinstance(event, SimilarityUpdate):
        if similarity is None:
            raise ValueError("SimilarityUpdate needs a similarity table")
        similarity.set(event.product_a, event.product_b, event.value)
    else:  # pragma: no cover - type escape hatch
        raise TypeError(f"unknown event {event!r}")


# ------------------------------------------------------------------ traces


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of a synthetic churn workload.

    Attributes:
        events: trace length.
        seed: PRNG seed (the trace is fully deterministic).
        weights: relative frequency of each event kind, in the order
            (host join, host leave, link add, link remove, similarity
            update).  The defaults skew towards link churn and feed
            updates — the high-frequency events of a real fleet.
        join_degree: links a joining host receives.
        min_hosts: hosts never drop below this (leave events are skipped).
        sim_low / sim_high: range of re-scored similarity values.
        rack_size: hosts per join burst.  Real provisioning is
            rack-correlated — machines come up a rack at a time, wired to
            the same aggregation peers; ``rack_size > 1`` turns each join
            draw into that many :class:`HostJoin` events sharing one
            service template and one peer set, plus full intra-rack links.
            The default 1 reproduces the original independent joins (and
            the exact original draw sequence).
        vendor_batch: similarity re-scores per feed burst.  CVE disclosures
            batch by vendor — one advisory re-scores many product pairs of
            one candidate range at once; ``vendor_batch > 1`` emits that
            many :class:`SimilarityUpdate` events against a single range.
            Default 1 reproduces the original independent updates.
    """

    events: int = 20
    seed: int = 0
    weights: Tuple[float, float, float, float, float] = (1.0, 1.0, 2.0, 2.0, 3.0)
    join_degree: int = 3
    min_hosts: int = 3
    sim_low: float = 0.0
    sim_high: float = 0.9
    rack_size: int = 1
    vendor_batch: int = 1

    def __post_init__(self) -> None:
        if self.events < 0:
            raise ValueError("events must be non-negative")
        if len(self.weights) != 5 or any(w < 0 for w in self.weights):
            raise ValueError("weights must be five non-negative numbers")
        if sum(self.weights) <= 0:
            raise ValueError("at least one event kind needs positive weight")
        if not 0.0 <= self.sim_low <= self.sim_high <= 1.0:
            raise ValueError("need 0 <= sim_low <= sim_high <= 1")
        if self.rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if self.vendor_batch < 1:
            raise ValueError("vendor_batch must be >= 1")


_KINDS = ("join", "leave", "link_add", "link_remove", "similarity")


def random_churn_trace(
    network: Network,
    config: ChurnConfig = ChurnConfig(),
) -> List[Event]:
    """Draw a deterministic trace of valid churn events for ``network``.

    Events are validated against an evolving *copy* of the network (a
    removed link is never removed twice, a joining host clones the service
    spec of an existing one), so replaying the trace on the original — via
    :func:`apply_event` or the incremental engine — always succeeds.

    With ``rack_size``/``vendor_batch`` above 1 a single draw expands into
    a correlated burst (rack joins, vendor CVE batches); the trace is
    truncated at ``config.events`` even mid-burst.
    """
    rng = random.Random(config.seed)
    state = network.copy()
    trace: List[Event] = []
    joined = 0
    positive = {k for k, w in zip(_KINDS, config.weights) if w > 0}
    infeasible: set = set()
    while len(trace) < config.events:
        kind = rng.choices(_KINDS, weights=config.weights)[0]
        burst = _draw(kind, state, rng, config, joined)
        if not burst:
            # The kind is currently infeasible (no removable link, host
            # floor reached, ...); redraw — unless every positive-weight
            # kind has come up infeasible since the last success, in which
            # case the loop would spin forever (e.g. leave-only weights at
            # the host floor).
            infeasible.add(kind)
            if infeasible >= positive:
                raise ValueError(
                    f"no feasible event kind under weights {config.weights} "
                    f"after {len(trace)}/{config.events} events"
                )
            continue
        infeasible.clear()
        for event in burst:
            if len(trace) >= config.events:
                break
            if isinstance(event, HostJoin):
                joined += 1
            if not isinstance(event, SimilarityUpdate):
                apply_event(state, None, event)
            trace.append(event)
    return trace


def _draw(
    kind: str,
    state: Network,
    rng: random.Random,
    config: ChurnConfig,
    joined: int,
) -> Optional[List[Event]]:
    """One draw of ``kind``: a burst of valid events, or None if infeasible.

    Single events are one-element bursts; the draw sequence for the
    default config is identical to the pre-burst implementation, so traces
    under old seeds are unchanged.
    """
    hosts = state.hosts
    if kind == "join":
        template = rng.choice(hosts)
        services = tuple(
            (service, state.candidates(template, service))
            for service in state.services_of(template)
        )
        peers = tuple(rng.sample(hosts, min(config.join_degree, len(hosts))))
        rack: List[Event] = []
        for position in range(config.rack_size):
            # Rack-correlated: every member wires to the same aggregation
            # peers and to its rack mates (earlier members exist by the
            # time a later one applies).
            mates = tuple(member.host for member in rack)  # type: ignore[union-attr]
            rack.append(
                HostJoin(
                    host=f"joined{joined + position}",
                    services=services,
                    links=peers + mates,
                )
            )
        return rack
    if kind == "leave":
        if len(hosts) <= config.min_hosts:
            return None
        return [HostLeave(host=rng.choice(hosts))]
    if kind == "link_add":
        for _ in range(10):
            a = rng.choice(hosts)
            others = [h for h in hosts if h != a and not state.has_link(a, h)]
            if others:
                return [LinkAdd(a=a, b=rng.choice(others))]
        return None
    if kind == "link_remove":
        links = state.links
        if not links:
            return None
        a, b = rng.choice(links)
        return [LinkRemove(a=a, b=b)]
    # similarity update: re-score pairs inside one candidate range, so the
    # change actually lands on a pairwise cost matrix.  A vendor batch
    # draws every pair from the same range — one advisory, one vendor.
    ranges = [
        state.candidates(host, service)
        for host in hosts
        for service in state.services_of(host)
        if len(state.candidates(host, service)) >= 2
    ]
    if not ranges:
        return None
    products = rng.choice(ranges)
    updates: List[Event] = []
    for _ in range(config.vendor_batch):
        a, b = rng.sample(list(products), 2)
        value = round(rng.uniform(config.sim_low, config.sim_high), 3)
        updates.append(SimilarityUpdate(product_a=a, product_b=b, value=value))
    return updates
