"""Typed network-churn events and synthetic event traces.

The paper computes one static assignment per network; a production fleet
churns continuously — hosts are provisioned and decommissioned, links come
and go with VLAN changes, and CVE feeds re-score product-pair similarity
every day.  This module gives that churn a typed vocabulary:

* :class:`HostJoin` / :class:`HostLeave` — a host (with its services,
  candidate ranges and links) enters or leaves the network;
* :class:`LinkAdd` / :class:`LinkRemove` — the host graph gains or loses an
  undirected link;
* :class:`SimilarityUpdate` — a vulnerability feed re-scores one product
  pair (the table's values change, the network does not);
* :class:`PinService` / :class:`UnpinService` — an operator pins a
  (host, service) to one product (a :class:`~repro.network.constraints.
  FixProduct` appears/disappears);
* :class:`ForbidRange` / :class:`AllowRange` — an operator bans or
  re-allows one candidate product (a :class:`~repro.network.constraints.
  ForbidProduct` appears/disappears);
* :class:`CombinationUpdate` — an intra-host combination rule
  (:class:`~repro.network.constraints.RequireCombination` /
  :class:`~repro.network.constraints.AvoidCombination`) is added or
  retired.

:func:`apply_event` replays one event onto a ``(network, similarity,
constraints)`` triple — the ground-truth mutation every consumer (the
incremental engine, cold-solve cross-checks, tests) shares.
:func:`random_churn_trace` draws a deterministic synthetic workload of
valid events against an evolving copy of the network (and of the
constraint set), so a trace can be replayed on the original without
surprises.  Real-world churn is not independent — provisioning lands a
rack at a time, CVE feeds re-score one vendor's products in a batch, and
operators upload whole policy files — so :class:`ChurnConfig` can
correlate the trace: ``rack_size`` expands each join draw into a rack of
hosts sharing one peer set (plus intra-rack links), ``vendor_batch``
expands each feed draw into a burst of re-scores against one candidate
range, and ``constraint_burst`` expands each constraint draw into a bulk
policy load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.network.constraints import (
    GLOBAL,
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.model import Network, NetworkError
from repro.nvd.similarity import SimilarityTable

__all__ = [
    "HostJoin",
    "HostLeave",
    "LinkAdd",
    "LinkRemove",
    "SimilarityUpdate",
    "PinService",
    "UnpinService",
    "ForbidRange",
    "AllowRange",
    "CombinationUpdate",
    "Event",
    "ConstraintEvent",
    "apply_event",
    "apply_constraint_event",
    "event_to_dict",
    "event_from_dict",
    "ChurnConfig",
    "random_churn_trace",
]


@dataclass(frozen=True)
class HostJoin:
    """A new host joins, running ``services`` and linked to ``links``."""

    host: str
    services: Tuple[Tuple[str, Tuple[str, ...]], ...]
    links: Tuple[str, ...] = ()

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        return (
            f"join {self.host} ({len(self.services)} services, "
            f"{len(self.links)} links)"
        )

    def service_map(self) -> Dict[str, Tuple[str, ...]]:
        """The services as the mapping :meth:`Network.add_host` expects."""
        return dict(self.services)


@dataclass(frozen=True)
class HostLeave:
    """A host is decommissioned (its links disappear with it)."""

    host: str

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        return f"leave {self.host}"


@dataclass(frozen=True)
class LinkAdd:
    """An undirected link appears between two existing hosts."""

    a: str
    b: str

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        return f"link+ {self.a}--{self.b}"


@dataclass(frozen=True)
class LinkRemove:
    """An undirected link disappears."""

    a: str
    b: str

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        return f"link- {self.a}--{self.b}"


@dataclass(frozen=True)
class SimilarityUpdate:
    """A vulnerability feed re-scores the similarity of one product pair."""

    product_a: str
    product_b: str
    value: float

    def __post_init__(self) -> None:
        if self.product_a == self.product_b:
            raise ValueError("self-similarity is fixed at 1.0")
        if not 0.0 <= self.value <= 1.0:
            raise ValueError(f"similarity must be in [0, 1], got {self.value}")

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        return f"sim {self.product_a}~{self.product_b}={self.value:.3f}"


# ------------------------------------------------------ constraint events


@dataclass(frozen=True)
class PinService:
    """Pin a (host, service) to one product (operator Fix constraint).

    Re-pinning an already-pinned variable replaces the previous pin — the
    idempotent "this is now the policy" semantics of a configuration push.
    """

    host: str
    service: str
    product: str

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        return f"pin {self.host}.{self.service}={self.product}"


@dataclass(frozen=True)
class UnpinService:
    """Release the pin on a (host, service); a no-op when none exists."""

    host: str
    service: str

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        return f"unpin {self.host}.{self.service}"


@dataclass(frozen=True)
class ForbidRange:
    """Ban one candidate product at a (host, service) (Forbid constraint)."""

    host: str
    service: str
    product: str

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        return f"forbid {self.host}.{self.service}!={self.product}"


@dataclass(frozen=True)
class AllowRange:
    """Lift the ban(s) on one candidate product; a no-op when none exists."""

    host: str
    service: str
    product: str

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        return f"allow {self.host}.{self.service}={self.product}"


@dataclass(frozen=True)
class CombinationUpdate:
    """Add or retire one intra-host combination rule.

    ``constraint`` is the exact :class:`RequireCombination` /
    :class:`AvoidCombination` object; with ``add=False`` it must name a
    rule currently in the set (removing an unknown rule is an error — the
    event stream is the system of record for combination policy).
    """

    constraint: Union[RequireCombination, AvoidCombination]
    add: bool = True

    def describe(self) -> str:
        """Human-readable one-liner for event tables."""
        sign = "combo+" if self.add else "combo-"
        return f"{sign} {self.constraint.describe()}"


ConstraintEvent = Union[
    PinService, UnpinService, ForbidRange, AllowRange, CombinationUpdate
]
Event = Union[
    HostJoin, HostLeave, LinkAdd, LinkRemove, SimilarityUpdate, ConstraintEvent
]


def apply_constraint_event(
    network: Network,
    constraints: ConstraintSet,
    event: ConstraintEvent,
) -> None:
    """Mutate ``constraints`` according to one constraint event.

    The reference semantics shared by :func:`apply_event` and the
    streaming engine's plan patching: a pin replaces any previous pin on
    the variable, unpin/allow drop every matching constraint (idempotent),
    and combination updates append/remove the named rule.  Products are
    validated against the candidate range so configuration mistakes
    surface at event time, not at the next rebuild.
    """
    if isinstance(event, (PinService, ForbidRange, AllowRange)):
        candidates = network.candidates(event.host, event.service)
        if event.product not in candidates:
            raise NetworkError(
                f"event {event.describe()!r} names product "
                f"{event.product!r} outside the candidate range"
            )
    if isinstance(event, PinService):
        constraints.discard_where(
            lambda c: isinstance(c, FixProduct)
            and c.host == event.host
            and c.service == event.service
        )
        constraints.add(FixProduct(event.host, event.service, event.product))
    elif isinstance(event, UnpinService):
        network.candidates(event.host, event.service)  # validate existence
        constraints.discard_where(
            lambda c: isinstance(c, FixProduct)
            and c.host == event.host
            and c.service == event.service
        )
    elif isinstance(event, ForbidRange):
        constraints.add(
            ForbidProduct(event.host, event.service, event.product)
        )
    elif isinstance(event, AllowRange):
        constraints.discard_where(
            lambda c: isinstance(c, ForbidProduct)
            and c.host == event.host
            and c.service == event.service
            and c.product == event.product
        )
    elif isinstance(event, CombinationUpdate):
        constraint = event.constraint
        if constraint.service_m == constraint.service_n:
            raise NetworkError(
                f"combination rule {constraint.describe()!r} couples a "
                f"service with itself"
            )
        if constraint.host != GLOBAL:
            # Same validity rule as ConstraintSet.validate_against: the
            # host must exist and run both services.
            network.candidates(constraint.host, constraint.service_m)
            network.candidates(constraint.host, constraint.service_n)
        if event.add:
            constraints.add(constraint)
        else:
            constraints.remove(constraint)
    else:  # pragma: no cover - type escape hatch
        raise TypeError(f"unknown constraint event {event!r}")


def apply_event(
    network: Network,
    similarity: Optional[SimilarityTable],
    event: Event,
    constraints: Optional[ConstraintSet] = None,
) -> None:
    """Mutate ``network`` (and ``similarity``/``constraints``) for one event.

    This is the reference semantics of the event vocabulary; the
    incremental engine additionally patches its live plan, and tests
    cross-validate the two by cold-solving the mutated network.

    Constraint events require ``constraints``; a :class:`HostLeave` with
    ``constraints`` supplied additionally drops every constraint
    referencing the departed host (``GLOBAL`` combination rules survive) —
    the decommission contract the streaming engine mirrors.
    """
    if isinstance(event, HostJoin):
        network.add_host(event.host, event.service_map())
        for peer in event.links:
            network.add_link(event.host, peer)
    elif isinstance(event, HostLeave):
        network.remove_host(event.host)
        if constraints is not None:
            constraints.prune_host(event.host)
    elif isinstance(event, LinkAdd):
        network.add_link(event.a, event.b)
    elif isinstance(event, LinkRemove):
        network.remove_link(event.a, event.b)
    elif isinstance(event, SimilarityUpdate):
        if similarity is None:
            raise ValueError("SimilarityUpdate needs a similarity table")
        similarity.set(event.product_a, event.product_b, event.value)
    elif isinstance(
        event,
        (PinService, UnpinService, ForbidRange, AllowRange, CombinationUpdate),
    ):
        if constraints is None:
            raise ValueError(
                f"{type(event).__name__} needs a constraint set"
            )
        apply_constraint_event(network, constraints, event)
    else:  # pragma: no cover - type escape hatch
        raise TypeError(f"unknown event {event!r}")


# ------------------------------------------------------------------- codec

#: wire name of each event class (the ``type`` field of the JSON form).
_EVENT_TYPES = {
    HostJoin: "host_join",
    HostLeave: "host_leave",
    LinkAdd: "link_add",
    LinkRemove: "link_remove",
    SimilarityUpdate: "similarity",
    PinService: "pin",
    UnpinService: "unpin",
    ForbidRange: "forbid",
    AllowRange: "allow",
    CombinationUpdate: "combination",
}


def event_to_dict(event: Event) -> Dict[str, object]:
    """The JSON-ready dict form of a churn event.

    Every typed event maps 1:1 onto a plain dict keyed by a ``type``
    field — the wire format of the ``repro serve`` ingestion endpoint
    (``POST /events``) and of persisted event logs.
    :func:`event_from_dict` inverts it exactly.

    >>> event_to_dict(LinkAdd(a="web", b="hmi"))
    {'type': 'link_add', 'a': 'web', 'b': 'hmi'}
    >>> event_to_dict(PinService("web", "os", "ubuntu"))
    {'type': 'pin', 'host': 'web', 'service': 'os', 'product': 'ubuntu'}
    """
    if isinstance(event, HostJoin):
        return {
            "type": "host_join",
            "host": event.host,
            "services": [
                [service, list(products)]
                for service, products in event.services
            ],
            "links": list(event.links),
        }
    if isinstance(event, HostLeave):
        return {"type": "host_leave", "host": event.host}
    if isinstance(event, (LinkAdd, LinkRemove)):
        return {"type": _EVENT_TYPES[type(event)], "a": event.a, "b": event.b}
    if isinstance(event, SimilarityUpdate):
        return {
            "type": "similarity",
            "product_a": event.product_a,
            "product_b": event.product_b,
            "value": event.value,
        }
    if isinstance(event, (PinService, ForbidRange, AllowRange)):
        return {
            "type": _EVENT_TYPES[type(event)],
            "host": event.host,
            "service": event.service,
            "product": event.product,
        }
    if isinstance(event, UnpinService):
        return {"type": "unpin", "host": event.host, "service": event.service}
    if isinstance(event, CombinationUpdate):
        constraint = event.constraint
        kind = "avoid" if isinstance(constraint, AvoidCombination) else "require"
        partner = (
            constraint.product_k
            if isinstance(constraint, AvoidCombination)
            else constraint.product_l
        )
        return {
            "type": "combination",
            "add": event.add,
            "kind": kind,
            "host": constraint.host,
            "service_m": constraint.service_m,
            "product_j": constraint.product_j,
            "service_n": constraint.service_n,
            "partner": partner,
        }
    raise TypeError(f"unknown event {event!r}")


def event_from_dict(payload: Dict[str, object]) -> Event:
    """Parse the dict form of a churn event back into its typed class.

    The exact inverse of :func:`event_to_dict`; unknown ``type`` values
    and missing fields raise ``ValueError`` (the ingestion endpoint turns
    those into HTTP 400, naming the offending field).

    >>> event_from_dict({"type": "link_add", "a": "web", "b": "hmi"})
    LinkAdd(a='web', b='hmi')
    >>> event = SimilarityUpdate("mysql", "mssql", 0.25)
    >>> event_from_dict(event_to_dict(event)) == event
    True
    """
    if not isinstance(payload, dict):
        raise ValueError(f"event must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("type")
    try:
        if kind == "host_join":
            return HostJoin(
                host=str(payload["host"]),
                services=tuple(
                    (str(service), tuple(str(p) for p in products))
                    for service, products in payload["services"]
                ),
                links=tuple(str(peer) for peer in payload.get("links", ())),
            )
        if kind == "host_leave":
            return HostLeave(host=str(payload["host"]))
        if kind == "link_add":
            return LinkAdd(a=str(payload["a"]), b=str(payload["b"]))
        if kind == "link_remove":
            return LinkRemove(a=str(payload["a"]), b=str(payload["b"]))
        if kind == "similarity":
            return SimilarityUpdate(
                product_a=str(payload["product_a"]),
                product_b=str(payload["product_b"]),
                value=float(payload["value"]),  # type: ignore[arg-type]
            )
        if kind == "pin":
            return PinService(
                str(payload["host"]), str(payload["service"]),
                str(payload["product"]),
            )
        if kind == "unpin":
            return UnpinService(str(payload["host"]), str(payload["service"]))
        if kind == "forbid":
            return ForbidRange(
                str(payload["host"]), str(payload["service"]),
                str(payload["product"]),
            )
        if kind == "allow":
            return AllowRange(
                str(payload["host"]), str(payload["service"]),
                str(payload["product"]),
            )
        if kind == "combination":
            combo_kind = payload["kind"]
            if combo_kind not in ("require", "avoid"):
                raise ValueError(
                    f"combination kind must be 'require' or 'avoid', "
                    f"got {combo_kind!r}"
                )
            cls = (
                AvoidCombination if combo_kind == "avoid" else RequireCombination
            )
            constraint = cls(
                str(payload["host"]),
                str(payload["service_m"]), str(payload["product_j"]),
                str(payload["service_n"]), str(payload["partner"]),
            )
            return CombinationUpdate(
                constraint=constraint, add=bool(payload.get("add", True))
            )
    except (KeyError, TypeError) as problem:
        raise ValueError(
            f"malformed {kind!r} event: bad or missing field ({problem})"
        ) from None
    raise ValueError(f"unknown event type {kind!r}")


# ------------------------------------------------------------------ traces


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of a synthetic churn workload.

    Attributes:
        events: trace length.
        seed: PRNG seed (the trace is fully deterministic).
        weights: relative frequency of each event kind, in the order
            (host join, host leave, link add, link remove, similarity
            update).  The defaults skew towards link churn and feed
            updates — the high-frequency events of a real fleet.
        join_degree: links a joining host receives.
        min_hosts: hosts never drop below this (leave events are skipped).
        sim_low / sim_high: range of re-scored similarity values.
        rack_size: hosts per join burst.  Real provisioning is
            rack-correlated — machines come up a rack at a time, wired to
            the same aggregation peers; ``rack_size > 1`` turns each join
            draw into that many :class:`HostJoin` events sharing one
            service template and one peer set, plus full intra-rack links.
            The default 1 reproduces the original independent joins (and
            the exact original draw sequence).
        vendor_batch: similarity re-scores per feed burst.  CVE disclosures
            batch by vendor — one advisory re-scores many product pairs of
            one candidate range at once; ``vendor_batch > 1`` emits that
            many :class:`SimilarityUpdate` events against a single range.
            Default 1 reproduces the original independent updates.
        constraint_weight: relative frequency of constraint events
            (pin/unpin/forbid/allow/combination updates), alongside the
            five ``weights``.  The default 0.0 disables constraint churn
            and reproduces the original draw sequence exactly — a zero
            weight consumes the same randomness as no weight at all.
        constraint_burst: constraint events per constraint draw.  Policy
            lands in bulk — an operator uploads a compliance file, not one
            rule; ``constraint_burst > 1`` expands each draw into that
            many events drawn against the same evolving constraint state.
    """

    events: int = 20
    seed: int = 0
    weights: Tuple[float, float, float, float, float] = (1.0, 1.0, 2.0, 2.0, 3.0)
    join_degree: int = 3
    min_hosts: int = 3
    sim_low: float = 0.0
    sim_high: float = 0.9
    rack_size: int = 1
    vendor_batch: int = 1
    constraint_weight: float = 0.0
    constraint_burst: int = 1

    def __post_init__(self) -> None:
        if self.events < 0:
            raise ValueError("events must be non-negative")
        if len(self.weights) != 5 or any(w < 0 for w in self.weights):
            raise ValueError("weights must be five non-negative numbers")
        if self.constraint_weight < 0:
            raise ValueError("constraint_weight must be non-negative")
        if sum(self.weights) + self.constraint_weight <= 0:
            raise ValueError("at least one event kind needs positive weight")
        if not 0.0 <= self.sim_low <= self.sim_high <= 1.0:
            raise ValueError("need 0 <= sim_low <= sim_high <= 1")
        if self.rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if self.vendor_batch < 1:
            raise ValueError("vendor_batch must be >= 1")
        if self.constraint_burst < 1:
            raise ValueError("constraint_burst must be >= 1")


_KINDS = ("join", "leave", "link_add", "link_remove", "similarity")
#: the sixth, optional kind — appended so a zero ``constraint_weight``
#: leaves the draw sequence of the original five kinds untouched.
_CONSTRAINT_KIND = "constraint"


def random_churn_trace(
    network: Network,
    config: ChurnConfig = ChurnConfig(),
) -> List[Event]:
    """Draw a deterministic trace of valid churn events for ``network``.

    Events are validated against an evolving *copy* of the network (a
    removed link is never removed twice, a joining host clones the service
    spec of an existing one), so replaying the trace on the original — via
    :func:`apply_event` or the incremental engine — always succeeds.

    With ``rack_size``/``vendor_batch``/``constraint_burst`` above 1 a
    single draw expands into a correlated burst (rack joins, vendor CVE
    batches, bulk policy loads); the trace is truncated at
    ``config.events`` even mid-burst.
    """
    rng = random.Random(config.seed)
    state = network.copy()
    cstate = ConstraintSet()
    trace: List[Event] = []
    joined = 0
    kinds = _KINDS + (_CONSTRAINT_KIND,)
    weights = tuple(config.weights) + (config.constraint_weight,)
    positive = {k for k, w in zip(kinds, weights) if w > 0}
    infeasible: set = set()
    while len(trace) < config.events:
        kind = rng.choices(kinds, weights=weights)[0]
        burst = _draw(kind, state, cstate, rng, config, joined)
        if not burst:
            # The kind is currently infeasible (no removable link, host
            # floor reached, ...); redraw — unless every positive-weight
            # kind has come up infeasible since the last success, in which
            # case the loop would spin forever (e.g. leave-only weights at
            # the host floor).
            infeasible.add(kind)
            if infeasible >= positive:
                raise ValueError(
                    f"no feasible event kind under weights {config.weights} "
                    f"after {len(trace)}/{config.events} events"
                )
            continue
        infeasible.clear()
        for event in burst:
            if len(trace) >= config.events:
                break
            if isinstance(event, HostJoin):
                joined += 1
            if not isinstance(event, SimilarityUpdate):
                apply_event(state, None, event, cstate)
            trace.append(event)
    return trace


def _draw(
    kind: str,
    state: Network,
    cstate: ConstraintSet,
    rng: random.Random,
    config: ChurnConfig,
    joined: int,
) -> Optional[List[Event]]:
    """One draw of ``kind``: a burst of valid events, or None if infeasible.

    Single events are one-element bursts; the draw sequence for the
    default config is identical to the pre-burst implementation, so traces
    under old seeds are unchanged.
    """
    hosts = state.hosts
    if kind == "join":
        template = rng.choice(hosts)
        services = tuple(
            (service, state.candidates(template, service))
            for service in state.services_of(template)
        )
        peers = tuple(rng.sample(hosts, min(config.join_degree, len(hosts))))
        rack: List[Event] = []
        for position in range(config.rack_size):
            # Rack-correlated: every member wires to the same aggregation
            # peers and to its rack mates (earlier members exist by the
            # time a later one applies).
            mates = tuple(member.host for member in rack)  # type: ignore[union-attr]
            rack.append(
                HostJoin(
                    host=f"joined{joined + position}",
                    services=services,
                    links=peers + mates,
                )
            )
        return rack
    if kind == "leave":
        if len(hosts) <= config.min_hosts:
            return None
        return [HostLeave(host=rng.choice(hosts))]
    if kind == "link_add":
        for _ in range(10):
            a = rng.choice(hosts)
            others = [h for h in hosts if h != a and not state.has_link(a, h)]
            if others:
                return [LinkAdd(a=a, b=rng.choice(others))]
        return None
    if kind == "link_remove":
        links = state.links
        if not links:
            return None
        a, b = rng.choice(links)
        return [LinkRemove(a=a, b=b)]
    if kind == _CONSTRAINT_KIND:
        return _draw_constraints(state, cstate, rng, config)
    # similarity update: re-score pairs inside one candidate range, so the
    # change actually lands on a pairwise cost matrix.  A vendor batch
    # draws every pair from the same range — one advisory, one vendor.
    ranges = [
        state.candidates(host, service)
        for host in hosts
        for service in state.services_of(host)
        if len(state.candidates(host, service)) >= 2
    ]
    if not ranges:
        return None
    products = rng.choice(ranges)
    updates: List[Event] = []
    for _ in range(config.vendor_batch):
        a, b = rng.sample(list(products), 2)
        value = round(rng.uniform(config.sim_low, config.sim_high), 3)
        updates.append(SimilarityUpdate(product_a=a, product_b=b, value=value))
    return updates


# ------------------------------------------------------- constraint draws

#: subkinds of a constraint draw, tried in feasibility-filtered order.
_CONSTRAINT_SUBKINDS = (
    "pin", "unpin", "forbid", "allow", "combo_add", "combo_remove",
)


@dataclass
class _ConstraintView:
    """Evolving constraint summary a burst draws against.

    Mirrors the subset of :class:`ConstraintSet` state the generator
    needs — pins and forbids per variable, active combination rules —
    updated as each burst member is drawn, so a multi-event policy load
    stays sequentially valid without mutating the trace's real state.
    """

    pins: Dict[Tuple[str, str], str] = field(default_factory=dict)
    forbids: Dict[Tuple[str, str], set] = field(default_factory=dict)
    combos: List[Union[RequireCombination, AvoidCombination]] = field(
        default_factory=list
    )

    @classmethod
    def of(cls, constraints: ConstraintSet) -> "_ConstraintView":
        """Snapshot the generator-relevant state of a constraint set."""
        view = cls()
        for constraint in constraints:
            if isinstance(constraint, FixProduct):
                view.pins[(constraint.host, constraint.service)] = (
                    constraint.product
                )
            elif isinstance(constraint, ForbidProduct):
                view.forbids.setdefault(
                    (constraint.host, constraint.service), set()
                ).add(constraint.product)
            else:
                view.combos.append(constraint)
        return view

    def allowed(self, state: Network, host: str, service: str) -> List[str]:
        """Products of a variable's range not currently forbidden."""
        banned = self.forbids.get((host, service), set())
        return [
            p for p in state.candidates(host, service) if p not in banned
        ]

    def pin_conflicts(self, host: str, service: str, product: str) -> bool:
        """Would pinning (host, service)=product make a combo binding-infeasible
        against the other pins?  (The generator never draws such a pin.)"""
        for combo in self.combos:
            if combo.host != host:
                continue
            pin_m = self.pins.get((host, combo.service_m))
            pin_n = self.pins.get((host, combo.service_n))
            if combo.service_m == service:
                pin_m = product
            if combo.service_n == service:
                pin_n = product
            if isinstance(combo, AvoidCombination):
                if pin_m == combo.product_j and pin_n == combo.product_k:
                    return True
            else:
                if (
                    pin_m == combo.product_j
                    and pin_n is not None
                    and pin_n != combo.product_l
                ):
                    return True
        return False

    def forbid_conflicts(self, host: str, service: str, product: str) -> bool:
        """Would forbidding the product strand a pinned Require partner?"""
        for combo in self.combos:
            if (
                isinstance(combo, RequireCombination)
                and combo.host == host
                and combo.service_n == service
                and combo.product_l == product
                and self.pins.get((host, combo.service_m)) == combo.product_j
            ):
                return True
        return False


def _draw_constraints(
    state: Network,
    cstate: ConstraintSet,
    rng: random.Random,
    config: ChurnConfig,
) -> Optional[List[Event]]:
    """One constraint draw: a bulk policy load of ``constraint_burst``
    events, each valid given the sequential application of the ones
    before it, or None when no subkind is currently feasible."""
    view = _ConstraintView.of(cstate)
    events: List[Event] = []
    for _ in range(config.constraint_burst):
        event = _draw_one_constraint(state, view, rng)
        if event is None:
            break
        events.append(event)
    return events or None


def _draw_one_constraint(
    state: Network, view: _ConstraintView, rng: random.Random
) -> Optional[Event]:
    """Draw one valid constraint event and apply it to the view.

    Feasibility keeps the constrained instance meaningful: a pin never
    lands on a forbidden product, a forbid always leaves at least one
    allowed label (and never the pinned one), and combination rules are
    never made binding-infeasible against the current pins.
    """
    variables = [
        (host, service)
        for host in state.hosts
        for service in state.services_of(host)
    ]
    for subkind in rng.sample(
        _CONSTRAINT_SUBKINDS, len(_CONSTRAINT_SUBKINDS)
    ):
        if subkind == "pin":
            unpinned = [v for v in variables if v not in view.pins]
            rng.shuffle(unpinned)
            for host, service in unpinned:
                allowed = [
                    p
                    for p in view.allowed(state, host, service)
                    if not view.pin_conflicts(host, service, p)
                ]
                if allowed:
                    product = rng.choice(allowed)
                    view.pins[(host, service)] = product
                    return PinService(host, service, product)
        elif subkind == "unpin":
            if view.pins:
                host, service = rng.choice(sorted(view.pins))
                del view.pins[(host, service)]
                return UnpinService(host, service)
        elif subkind == "forbid":
            candidates = list(variables)
            rng.shuffle(candidates)
            for host, service in candidates:
                allowed = view.allowed(state, host, service)
                pinned = view.pins.get((host, service))
                targets = [
                    p
                    for p in allowed
                    if p != pinned
                    and not view.forbid_conflicts(host, service, p)
                ] if len(allowed) > 1 else []
                if targets:
                    product = rng.choice(targets)
                    view.forbids.setdefault((host, service), set()).add(
                        product
                    )
                    return ForbidRange(host, service, product)
        elif subkind == "allow":
            banned = [
                (host, service, product)
                for (host, service), products in sorted(view.forbids.items())
                for product in sorted(products)
            ]
            if banned:
                host, service, product = rng.choice(banned)
                view.forbids[(host, service)].discard(product)
                return AllowRange(host, service, product)
        elif subkind == "combo_add":
            event = _draw_combo_add(state, view, rng)
            if event is not None:
                return event
        elif subkind == "combo_remove":
            if view.combos:
                constraint = rng.choice(view.combos)
                view.combos.remove(constraint)
                return CombinationUpdate(constraint=constraint, add=False)
    return None


def _draw_combo_add(
    state: Network, view: _ConstraintView, rng: random.Random
) -> Optional[Event]:
    """Draw one host-scoped Avoid/Require combination rule, or None."""
    hosts = [h for h in state.hosts if len(state.services_of(h)) >= 2]
    if not hosts:
        return None
    host = rng.choice(hosts)
    service_m, service_n = rng.sample(state.services_of(host), 2)
    trigger = rng.choice(state.candidates(host, service_m))
    partners = state.candidates(host, service_n)
    pin_m = view.pins.get((host, service_m))
    pin_n = view.pins.get((host, service_n))
    if rng.random() < 0.5:
        partner = rng.choice(partners)
        # Binding-infeasible against the pins: skip this draw.
        if pin_m == trigger and pin_n == partner:
            return None
        constraint: Union[RequireCombination, AvoidCombination] = (
            AvoidCombination(host, service_m, trigger, service_n, partner)
        )
    else:
        partner = rng.choice(partners)
        if pin_m == trigger and pin_n is not None and pin_n != partner:
            return None
        constraint = RequireCombination(
            host, service_m, trigger, service_n, partner
        )
    view.combos.append(constraint)
    return CombinationUpdate(constraint=constraint, add=True)
