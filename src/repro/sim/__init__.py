"""Agent-based malware-propagation simulation (NetLogo substitute).

The paper evaluates its assignments with NetLogo simulations of a
Stuxnet-like worm (Section VII-C2).  This subpackage is the offline
equivalent: a deterministic, seedable, discrete-tick propagation engine.

``repro.sim.malware``
    The infection-rate model shared by the simulator and the BN metric.
``repro.sim.attacker``
    Attacker strategies: uniform exploit choice vs the paper's
    "sophisticated" max-success-rate choice.
``repro.sim.engine``
    The tick-based propagation simulator and run records.
"""

from repro.sim.attacker import (
    AttackerStrategy,
    SophisticatedAttacker,
    UniformAttacker,
    make_attacker,
)
from repro.sim.malware import InfectionModel
from repro.sim.engine import PropagationSimulator, SimulationRun
from repro.sim.epidemic import InfectionCurve, containment_comparison, infection_curve
from repro.sim.defense import (
    DefendedRun,
    DefendedSimulator,
    RaceReport,
    race_comparison,
)

__all__ = [
    "AttackerStrategy",
    "UniformAttacker",
    "SophisticatedAttacker",
    "make_attacker",
    "InfectionModel",
    "PropagationSimulator",
    "SimulationRun",
    "InfectionCurve",
    "infection_curve",
    "containment_comparison",
    "DefendedRun",
    "DefendedSimulator",
    "RaceReport",
    "race_comparison",
]
