"""The attacker-defender race: detection and response.

Diversity buys the defender *time*; this module models what the defender
does with it.  Every infection attempt (successful or not) trips an IDS
with a per-attempt detection probability; once a cumulative detection
fires, the defender responds by isolating all currently-infected hosts,
ending the intrusion.  The interesting quantity is the probability that
the attacker reaches the target *before* detection — which decays with the
number of attempts the attacker is forced to make, i.e. exactly what
diversification maximises.

:class:`DefendedSimulator` runs the race; :func:`race_comparison`
evaluates several assignments side by side (the win-probability ablation
in ``benchmarks/bench_ablation_detection.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set

from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.sim.malware import InfectionModel

__all__ = ["DefendedRun", "RaceReport", "DefendedSimulator", "race_comparison"]

#: Possible outcomes of a defended run.
COMPROMISED = "compromised"   # target fell before detection
DETECTED = "detected"         # defender isolated the intrusion first
EXTINCT = "extinct"           # no exploitable frontier left
CENSORED = "censored"         # tick cap reached


@dataclass(frozen=True)
class DefendedRun:
    """One attacker-vs-defender race.

    Attributes:
        outcome: one of ``compromised`` / ``detected`` / ``extinct`` /
            ``censored``.
        ticks: tick at which the race ended.
        attempts: infection attempts the attacker made.
        infected: hosts infected when the race ended.
    """

    outcome: str
    ticks: int
    attempts: int
    infected: int


@dataclass(frozen=True)
class RaceReport:
    """Aggregate over a batch of defended runs.

    Attributes:
        attacker_wins: fraction of runs ending ``compromised``.
        defender_wins: fraction ending ``detected``.
        other: fraction extinct or censored.
        mean_attempts: mean infection attempts per run.
        runs: batch size.
    """

    attacker_wins: float
    defender_wins: float
    other: float
    mean_attempts: float
    runs: int

    def row(self, label: str) -> str:
        """One formatted row (label-prefixed) for the MTTC table."""
        return (
            f"{label:<18} attacker wins {100 * self.attacker_wins:5.1f}%  "
            f"defender wins {100 * self.defender_wins:5.1f}%  "
            f"mean attempts {self.mean_attempts:7.1f}"
        )


class DefendedSimulator:
    """Tick simulation with a per-attempt detection probability.

    Args:
        network / assignment / model: as in
            :class:`~repro.sim.engine.PropagationSimulator`.
        detection_probability: chance that any single infection attempt is
            flagged by the IDS; the response (isolation of every infected
            host) is assumed immediate and complete.
    """

    def __init__(
        self,
        network: Network,
        assignment: ProductAssignment,
        model: InfectionModel,
        detection_probability: float,
    ) -> None:
        if not 0.0 <= detection_probability <= 1.0:
            raise ValueError("detection_probability must be a probability")
        self._network = network
        self._rates = model.rate_matrix(network, assignment)
        self._neighbors: Dict[str, List[str]] = {
            host: network.neighbors(host) for host in network.hosts
        }
        self.detection_probability = detection_probability

    def run(
        self,
        entry: str,
        target: str,
        max_ticks: int = 1000,
        seed: Optional[int] = None,
    ) -> DefendedRun:
        """Race one intrusion against the IDS."""
        if entry not in self._network:
            raise KeyError(f"unknown entry host {entry!r}")
        if target not in self._network:
            raise KeyError(f"unknown target host {target!r}")
        rng = random.Random(seed)
        infected: Set[str] = {entry}
        attempts = 0
        if entry == target:
            return DefendedRun(COMPROMISED, 0, 0, 1)

        for tick in range(1, max_ticks + 1):
            newly: List[str] = []
            for host in sorted(infected):
                for neighbor in self._neighbors[host]:
                    if neighbor in infected or neighbor in newly:
                        continue
                    rate = self._rates[(host, neighbor)]
                    if rate <= 0.0:
                        continue
                    attempts += 1
                    if rng.random() < self.detection_probability:
                        return DefendedRun(
                            DETECTED, tick, attempts, len(infected) + len(newly)
                        )
                    if rng.random() < rate:
                        newly.append(neighbor)
                        if neighbor == target:
                            return DefendedRun(
                                COMPROMISED, tick, attempts,
                                len(infected) + len(newly),
                            )
            infected.update(newly)
            if not any(
                neighbor not in infected and self._rates[(host, neighbor)] > 0.0
                for host in infected
                for neighbor in self._neighbors[host]
            ):
                return DefendedRun(EXTINCT, tick, attempts, len(infected))
        return DefendedRun(CENSORED, max_ticks, attempts, len(infected))

    def run_many(
        self,
        entry: str,
        target: str,
        runs: int = 500,
        max_ticks: int = 1000,
        seed: Optional[int] = None,
    ) -> RaceReport:
        """Batch races, aggregated into a :class:`RaceReport`."""
        if runs < 1:
            raise ValueError("runs must be >= 1")
        master = random.Random(seed)
        outcomes = {COMPROMISED: 0, DETECTED: 0, EXTINCT: 0, CENSORED: 0}
        total_attempts = 0
        for _ in range(runs):
            run = self.run(
                entry, target, max_ticks=max_ticks, seed=master.randrange(2**63)
            )
            outcomes[run.outcome] += 1
            total_attempts += run.attempts
        return RaceReport(
            attacker_wins=outcomes[COMPROMISED] / runs,
            defender_wins=outcomes[DETECTED] / runs,
            other=(outcomes[EXTINCT] + outcomes[CENSORED]) / runs,
            mean_attempts=total_attempts / runs,
            runs=runs,
        )


def race_comparison(
    network: Network,
    assignments: Mapping[str, ProductAssignment],
    model_factory,
    entry: str,
    target: str,
    detection_probability: float = 0.01,
    runs: int = 500,
    max_ticks: int = 1000,
    seed: Optional[int] = None,
) -> Dict[str, RaceReport]:
    """Attacker-vs-defender races for several assignments.

    ``model_factory`` maps each assignment to its infection model; all
    assignments race under the same seed and detection probability.
    """
    return {
        label: DefendedSimulator(
            network, assignment, model_factory(assignment), detection_probability
        ).run_many(entry, target, runs=runs, max_ticks=max_ticks, seed=seed)
        for label, assignment in assignments.items()
    }
