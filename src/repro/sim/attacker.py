"""Attacker strategies.

At each propagation step the attacker holds one zero-day exploit per service
type (the paper's Section VII assumes three: OS, web browser, database) and
must pick which exploit to fire at a neighbouring host.  The paper uses two
behaviours:

* **uniform** — "when multiple exploits are feasible, attackers evenly
  choose one to use" (the BN-metric evaluation, Section VII-C1): the
  effective success probability is the mean of the per-service rates.
* **sophisticated** — attackers "conduct reconnaissance activities before
  launching attacks, and hence ... always choose the exploits with the
  highest success rate" (the MTTC evaluation, Section VII-C2): the
  effective probability is the max.

A strategy maps the vector of per-service success rates on one edge to a
single attempt-success probability, so both the analytic BN metric and the
tick simulator can share it.
"""

from __future__ import annotations

from typing import Protocol, Sequence

__all__ = [
    "AttackerStrategy",
    "UniformAttacker",
    "SophisticatedAttacker",
    "make_attacker",
]


class AttackerStrategy(Protocol):
    """Maps per-service success rates on an edge to one attempt probability."""

    name: str

    def combine(self, rates: Sequence[float]) -> float:  # pragma: no cover
        """Reduce per-edge success rates to one attempt success rate."""
        ...


class UniformAttacker:
    """Picks an exploit uniformly at random among the feasible ones."""

    name = "uniform"

    def combine(self, rates: Sequence[float]) -> float:
        """Mean of the rates (0.0 when no service is exploitable)."""
        usable = [r for r in rates if r > 0.0]
        if not usable:
            return 0.0
        return sum(usable) / len(usable)


class SophisticatedAttacker:
    """Reconnaissance first: always fires the highest-success-rate exploit."""

    name = "sophisticated"

    def combine(self, rates: Sequence[float]) -> float:
        """Max of the rates (0.0 when no service is exploitable)."""
        return max(rates, default=0.0)


_STRATEGIES = {
    UniformAttacker.name: UniformAttacker,
    SophisticatedAttacker.name: SophisticatedAttacker,
}


def make_attacker(name: str) -> AttackerStrategy:
    """Instantiate a strategy by name (``"uniform"`` or ``"sophisticated"``).

    >>> make_attacker("sophisticated").combine([0.2, 0.9])
    0.9
    """
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown attacker strategy {name!r}; available: {sorted(_STRATEGIES)}"
        ) from None
