"""Discrete-tick worm-propagation simulator (the NetLogo substitute).

The paper deploys its case-study network in NetLogo and measures the
mean-time-to-compromise over 1,000 simulation runs (Section VII-C2).  This
engine reproduces that protocol:

* time advances in ticks;
* at each tick, every infected host attempts to infect each susceptible
  neighbour once, succeeding with the edge's attempt probability from the
  :class:`~repro.sim.malware.InfectionModel` (the sophisticated attacker's
  max-rate exploit choice is inside the model's attacker strategy);
* the run ends when the target host is infected (success, returning the
  tick count) or at the tick cap (censored).

Runs are fully deterministic given the seed; ``run_many`` derives one child
seed per run so batches are reproducible and order-independent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.sim.malware import InfectionModel

__all__ = ["SimulationRun", "PropagationSimulator"]


@dataclass(frozen=True)
class SimulationRun:
    """Record of one simulated intrusion.

    Attributes:
        ticks_to_target: tick at which the target fell, or None if censored.
        infected_at: host → infection tick (entry host at tick 0).
        total_ticks: ticks actually simulated.
    """

    ticks_to_target: Optional[int]
    infected_at: Dict[str, int]
    total_ticks: int

    @property
    def target_compromised(self) -> bool:
        """True when the attack reached the target."""
        return self.ticks_to_target is not None

    def infection_count(self) -> int:
        """Number of hosts infected by the end of the run."""
        return len(self.infected_at)


class PropagationSimulator:
    """Tick-based worm propagation over a diversified network.

    Args:
        network: the host graph (links already reflect firewall rules, as
            in the paper's Fig. 3).
        assignment: the product assignment under evaluation.
        model: infection-rate model (similarity, p_avg/p_max, attacker).

    The per-edge attempt probabilities are precomputed once, so each run is
    O(ticks × frontier edges).
    """

    def __init__(
        self,
        network: Network,
        assignment: ProductAssignment,
        model: InfectionModel,
    ) -> None:
        self._network = network
        self._rates = model.rate_matrix(network, assignment)
        self._neighbors: Dict[str, List[str]] = {
            host: network.neighbors(host) for host in network.hosts
        }

    def edge_rate(self, source: str, destination: str) -> float:
        """The precomputed attempt probability for a directed edge."""
        return self._rates[(source, destination)]

    def run(
        self,
        entry: str,
        target: Optional[str] = None,
        max_ticks: int = 1000,
        seed: Optional[int] = None,
    ) -> SimulationRun:
        """Simulate one intrusion from ``entry``.

        With a ``target`` the run stops the moment the target falls (the
        MTTC protocol); with ``target=None`` the worm spreads until the
        tick cap or extinction — the epidemic-curve protocol
        (:mod:`repro.sim.epidemic`).
        """
        if entry not in self._network:
            raise KeyError(f"unknown entry host {entry!r}")
        if target is not None and target not in self._network:
            raise KeyError(f"unknown target host {target!r}")
        rng = random.Random(seed)
        infected_at: Dict[str, int] = {entry: 0}
        frontier: Set[str] = {entry}
        if target is not None and entry == target:
            return SimulationRun(ticks_to_target=0, infected_at=infected_at, total_ticks=0)

        tick = 0
        while tick < max_ticks:
            tick += 1
            newly_infected: List[str] = []
            for host in sorted(frontier):
                for neighbor in self._neighbors[host]:
                    if neighbor in infected_at:
                        continue
                    rate = self._rates[(host, neighbor)]
                    if rate > 0.0 and rng.random() < rate:
                        infected_at[neighbor] = tick
                        newly_infected.append(neighbor)
            frontier |= set(newly_infected)
            if target is not None and target in infected_at:
                return SimulationRun(
                    ticks_to_target=tick, infected_at=infected_at, total_ticks=tick
                )
            if not any(
                neighbor not in infected_at and self._rates[(host, neighbor)] > 0.0
                for host in frontier
                for neighbor in self._neighbors[host]
            ):
                break  # propagation is extinct; no reachable susceptible host
        return SimulationRun(
            ticks_to_target=None, infected_at=infected_at, total_ticks=tick
        )

    def run_many(
        self,
        entry: str,
        target: Optional[str] = None,
        runs: int = 1000,
        max_ticks: int = 1000,
        seed: Optional[int] = None,
    ) -> List[SimulationRun]:
        """Simulate a batch of independent runs (paper: 1,000 per cell).

        Each run gets an independent child seed derived from ``seed``.
        """
        if runs < 1:
            raise ValueError("runs must be >= 1")
        master = random.Random(seed)
        child_seeds = [master.randrange(2**63) for _ in range(runs)]
        return [
            self.run(entry, target, max_ticks=max_ticks, seed=child_seed)
            for child_seed in child_seeds
        ]
