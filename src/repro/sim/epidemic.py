"""Epidemic analytics: infection curves and attack rates.

The paper frames diversity as limiting "the prevalence of zero-day
exploits" — Stuxnet infected ~100,000 hosts because the population was a
near mono-culture.  MTTC measures time-to-one-target; this module measures
the *epidemic* view: how many hosts fall over time, and where the outbreak
saturates, averaged over simulation runs.

* :func:`infection_curve` — mean (and spread) of the number of infected
  hosts per tick, plus the final attack rate (fraction of the network
  ultimately infected).
* :func:`containment_comparison` — curves for several assignments side by
  side, the "diversity flattens the curve" figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.sim.engine import PropagationSimulator
from repro.sim.malware import InfectionModel

__all__ = ["InfectionCurve", "infection_curve", "containment_comparison"]


@dataclass(frozen=True)
class InfectionCurve:
    """Averaged outbreak trajectory from one entry host.

    Attributes:
        mean_infected: mean number of infected hosts at tick t (index t,
            starting at t=0 with the entry host).
        min_infected / max_infected: envelope over runs.
        attack_rate: mean final fraction of hosts infected.
        half_time: first tick where the mean crosses half its final size
            (None for degenerate outbreaks).
        runs: batch size.
        hosts: network size (denominator of the attack rate).
    """

    mean_infected: List[float]
    min_infected: List[int]
    max_infected: List[int]
    attack_rate: float
    half_time: Optional[int]
    runs: int
    hosts: int

    @property
    def final_size(self) -> float:
        """Mean infected fraction at the end of the horizon."""
        return self.mean_infected[-1] if self.mean_infected else 0.0

    def row(self, label: str) -> str:
        """One formatted row (label-prefixed) for the epidemic table."""
        half = f"{self.half_time}" if self.half_time is not None else "-"
        return (
            f"{label:<18} final={self.final_size:7.2f}/{self.hosts} "
            f"attack rate={100 * self.attack_rate:5.1f}%  half-time={half}"
        )


def infection_curve(
    network: Network,
    assignment: ProductAssignment,
    model: InfectionModel,
    entry: str,
    runs: int = 200,
    max_ticks: int = 100,
    seed: Optional[int] = None,
) -> InfectionCurve:
    """Simulate ``runs`` outbreaks and average the infected-count series."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if max_ticks < 1:
        raise ValueError("max_ticks must be >= 1")
    simulator = PropagationSimulator(network, assignment, model)
    batch = simulator.run_many(entry, None, runs=runs, max_ticks=max_ticks, seed=seed)

    length = max_ticks + 1
    totals = [0.0] * length
    minima = [len(network.hosts)] * length
    maxima = [0] * length
    final_total = 0
    for run in batch:
        ticks = sorted(run.infected_at.values())
        cumulative = [0] * length
        count = 0
        position = 0
        for tick in range(length):
            while position < len(ticks) and ticks[position] <= tick:
                count += 1
                position += 1
            cumulative[tick] = count
        for tick in range(length):
            totals[tick] += cumulative[tick]
            minima[tick] = min(minima[tick], cumulative[tick])
            maxima[tick] = max(maxima[tick], cumulative[tick])
        final_total += run.infection_count()

    mean = [value / runs for value in totals]
    half = None
    if mean and mean[-1] > 1.0:
        threshold = mean[-1] / 2
        half = next(
            (tick for tick, value in enumerate(mean) if value >= threshold), None
        )
    return InfectionCurve(
        mean_infected=mean,
        min_infected=minima,
        max_infected=maxima,
        attack_rate=final_total / (runs * len(network.hosts)),
        half_time=half,
        runs=runs,
        hosts=len(network.hosts),
    )


def containment_comparison(
    network: Network,
    assignments: Mapping[str, ProductAssignment],
    model_factory,
    entry: str,
    runs: int = 200,
    max_ticks: int = 100,
    seed: Optional[int] = None,
) -> Dict[str, InfectionCurve]:
    """Infection curves for several assignments under one rate model.

    ``model_factory`` maps an assignment to its
    :class:`~repro.sim.malware.InfectionModel` (usually a closure over one
    similarity table); each assignment gets the same seed so curves are
    comparable.
    """
    return {
        label: infection_curve(
            network, assignment, model_factory(assignment), entry,
            runs=runs, max_ticks=max_ticks, seed=seed,
        )
        for label, assignment in assignments.items()
    }
