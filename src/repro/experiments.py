"""Experiment drivers regenerating every table and figure of the paper.

Each public function here corresponds to one evaluation artefact (see the
experiment index in DESIGN.md); the benchmark suite and the examples are
thin wrappers over these drivers so the numbers printed anywhere in the
repository come from a single implementation.

Calibration: the infection-rate parameters default to ``p_avg=0.1``,
``p_max=0.9`` (DESIGN.md substitution #4).  The motivational example uses
``p_avg=0`` / ``p_max=1`` — in Fig. 1 the paper equates the infection rate
with the similarity itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.zones import ZonedNetwork

from repro.casestudy.stuxnet import CaseStudy, stuxnet_case_study
from repro.core.baselines import mono_assignment, random_assignment
from repro.core.diversify import DiversificationResult, diversify
from repro.metrics.bayes import compromise_probability
from repro.metrics.diversity import DiversityReport, diversity_metric
from repro.metrics.mttc import MTTCResult, mean_time_to_compromise
from repro.network.assignment import ProductAssignment
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.network.topologies import (
    MOTIVATIONAL_DIVERSIFIED,
    MOTIVATIONAL_ENTRY,
    MOTIVATIONAL_TARGET,
    motivational_network,
)
from repro.runner import Job, resolve_workers, run_jobs
from repro.sim.attacker import make_attacker
from repro.sim.malware import InfectionModel

__all__ = [
    "fig1_motivational",
    "fig4_assignments",
    "case_study_assignments",
    "table5_diversity",
    "table6_mttc",
    "ScalabilityCell",
    "scalability_cell",
    "scalability_sweep",
    "table7_rows",
    "table8_rows",
    "table9_rows",
]

#: Default infection-rate calibration for the case-study experiments.  The
#: small p_max keeps edge probabilities away from saturation, so the metric
#: distinguishes assignments across the whole network instead of being
#: dominated by the undiversifiable legacy OT zone (see DESIGN.md,
#: substitution #4).
P_AVG = 0.1
P_MAX = 0.3


# ---------------------------------------------------------------- Figure 1


def fig1_motivational() -> Dict[str, float]:
    """Target-compromise probabilities of the three Fig. 1 panels.

    Panel (a): diversified single-label hosts, no shared vulnerabilities.
    Panel (b): same, but the two products have similarity 0.5.
    Panel (c): multi-label hosts — a second zero-day for the ``square``
    product gives the attacker a better vector on the first two hops.

    Returns:
        ``{"a": P, "b": P, "c": P}`` — expected ``{0.0, 0.125, 0.5}``.
    """
    from repro.nvd.similarity import SimilarityTable

    results: Dict[str, float] = {}
    for panel, (multi_label, similarity_value) in {
        "a": (False, 0.0),
        "b": (False, 0.5),
        "c": (True, 0.5),
    }.items():
        network = motivational_network(multi_label=multi_label)
        table = SimilarityTable(products=["circle", "triangle", "square"])
        if similarity_value > 0:
            table.set("circle", "triangle", similarity_value)
        assignment = ProductAssignment(network)
        for host, product in MOTIVATIONAL_DIVERSIFIED.items():
            assignment.assign(host, "svc", product)
        if multi_label:
            for host in ("entry", "m1", "m2"):
                assignment.assign(host, "svc2", "square")
        model = InfectionModel(
            similarity=table,
            p_avg=0.0,
            p_max=1.0,
            attacker=make_attacker("sophisticated"),
        )
        results[panel] = compromise_probability(
            network, assignment, model, MOTIVATIONAL_ENTRY, MOTIVATIONAL_TARGET
        )
    return results


# ---------------------------------------------------------------- Figure 4


def fig4_assignments(
    case: Optional[CaseStudy] = None,
    solver: str = "trws",
    **solver_options,
) -> Dict[str, DiversificationResult]:
    """The three optimal assignments of the paper's Fig. 4.

    Returns ``{"optimal": α̂, "host_constrained": α̂_C1,
    "product_constrained": α̂_C2}``.
    """
    case = case or stuxnet_case_study()
    return {
        "optimal": diversify(
            case.network, case.similarity, solver=solver, **solver_options
        ),
        "host_constrained": diversify(
            case.network,
            case.similarity,
            constraints=case.c1,
            solver=solver,
            **solver_options,
        ),
        "product_constrained": diversify(
            case.network,
            case.similarity,
            constraints=case.c2,
            solver=solver,
            **solver_options,
        ),
    }


def case_study_assignments(
    case: Optional[CaseStudy] = None,
    seed: int = 11,
    solver: str = "trws",
    **solver_options,
) -> Dict[str, ProductAssignment]:
    """The five assignments evaluated in Tables V and VI.

    α̂, α̂_C1, α̂_C2 from the optimiser plus the random (α_r) and
    mono-culture (α_m) baselines.  Keys follow the paper's labels.
    """
    case = case or stuxnet_case_study()
    optimal = fig4_assignments(case, solver=solver, **solver_options)
    return {
        "optimal": optimal["optimal"].assignment,
        "host_constrained": optimal["host_constrained"].assignment,
        "product_constrained": optimal["product_constrained"].assignment,
        "random": random_assignment(case.network, seed=seed),
        "mono": mono_assignment(case.network),
    }


# ----------------------------------------------------------------- Table V


def table5_diversity(
    case: Optional[CaseStudy] = None,
    entry: str = "c4",
    target: Optional[str] = None,
    p_avg: float = P_AVG,
    p_max: float = P_MAX,
    seed: int = 11,
    random_seeds: Sequence[int] = (3, 7, 11, 19, 23),
) -> Dict[str, DiversityReport]:
    """Diversity metric d_bn for the five assignments (paper Table V).

    Entry c4 with prior 1.0, target t5, uniform exploit choice — the
    protocol of Section VII-C1.  The paper evaluates one concrete random
    assignment; to avoid seed lottery we report the random row as the mean
    compromise probability over ``random_seeds`` draws (a single-seed row
    can be obtained with ``random_seeds=(s,)``).
    """
    case = case or stuxnet_case_study()
    target = target or case.target
    assignments = case_study_assignments(case, seed=seed)

    def evaluate(assignment: ProductAssignment) -> DiversityReport:
        """Diversity metric of one assignment (shared sweep settings)."""
        return diversity_metric(
            case.network,
            assignment,
            case.similarity,
            entry=entry,
            target=target,
            p_avg=p_avg,
            p_max=p_max,
            attacker="uniform",
        )

    reports = {
        label: evaluate(assignment)
        for label, assignment in assignments.items()
        if label != "random"
    }
    random_reports = [
        evaluate(random_assignment(case.network, seed=s)) for s in random_seeds
    ]
    p_with = sum(r.p_with for r in random_reports) / len(random_reports)
    p_without = random_reports[0].p_without
    reports["random"] = DiversityReport(
        p_with=p_with,
        p_without=p_without,
        d_bn=min(1.0, p_without / p_with) if p_with > 0 else 1.0,
        entry=entry,
        target=target,
    )
    # Preserve the paper's row order.
    order = ["optimal", "host_constrained", "product_constrained", "random", "mono"]
    return {label: reports[label] for label in order}


# ---------------------------------------------------------------- Table VI


def table6_mttc(
    case: Optional[CaseStudy] = None,
    runs: int = 1000,
    max_ticks: int = 400,
    p_avg: float = P_AVG,
    p_max: float = P_MAX,
    seed: int = 11,
    labels: Sequence[str] = ("optimal", "host_constrained", "product_constrained", "mono"),
    workers: Optional[int] = None,
) -> Dict[Tuple[str, str], MTTCResult]:
    """MTTC for each (assignment, entry point) cell (paper Table VI).

    Five entry points, sophisticated attacker, ``runs`` simulations per
    cell (the paper uses 1,000).  Each (assignment, entry) cell is an
    independent :class:`~repro.runner.Job` carrying its own seed —
    ``workers`` spreads the 20-cell grid over processes and a parallel run
    produces exactly the serial table (the per-cell seeds are unchanged
    from the pre-runner implementation).
    """
    case = case or stuxnet_case_study()
    assignments = case_study_assignments(case, seed=seed)
    jobs = [
        Job(
            key=(label, entry),
            fn=mean_time_to_compromise,
            kwargs=dict(
                network=case.network,
                assignment=assignments[label],
                similarity=case.similarity,
                entry=entry,
                target=case.target,
                runs=runs,
                max_ticks=max_ticks,
                p_avg=p_avg,
                p_max=p_max,
                attacker="sophisticated",
                seed=seed * 1000 + position,
            ),
        )
        for label in labels
        for position, entry in enumerate(case.entries)
    ]
    return run_jobs(jobs, workers=workers)


# ------------------------------------------------------- Tables VII/VIII/IX


@dataclass(frozen=True)
class ScalabilityCell:
    """One timing measurement of the scalability study.

    Attributes:
        config: the workload parameters.
        seconds: wall-clock optimisation time (MRF build + solve).
        energy: achieved energy (sanity: finite and reproducible).
        edges: actual host-graph edge count.
    """

    config: RandomNetworkConfig
    seconds: float
    energy: float
    edges: int

    def row(self) -> str:
        """One formatted row of the scalability table."""
        return (
            f"hosts={self.config.hosts:<6} deg={self.config.degree:<3} "
            f"serv={self.config.services:<3} edges={self.edges:<7} "
            f"time={self.seconds:8.3f}s"
        )


def scalability_cell(
    config: RandomNetworkConfig,
    solver: str = "trws",
    max_iterations: int = 8,
    compute_bound: bool = False,
    shards: Optional[Union[int, str]] = None,
    dual_options: Optional[Dict[str, Any]] = None,
) -> ScalabilityCell:
    """Time one optimisation run on a random workload.

    The timer covers MRF construction plus solving — the paper's
    "computational time of optimizing networks".  The dual bound is off by
    default (the paper's timing runs report time-to-solution, and the bound
    costs one extra message pass per iteration).  ``shards`` routes the
    solve through the component partition with that many concurrent shard
    workers (see :func:`repro.core.diversify.diversify`);
    ``shards="zones"`` derives the partition from a synthetic zone model
    over the random workload (contiguous host groups — purely a scheduling
    granularity, the decomposition stays exact); ``shards="cut"`` runs
    Lagrangian dual decomposition over a balanced edge cut of the giant
    component, tuned by ``dual_options`` (``parts``, ``max_rounds``,
    ``gap_tolerance``, ``executor`` — see
    :class:`repro.mrf.dual.DualDecompositionSolver`).
    """
    network = random_network(config)
    similarity = random_similarity(config)
    zones = _synthetic_zone_model(network) if shards == "zones" else None
    extra = dict(dual_options or {}) if shards == "cut" else {}
    start = time.perf_counter()
    result = diversify(
        network,
        similarity,
        solver=solver,
        max_iterations=max_iterations,
        compute_bound=compute_bound,
        shards=shards,
        zones=zones,
        **extra,
    )
    elapsed = time.perf_counter() - start
    return ScalabilityCell(
        config=config,
        seconds=elapsed,
        energy=result.energy,
        edges=network.edge_count(),
    )


def _synthetic_zone_model(
    network, zone_hosts: int = 250
) -> "ZonedNetwork":
    """A contiguous-chunk zone model over a generated workload.

    The random scalability networks carry no real segmentation, so
    ``--shards zones`` gets a synthetic one: hosts in insertion order,
    ``zone_hosts`` per zone.  Zone grouping only *merges* connected
    components into shards, so any grouping keeps the sharded solve exact
    — the model here sets scheduling granularity, nothing else.
    """
    from repro.network.zones import Zone, ZonedNetwork

    hosts = network.hosts
    zones = [
        Zone(
            f"zone{k}",
            tuple(hosts[start : start + zone_hosts]),
            topology="custom",
            links=(),
        )
        for k, start in enumerate(range(0, len(hosts), zone_hosts))
    ]
    return ZonedNetwork(zones, rules=[])


def scalability_sweep(
    configs: Dict[Tuple[str, int], RandomNetworkConfig],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    **cell_options,
) -> Dict[Tuple[str, int], ScalabilityCell]:
    """Run one :func:`scalability_cell` per grid point, optionally parallel.

    The shared engine behind Tables VII-IX: each cell is an independent
    :class:`~repro.runner.Job` (the workload's randomness is pinned by its
    ``RandomNetworkConfig.seed``), executed serially or over a process pool
    — energies and edge counts are identical either way, only wall-clock
    timings vary with machine load.  Big grids (the ``--full`` sweeps spawn
    hundreds of cells) dispatch in chunks to amortise pool IPC; pass
    ``chunksize`` to override the ~4-chunks-per-worker default.
    """
    jobs = [
        Job(key=key, fn=scalability_cell, kwargs=dict(config=config, **cell_options))
        for key, config in configs.items()
    ]
    if chunksize is None:
        chunksize = max(1, len(jobs) // (4 * resolve_workers(workers)))
    return run_jobs(jobs, workers=workers, chunksize=chunksize)


def table7_rows(
    host_counts: Sequence[int] = (100, 200, 400, 600, 800, 1000),
    densities: Sequence[Tuple[str, int, int]] = (
        ("mid-density", 20, 15),
        ("high-density", 40, 25),
    ),
    seed: int = 0,
    workers: Optional[int] = None,
    **cell_options,
) -> Dict[Tuple[str, int], ScalabilityCell]:
    """Runtime vs #hosts at the paper's two density settings (Table VII).

    The paper sweeps 100 → 6000 hosts; the default here stops at 1000 to
    stay laptop-friendly — pass a larger ``host_counts`` to extend, and
    ``workers`` to spread the cells over processes.
    """
    configs = {
        (label, hosts): RandomNetworkConfig(
            hosts=hosts, degree=degree, services=services, seed=seed
        )
        for label, degree, services in densities
        for hosts in host_counts
    }
    return scalability_sweep(configs, workers=workers, **cell_options)


def table8_rows(
    degrees: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
    scales: Sequence[Tuple[str, int, int]] = (("mid-scale", 1000, 15),),
    seed: int = 0,
    workers: Optional[int] = None,
    **cell_options,
) -> Dict[Tuple[str, int], ScalabilityCell]:
    """Runtime vs degree at fixed host count (Table VIII).

    The paper's second row is ("large-scale", 6000, 25); include it in
    ``scales`` for a full-size run.
    """
    configs = {
        (label, degree): RandomNetworkConfig(
            hosts=hosts, degree=degree, services=services, seed=seed
        )
        for label, hosts, services in scales
        for degree in degrees
    }
    return scalability_sweep(configs, workers=workers, **cell_options)


def table9_rows(
    service_counts: Sequence[int] = (5, 10, 15, 20, 25, 30),
    scales: Sequence[Tuple[str, int, int]] = (("mid-scale", 1000, 20),),
    seed: int = 0,
    workers: Optional[int] = None,
    **cell_options,
) -> Dict[Tuple[str, int], ScalabilityCell]:
    """Runtime vs services per host (Table IX).

    The paper's second row is ("large-scale", 6000, 40).
    """
    configs = {
        (label, services): RandomNetworkConfig(
            hosts=hosts, degree=degree, services=services, seed=seed
        )
        for label, hosts, degree in scales
        for services in service_counts
    }
    return scalability_sweep(configs, workers=workers, **cell_options)
