"""Standard topologies and the paper's Fig. 1 motivational network.

These builders produce small, regular :class:`~repro.network.model.Network`
instances used throughout tests, examples and the motivational-example
benchmark.  Every host gets the same service → candidate-products map, which
is the homogeneous setting of the paper's illustrative figures.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional, Sequence

from repro.network.model import Network

__all__ = [
    "chain_network",
    "ring_network",
    "star_network",
    "grid_network",
    "tree_network",
    "complete_network",
    "scale_free_network",
    "motivational_network",
    "MOTIVATIONAL_ENTRY",
    "MOTIVATIONAL_TARGET",
]

_DEFAULT_SERVICES: Mapping[str, Sequence[str]] = {"svc": ("p0", "p1")}


def _uniform(count: int, services: Optional[Mapping[str, Sequence[str]]]) -> Network:
    network = Network()
    spec = services or _DEFAULT_SERVICES
    for index in range(count):
        network.add_host(f"h{index}", spec)
    return network


def chain_network(
    count: int, services: Optional[Mapping[str, Sequence[str]]] = None
) -> Network:
    """h0 - h1 - ... - h(n-1)."""
    network = _uniform(count, services)
    network.add_links((f"h{i}", f"h{i + 1}") for i in range(count - 1))
    return network


def ring_network(
    count: int, services: Optional[Mapping[str, Sequence[str]]] = None
) -> Network:
    """A cycle of ``count`` hosts (count >= 3)."""
    if count < 3:
        raise ValueError("a ring needs at least 3 hosts")
    network = _uniform(count, services)
    network.add_links((f"h{i}", f"h{(i + 1) % count}") for i in range(count))
    return network


def star_network(
    leaves: int, services: Optional[Mapping[str, Sequence[str]]] = None
) -> Network:
    """A hub ``h0`` connected to ``leaves`` leaf hosts."""
    network = _uniform(leaves + 1, services)
    network.add_links(("h0", f"h{i}") for i in range(1, leaves + 1))
    return network


def grid_network(
    rows: int, cols: int, services: Optional[Mapping[str, Sequence[str]]] = None
) -> Network:
    """A rows × cols 4-neighbour lattice; hosts are named ``h<r>_<c>``."""
    network = Network()
    spec = services or _DEFAULT_SERVICES
    for r in range(rows):
        for c in range(cols):
            network.add_host(f"h{r}_{c}", spec)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                network.add_link(f"h{r}_{c}", f"h{r}_{c + 1}")
            if r + 1 < rows:
                network.add_link(f"h{r}_{c}", f"h{r + 1}_{c}")
    return network


def tree_network(
    depth: int,
    branching: int = 2,
    services: Optional[Mapping[str, Sequence[str]]] = None,
) -> Network:
    """A complete ``branching``-ary tree of the given depth (root ``h0``)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    count = sum(branching**level for level in range(depth + 1))
    network = _uniform(count, services)
    for parent in range(count):
        for child_slot in range(branching):
            child = parent * branching + child_slot + 1
            if child < count:
                network.add_link(f"h{parent}", f"h{child}")
    return network


def complete_network(
    count: int, services: Optional[Mapping[str, Sequence[str]]] = None
) -> Network:
    """The complete graph K_n."""
    network = _uniform(count, services)
    network.add_links(
        (f"h{i}", f"h{j}") for i in range(count) for j in range(i + 1, count)
    )
    return network


def scale_free_network(
    count: int,
    attach: int = 2,
    seed: int = 0,
    services: Optional[Mapping[str, Sequence[str]]] = None,
) -> Network:
    """A preferential-attachment (Barabási–Albert) network of ``count`` hosts.

    Growth starts from a seed clique of ``attach + 1`` hosts; every later
    host attaches to ``attach`` distinct existing hosts drawn with
    probability proportional to their current degree (sampling from the
    repeated-endpoints urn).  The result is a single connected component
    with a heavy-tailed degree distribution — the "giant component" shape
    of real estates that the dual decomposition tier
    (:mod:`repro.mrf.dual`) is built to cut apart.  Deterministic for a
    given ``seed``.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    core = attach + 1
    if count < core:
        raise ValueError(f"need at least {core} hosts for attach={attach}")
    network = _uniform(count, services)
    rng = random.Random(seed)
    # Urn of endpoint repeats: a host appears once per incident link, so a
    # uniform draw from the urn is a degree-proportional draw.
    urn: list = []
    for i in range(core):
        for j in range(i + 1, core):
            network.add_link(f"h{i}", f"h{j}")
            urn.extend((i, j))
    for new in range(core, count):
        targets: set = set()
        while len(targets) < attach:
            targets.add(rng.choice(urn))
        for target in sorted(targets):
            network.add_link(f"h{new}", f"h{target}")
            urn.extend((new, target))
    return network


#: Entry and target hosts of the paper's Fig. 1 example.
MOTIVATIONAL_ENTRY = "entry"
MOTIVATIONAL_TARGET = "target"

#: The alternating (fully diversified) labelling of the Fig. 1 example.
MOTIVATIONAL_DIVERSIFIED = {
    "entry": "circle",
    "m1": "triangle",
    "m2": "circle",
    "target": "triangle",
    "x1": "triangle",
    "x2": "circle",
    "x3": "triangle",
    "x4": "circle",
}


def motivational_network(
    multi_label: bool = False,
) -> Network:
    """The 8-host network of the paper's motivational example (Fig. 1).

    An ``entry`` host reaches a ``target`` host over the 3-hop path
    ``entry - m1 - m2 - target``; four side hosts ``x1``-``x4`` hang off the
    path hosts, giving the 8-host graph the figure sketches.  With
    ``multi_label=False`` every host runs a single service choosable between
    the figure's two products (``circle`` / ``triangle``) — panels (a) and
    (b).  With ``multi_label=True`` the three path hosts before the target
    additionally run a second service whose only product is ``square`` —
    panel (c)'s extra attack vector, exploitable end-to-end except on the
    final hop.

    With the alternating assignment :data:`MOTIVATIONAL_DIVERSIFIED` and an
    infection rate equal to the similarity, the target-compromise
    probability reproduces the figure: 0 in panel (a) (similarity 0),
    ``0.5³ = 0.125`` in panel (b) (similarity 0.5), and ``0.5`` in panel
    (c) (the square exploit carries the first two hops at rate 1).
    """
    single = {"svc": ("circle", "triangle")}
    network = Network()
    names = ["entry", "m1", "m2", "target", "x1", "x2", "x3", "x4"]
    for name in names:
        network.add_host(name, single)
    if multi_label:
        for name in ("entry", "m1", "m2"):
            network.add_service(name, "svc2", ("square",))
    network.add_links(
        [
            ("entry", "m1"),
            ("m1", "m2"),
            ("m2", "target"),
            ("entry", "x1"),
            ("m1", "x2"),
            ("m2", "x3"),
            ("target", "x4"),
        ]
    )
    return network
