"""Configuration constraints (paper Definition 4).

The paper distinguishes:

* **Host constraints** — a host must run a specific product (legacy software
  that cannot be diversified, or company policy): :class:`FixProduct`.  The
  complementary :class:`ForbidProduct` bans one candidate.
* **Combination constraints** — conditional (un)desirable product
  combinations, local (one host) or global (``ALL`` hosts):

  - ``c_y = ⟨h, s_m, s_n, +p_j, +p_l⟩`` (:class:`RequireCombination`): if
    service ``s_m`` runs ``p_j`` then service ``s_n`` must run ``p_l``.
  - ``c_x = ⟨h, s_m, s_n, +p_j, −p_k⟩`` (:class:`AvoidCombination`): if
    service ``s_m`` runs ``p_j`` then service ``s_n`` must *not* run ``p_k``.

A :class:`ConstraintSet` bundles constraints, checks satisfaction of an
assignment, and reports violations.  The optimiser consumes constraints via
:mod:`repro.core.costs`, which encodes them into unary masks and intra-host
pairwise tables exactly as the paper folds them into the cost function
(Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.network.assignment import ProductAssignment
from repro.network.model import Network, NetworkError

__all__ = [
    "FixProduct",
    "ForbidProduct",
    "RequireCombination",
    "AvoidCombination",
    "Constraint",
    "ConstraintSet",
    "ConstraintViolation",
    "GLOBAL",
]

#: Sentinel host value applying a combination constraint to every host.
GLOBAL = "ALL"


@dataclass(frozen=True)
class FixProduct:
    """Require α′(host, service) == product (legacy/policy pinning)."""

    host: str
    service: str
    product: str

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return f"{self.host}.{self.service} must be {self.product}"


@dataclass(frozen=True)
class ForbidProduct:
    """Require α′(host, service) != product."""

    host: str
    service: str
    product: str

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return f"{self.host}.{self.service} must not be {self.product}"


@dataclass(frozen=True)
class RequireCombination:
    """⟨host, s_m, s_n, +p_j, +p_l⟩: if s_m is p_j then s_n must be p_l.

    ``host == GLOBAL`` applies the rule at every host running both services.
    """

    host: str
    service_m: str
    product_j: str
    service_n: str
    product_l: str

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        scope = "all hosts" if self.host == GLOBAL else self.host
        return (
            f"at {scope}: {self.service_m}={self.product_j} requires "
            f"{self.service_n}={self.product_l}"
        )


@dataclass(frozen=True)
class AvoidCombination:
    """⟨host, s_m, s_n, +p_j, −p_k⟩: if s_m is p_j then s_n must not be p_k.

    ``host == GLOBAL`` applies the rule at every host running both services.
    """

    host: str
    service_m: str
    product_j: str
    service_n: str
    product_k: str

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        scope = "all hosts" if self.host == GLOBAL else self.host
        return (
            f"at {scope}: {self.service_m}={self.product_j} forbids "
            f"{self.service_n}={self.product_k}"
        )


Constraint = Union[FixProduct, ForbidProduct, RequireCombination, AvoidCombination]


@dataclass(frozen=True)
class ConstraintViolation:
    """One violated constraint, with the assignment values that broke it."""

    constraint: Constraint
    host: str
    detail: str

    def __str__(self) -> str:
        return f"violation at {self.host}: {self.detail}"


class ConstraintSet:
    """An ordered collection of constraints with satisfaction checking."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._constraints: List[Constraint] = list(constraints)

    def add(self, constraint: Constraint) -> None:
        """Append one constraint (order matters for cost accumulation)."""
        self._constraints.append(constraint)

    def remove(self, constraint: Constraint) -> None:
        """Remove the first occurrence of ``constraint``.

        Raises :class:`ValueError` when the constraint is not in the set —
        the streaming engine relies on removals naming live constraints.
        """
        self._constraints.remove(constraint)

    def discard_where(self, predicate) -> List[Constraint]:
        """Drop every constraint matching ``predicate``; return the dropped.

        The bulk-removal primitive behind the streaming engine's
        idempotent events (``UnpinService``/``AllowRange``) and the
        host-departure pruning of :func:`~repro.stream.events.apply_event`.
        """
        dropped = [c for c in self._constraints if predicate(c)]
        if dropped:
            self._constraints = [
                c for c in self._constraints if not predicate(c)
            ]
        return dropped

    def prune_host(self, host: str) -> List[Constraint]:
        """Drop constraints referencing ``host``; return the dropped.

        Host constraints (Fix/Forbid) and host-scoped combination
        constraints vanish with the host; ``GLOBAL`` combination rules
        survive (they re-apply to whichever hosts remain).  This is the
        reference semantics of a host decommission under constraint churn.
        """
        return self.discard_where(
            lambda c: getattr(c, "host", None) == host
        )

    def copy(self) -> "ConstraintSet":
        """A shallow copy (constraints are frozen, so sharing is safe)."""
        return ConstraintSet(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __bool__(self) -> bool:
        return bool(self._constraints)

    def fixed_products(self) -> List[FixProduct]:
        """All :class:`FixProduct` constraints, in insertion order."""
        return [c for c in self._constraints if isinstance(c, FixProduct)]

    def unary_constraints_for(
        self, host: str, service: str
    ) -> List[Union[FixProduct, ForbidProduct]]:
        """Fix/Forbid constraints pinned to one (host, service) variable."""
        return [
            c
            for c in self._constraints
            if isinstance(c, (FixProduct, ForbidProduct))
            and c.host == host
            and c.service == service
        ]

    def combination_constraints(
        self,
    ) -> List[Union[RequireCombination, AvoidCombination]]:
        """All combination constraints, in insertion order."""
        return [
            c
            for c in self._constraints
            if isinstance(c, (RequireCombination, AvoidCombination))
        ]

    def validate_against(self, network: Network) -> None:
        """Check constraints refer to real hosts/services/candidates.

        Raises :class:`~repro.network.model.NetworkError` on dangling
        references so configuration mistakes surface before optimisation.
        """
        for constraint in self._constraints:
            if isinstance(constraint, (FixProduct, ForbidProduct)):
                candidates = network.candidates(constraint.host, constraint.service)
                if constraint.product not in candidates:
                    raise NetworkError(
                        f"constraint {constraint.describe()!r} names product "
                        f"{constraint.product!r} outside the candidate range"
                    )
            else:
                hosts = self._scope_hosts(constraint, network)
                if constraint.host != GLOBAL and not hosts:
                    raise NetworkError(
                        f"constraint {constraint.describe()!r} applies to no host "
                        f"running both services"
                    )

    def violations(
        self, assignment: ProductAssignment, network: Optional[Network] = None
    ) -> List[ConstraintViolation]:
        """All violations of this set by ``assignment``.

        Unassigned pairs never violate — constraints restrict values, not
        completeness (use :meth:`ProductAssignment.is_complete` for that).
        """
        net = network or assignment.network
        found: List[ConstraintViolation] = []
        for constraint in self._constraints:
            found.extend(self._check(constraint, assignment, net))
        return found

    def is_satisfied(
        self, assignment: ProductAssignment, network: Optional[Network] = None
    ) -> bool:
        """True when ``assignment`` violates nothing in this set."""
        return not self.violations(assignment, network)

    def describe(self) -> str:
        """One line per constraint, in insertion order."""
        return "\n".join(c.describe() for c in self._constraints)

    def __repr__(self) -> str:
        return f"ConstraintSet({len(self._constraints)} constraints)"

    # -------------------------------------------------------------- internal

    def _check(
        self,
        constraint: Constraint,
        assignment: ProductAssignment,
        network: Network,
    ) -> Iterator[ConstraintViolation]:
        if isinstance(constraint, FixProduct):
            actual = assignment.get(constraint.host, constraint.service)
            if actual is not None and actual != constraint.product:
                yield ConstraintViolation(
                    constraint,
                    constraint.host,
                    f"{constraint.service} is {actual}, required {constraint.product}",
                )
        elif isinstance(constraint, ForbidProduct):
            actual = assignment.get(constraint.host, constraint.service)
            if actual == constraint.product:
                yield ConstraintViolation(
                    constraint,
                    constraint.host,
                    f"{constraint.service} is {actual}, which is forbidden",
                )
        elif isinstance(constraint, RequireCombination):
            for host in self._scope_hosts(constraint, network):
                trigger = assignment.get(host, constraint.service_m)
                partner = assignment.get(host, constraint.service_n)
                if trigger == constraint.product_j and partner is not None:
                    if partner != constraint.product_l:
                        yield ConstraintViolation(
                            constraint,
                            host,
                            f"{constraint.service_m}={trigger} but "
                            f"{constraint.service_n}={partner}, "
                            f"required {constraint.product_l}",
                        )
        elif isinstance(constraint, AvoidCombination):
            for host in self._scope_hosts(constraint, network):
                trigger = assignment.get(host, constraint.service_m)
                partner = assignment.get(host, constraint.service_n)
                if trigger == constraint.product_j and partner == constraint.product_k:
                    yield ConstraintViolation(
                        constraint,
                        host,
                        f"{constraint.service_m}={trigger} with forbidden "
                        f"{constraint.service_n}={partner}",
                    )
        else:  # pragma: no cover - union is closed
            raise TypeError(f"unknown constraint type: {constraint!r}")

    @staticmethod
    def _scope_hosts(
        constraint: Union[RequireCombination, AvoidCombination], network: Network
    ) -> List[str]:
        """Hosts a combination constraint applies to (must run both services)."""
        if constraint.host == GLOBAL:
            hosts: Sequence[str] = network.hosts
        else:
            network._require_host(constraint.host)
            hosts = [constraint.host]
        return [
            h
            for h in hosts
            if network.has_service(h, constraint.service_m)
            and network.has_service(h, constraint.service_n)
        ]
