"""Zones and firewall policies (the structure of the paper's Fig. 3).

A segmented ICS is not an arbitrary graph: hosts live in *zones* (corporate
network, DMZ, operations, control, ...), each zone has an internal LAN
topology, and traffic *between* zones is only possible where a firewall
white-list rule allows it — the paper's Fig. 3 prints exactly such rules
("c2, c4 → z4"; "z4 → t1, t2"; ...).  This module makes that structure a
first-class model:

* :class:`Zone` — a named host group with an internal topology
  (``"ring"``, ``"chain"``, ``"mesh"`` or explicit link list);
* :class:`FirewallRule` — a white-list of host pairs between two zones;
* :class:`ZonedNetwork` — assembles zones + rules into a
  :class:`~repro.network.model.Network`, and *audits* an existing network
  against the policy (flagging links that cross zones without a rule —
  the misconfiguration that let Stuxnet jump segments).

The case study's link list is validated against this model in tests; the
builder is also handy for constructing custom segmented topologies in
examples and user code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.network.model import Network, NetworkError

__all__ = ["Zone", "FirewallRule", "PolicyViolation", "ZonedNetwork"]


@dataclass(frozen=True)
class Zone:
    """A named host segment with an internal LAN topology.

    Attributes:
        name: zone identifier.
        hosts: member hosts (order defines ring/chain adjacency).
        topology: ``"ring"`` (default), ``"chain"``, ``"mesh"``, or
            ``"custom"`` with explicit ``links``.
        links: explicit intra-zone links for ``topology="custom"``.
    """

    name: str
    hosts: Tuple[str, ...]
    topology: str = "ring"
    links: Tuple[Tuple[str, str], ...] = ()

    _TOPOLOGIES = ("ring", "chain", "mesh", "custom")

    def __post_init__(self) -> None:
        if not self.hosts:
            raise ValueError(f"zone {self.name!r} needs at least one host")
        if len(set(self.hosts)) != len(self.hosts):
            raise ValueError(f"zone {self.name!r} has duplicate hosts")
        if self.topology not in self._TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; use one of {self._TOPOLOGIES}"
            )
        if self.topology == "custom":
            members = set(self.hosts)
            for a, b in self.links:
                if a not in members or b not in members:
                    raise ValueError(
                        f"custom link ({a!r}, {b!r}) leaves zone {self.name!r}"
                    )
        elif self.links:
            raise ValueError("explicit links require topology='custom'")

    def internal_links(self) -> List[Tuple[str, str]]:
        """The intra-zone link list implied by the topology."""
        hosts = self.hosts
        if self.topology == "custom":
            return list(self.links)
        if len(hosts) == 1:
            return []
        if self.topology == "chain":
            return list(zip(hosts, hosts[1:]))
        if self.topology == "ring":
            if len(hosts) == 2:
                return [(hosts[0], hosts[1])]
            return list(zip(hosts, hosts[1:])) + [(hosts[-1], hosts[0])]
        # mesh
        return [
            (hosts[i], hosts[j])
            for i in range(len(hosts))
            for j in range(i + 1, len(hosts))
        ]


@dataclass(frozen=True)
class FirewallRule:
    """A white-list of allowed host pairs between two zones.

    ``sources``/``destinations`` are hosts (the paper's rules name hosts,
    e.g. "c2, c4 → z4").  Links are undirected in the propagation model,
    so a rule allows the physical connection regardless of direction; the
    source/destination split documents intent.
    """

    source_zone: str
    destination_zone: str
    sources: Tuple[str, ...]
    destinations: Tuple[str, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.sources or not self.destinations:
            raise ValueError("a firewall rule needs sources and destinations")

    def allowed_pairs(self) -> List[Tuple[str, str]]:
        """All (source, destination) host pairs this rule permits."""
        return [(s, d) for s in self.sources for d in self.destinations]

    def describe(self) -> str:
        """Human-readable one-liner for this firewall rule."""
        text = (
            f"{self.source_zone} -> {self.destination_zone}: "
            f"{', '.join(self.sources)} -> {', '.join(self.destinations)}"
        )
        return f"{text}  ({self.description})" if self.description else text


@dataclass(frozen=True)
class PolicyViolation:
    """A link crossing zones without any permitting firewall rule."""

    link: Tuple[str, str]
    source_zone: str
    destination_zone: str

    def __str__(self) -> str:
        return (
            f"link {self.link[0]} -- {self.link[1]} crosses "
            f"{self.source_zone} -> {self.destination_zone} without a rule"
        )


class ZonedNetwork:
    """Zones + firewall rules, buildable into (or audited against) a Network.

    >>> it = Zone("it", ("a", "b"), topology="chain")
    >>> ot = Zone("ot", ("c",))
    >>> rule = FirewallRule("it", "ot", ("b",), ("c",))
    >>> zoned = ZonedNetwork([it, ot], [rule])
    >>> sorted(zoned.all_links())
    [('a', 'b'), ('b', 'c')]
    """

    def __init__(
        self,
        zones: Iterable[Zone],
        rules: Iterable[FirewallRule] = (),
    ) -> None:
        self.zones: List[Zone] = list(zones)
        self.rules: List[FirewallRule] = list(rules)
        self._zone_of: Dict[str, str] = {}
        names = set()
        for zone in self.zones:
            if zone.name in names:
                raise ValueError(f"duplicate zone name {zone.name!r}")
            names.add(zone.name)
            for host in zone.hosts:
                if host in self._zone_of:
                    raise ValueError(
                        f"host {host!r} belongs to both {self._zone_of[host]!r} "
                        f"and {zone.name!r}"
                    )
                self._zone_of[host] = zone.name
        for rule in self.rules:
            for name in (rule.source_zone, rule.destination_zone):
                if name not in names:
                    raise ValueError(f"firewall rule names unknown zone {name!r}")
            for host in rule.sources:
                if self._zone_of.get(host) != rule.source_zone:
                    raise ValueError(
                        f"rule source {host!r} is not in zone {rule.source_zone!r}"
                    )
            for host in rule.destinations:
                if self._zone_of.get(host) != rule.destination_zone:
                    raise ValueError(
                        f"rule destination {host!r} is not in zone "
                        f"{rule.destination_zone!r}"
                    )

    # -------------------------------------------------------------- queries

    def zone_of(self, host: str) -> str:
        """The zone a host belongs to (KeyError for unknown hosts)."""
        return self._zone_of[host]

    def hosts(self) -> List[str]:
        """Every host, zone by zone, in declaration order."""
        return [host for zone in self.zones for host in zone.hosts]

    def cross_zone_links(self) -> List[Tuple[str, str]]:
        """All firewall-permitted inter-zone links (deduplicated)."""
        seen: Set[Tuple[str, str]] = set()
        for rule in self.rules:
            for s, d in rule.allowed_pairs():
                key = (s, d) if s <= d else (d, s)
                seen.add(key)
        return sorted(seen)

    def all_links(self) -> List[Tuple[str, str]]:
        """Intra-zone plus permitted inter-zone links."""
        seen: Set[Tuple[str, str]] = set()
        for zone in self.zones:
            for a, b in zone.internal_links():
                seen.add((a, b) if a <= b else (b, a))
        seen.update(self.cross_zone_links())
        return sorted(seen)

    # ------------------------------------------------------------- building

    def build_network(
        self, catalog: Mapping[str, Mapping[str, Sequence[str]]]
    ) -> Network:
        """Assemble a Network from the zoned structure and a host catalogue.

        ``catalog`` maps every host to its service → candidate-products
        spec; missing hosts raise so silent gaps cannot occur.
        """
        network = Network()
        for host in self.hosts():
            if host not in catalog:
                raise NetworkError(f"catalog misses host {host!r}")
            network.add_host(host, catalog[host])
        network.add_links(self.all_links())
        return network

    # -------------------------------------------------------------- auditing

    def audit(self, network: Network) -> List[PolicyViolation]:
        """Flag links of ``network`` that cross zones without a rule.

        Hosts unknown to the zone model are ignored (they are outside the
        policy's scope); intra-zone links are always permitted.
        """
        permitted = set(self.cross_zone_links())
        violations: List[PolicyViolation] = []
        for a, b in network.links:
            zone_a = self._zone_of.get(a)
            zone_b = self._zone_of.get(b)
            if zone_a is None or zone_b is None or zone_a == zone_b:
                continue
            key = (a, b) if a <= b else (b, a)
            if key not in permitted:
                violations.append(
                    PolicyViolation(link=(a, b), source_zone=zone_a,
                                    destination_zone=zone_b)
                )
        return violations

    def describe(self) -> str:
        """Multi-line zone-model summary."""
        lines = [f"{len(self.zones)} zones, {len(self.rules)} firewall rules"]
        for zone in self.zones:
            lines.append(
                f"  zone {zone.name} ({zone.topology}): {', '.join(zone.hosts)}"
            )
        for rule in self.rules:
            lines.append(f"  rule {rule.describe()}")
        return "\n".join(lines)
