"""Network model: hosts, links, services, products and assignments.

This subpackage implements Definitions 2-5 of the paper:

``repro.network.model``
    :class:`Network` — hosts, undirected links, per-host services and
    per-(host, service) candidate product ranges (Definition 2).
``repro.network.assignment``
    :class:`ProductAssignment` — the map α′ : H × S → P (Definition 3).
``repro.network.constraints``
    Local/global configuration constraints (Definition 4).
``repro.network.generator``
    Random networks for the scalability study (Section VIII).
``repro.network.topologies``
    Standard topologies plus the paper's Fig. 1 motivational network.
"""

from repro.network.model import Network
from repro.network.assignment import ProductAssignment
from repro.network.constraints import (
    AvoidCombination,
    ConstraintSet,
    ConstraintViolation,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.generator import RandomNetworkConfig, random_network, random_similarity
from repro.network.io import (
    load_network,
    network_from_json,
    network_to_json,
    save_network,
)
from repro.network.zones import FirewallRule, PolicyViolation, Zone, ZonedNetwork
from repro.network.topologies import (
    chain_network,
    complete_network,
    grid_network,
    motivational_network,
    ring_network,
    scale_free_network,
    star_network,
    tree_network,
)

__all__ = [
    "Network",
    "ProductAssignment",
    "ConstraintSet",
    "ConstraintViolation",
    "FixProduct",
    "ForbidProduct",
    "RequireCombination",
    "AvoidCombination",
    "RandomNetworkConfig",
    "random_network",
    "random_similarity",
    "network_to_json",
    "network_from_json",
    "save_network",
    "load_network",
    "Zone",
    "FirewallRule",
    "PolicyViolation",
    "ZonedNetwork",
    "chain_network",
    "ring_network",
    "star_network",
    "grid_network",
    "tree_network",
    "scale_free_network",
    "complete_network",
    "motivational_network",
]
