"""The network model (paper Definition 2).

A :class:`Network` is N = ⟨H, L, S, P⟩: a set of hosts, undirected links
between hosts, per-host service sets, and per-(host, service) ranges of
candidate products.  The model deliberately gives every host a *customised*
service set and every service a host-specific product range — the paper
stresses this flexibility (Section VII-A) because in a real ICS the products
installable on a WinCC client differ from those on a vendor workstation.

Products and services are plain strings; similarity between products is kept
separately in :class:`~repro.nvd.similarity.SimilarityTable` so the same
network can be evaluated under different vulnerability data.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = ["Network", "NetworkError"]


class NetworkError(ValueError):
    """Raised on malformed network operations (unknown hosts, self-links...)."""


class Network:
    """An undirected network of hosts with services and candidate products.

    >>> net = Network()
    >>> net.add_host("h0", {"web": ["wb1", "wb2"], "db": ["db1", "db2"]})
    >>> net.add_host("h1", {"web": ["wb1", "wb2"]})
    >>> net.add_link("h0", "h1")
    >>> sorted(net.shared_services("h0", "h1"))
    ['web']
    """

    def __init__(self) -> None:
        # host -> service -> tuple of candidate products (ordered, no dups)
        self._hosts: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        self._links: Set[Tuple[str, str]] = set()
        self._adjacency: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------- building

    def add_host(
        self,
        host: str,
        services: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        """Add a host with its service → candidate-products map.

        Re-adding an existing host raises; use :meth:`set_candidates` to
        amend a host's product ranges.
        """
        if host in self._hosts:
            raise NetworkError(f"host {host!r} already exists")
        self._hosts[host] = {}
        self._adjacency[host] = set()
        for service, products in (services or {}).items():
            self.add_service(host, service, products)

    def add_service(self, host: str, service: str, products: Sequence[str]) -> None:
        """Declare that ``host`` runs ``service``, choosable from ``products``."""
        self._require_host(host)
        candidates = _unique(products)
        if not candidates:
            raise NetworkError(
                f"service {service!r} at host {host!r} needs at least one candidate product"
            )
        if service in self._hosts[host]:
            raise NetworkError(f"service {service!r} already declared at host {host!r}")
        self._hosts[host][service] = candidates

    def set_candidates(self, host: str, service: str, products: Sequence[str]) -> None:
        """Replace the candidate range of an existing (host, service)."""
        self._require_service(host, service)
        candidates = _unique(products)
        if not candidates:
            raise NetworkError("candidate range cannot be emptied")
        self._hosts[host][service] = candidates

    def add_link(self, a: str, b: str) -> None:
        """Add an undirected link; self-links and duplicates raise."""
        self._require_host(a)
        self._require_host(b)
        if a == b:
            raise NetworkError(f"self-link at {a!r}")
        key = _edge_key(a, b)
        if key in self._links:
            raise NetworkError(f"link {key} already exists")
        self._links.add(key)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    def add_links(self, pairs: Iterable[Tuple[str, str]]) -> None:
        """Add several undirected links."""
        for a, b in pairs:
            self.add_link(a, b)

    # ------------------------------------------------------------- mutation

    def remove_link(self, a: str, b: str) -> None:
        """Remove an undirected link; removing a missing link raises.

        Part of the churn-mutation surface consumed by :mod:`repro.stream`:
        hosts keep their services and candidate ranges, only the coupling
        disappears.
        """
        self._require_host(a)
        self._require_host(b)
        key = _edge_key(a, b)
        if key not in self._links:
            raise NetworkError(f"link {key} does not exist")
        self._links.discard(key)
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)

    def remove_host(self, host: str) -> None:
        """Remove a host together with all its links and services."""
        self._require_host(host)
        for neighbor in self._adjacency[host]:
            self._adjacency[neighbor].discard(host)
            self._links.discard(_edge_key(host, neighbor))
        del self._adjacency[host]
        del self._hosts[host]

    # -------------------------------------------------------------- queries

    @property
    def hosts(self) -> List[str]:
        """Host names in insertion order."""
        return list(self._hosts)

    @property
    def links(self) -> List[Tuple[str, str]]:
        """Undirected links as sorted (a, b) tuples, in deterministic order."""
        return sorted(self._links)

    def __contains__(self, host: str) -> bool:
        return host in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)

    def has_link(self, a: str, b: str) -> bool:
        """True when an undirected link couples ``a`` and ``b``."""
        return _edge_key(a, b) in self._links

    def neighbors(self, host: str) -> List[str]:
        """Hosts adjacent to ``host``, sorted."""
        self._require_host(host)
        return sorted(self._adjacency[host])

    def degree(self, host: str) -> int:
        """Number of links incident to ``host``."""
        self._require_host(host)
        return len(self._adjacency[host])

    def services_of(self, host: str) -> List[str]:
        """Services declared at ``host`` (S_hi), in declaration order."""
        self._require_host(host)
        return list(self._hosts[host])

    def has_service(self, host: str, service: str) -> bool:
        """True when ``host`` exists and runs ``service``."""
        return host in self._hosts and service in self._hosts[host]

    def candidates(self, host: str, service: str) -> Tuple[str, ...]:
        """The candidate products p(s) for ``service`` at ``host``."""
        self._require_service(host, service)
        return self._hosts[host][service]

    def service_ranges(self, host: str) -> List[Tuple[str, Tuple[str, ...]]]:
        """(service, candidate products) pairs at ``host``, declaration order.

        One validated lookup for the whole host instead of one per
        (host, service) — what the network→plan compiler's variable
        interning wants on 10⁵-variable estates.
        """
        self._require_host(host)
        return list(self._hosts[host].items())

    def all_services(self) -> List[str]:
        """The union S of services across hosts, in first-seen order."""
        seen: Dict[str, None] = {}
        for services in self._hosts.values():
            for service in services:
                seen.setdefault(service)
        return list(seen)

    def all_products(self, service: Optional[str] = None) -> List[str]:
        """The union P of products (optionally of one service), first-seen order."""
        seen: Dict[str, None] = {}
        for services in self._hosts.values():
            for name, products in services.items():
                if service is not None and name != service:
                    continue
                for product in products:
                    seen.setdefault(product)
        return list(seen)

    def shared_services(self, a: str, b: str) -> List[str]:
        """Services run on both hosts (S_hi ∩ S_hj) — the coupled services."""
        self._require_host(a)
        self._require_host(b)
        return [s for s in self._hosts[a] if s in self._hosts[b]]

    def hosts_with_service(self, service: str) -> List[str]:
        """All hosts that run ``service``."""
        return [h for h, services in self._hosts.items() if service in services]

    def edge_count(self) -> int:
        """Number of undirected links."""
        return len(self._links)

    def variable_count(self) -> int:
        """Number of (host, service) decision variables in the network."""
        return sum(len(services) for services in self._hosts.values())

    def assignment_space_size(self) -> int:
        """|Π p(s)| — the size of the full assignment search space."""
        size = 1
        for services in self._hosts.values():
            for products in services.values():
                size *= len(products)
        return size

    # ---------------------------------------------------------------- export

    def to_networkx(self) -> nx.Graph:
        """Export the host graph to networkx (host attrs carry services)."""
        graph = nx.Graph()
        for host, services in self._hosts.items():
            graph.add_node(host, services={s: list(p) for s, p in services.items()})
        graph.add_edges_from(self._links)
        return graph

    def copy(self) -> "Network":
        """Deep copy of the network."""
        clone = Network()
        for host, services in self._hosts.items():
            clone.add_host(host, services)
        clone.add_links(self._links)
        return clone

    def __repr__(self) -> str:
        return (
            f"Network({len(self._hosts)} hosts, {len(self._links)} links, "
            f"{self.variable_count()} variables)"
        )

    # -------------------------------------------------------------- internal

    def _require_host(self, host: str) -> None:
        if host not in self._hosts:
            raise NetworkError(f"unknown host {host!r}")

    def _require_service(self, host: str, service: str) -> None:
        self._require_host(host)
        if service not in self._hosts[host]:
            raise NetworkError(f"host {host!r} does not run service {service!r}")


def _edge_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def _unique(items: Sequence[str]) -> Tuple[str, ...]:
    seen: Dict[str, None] = {}
    for item in items:
        seen.setdefault(item)
    return tuple(seen)
