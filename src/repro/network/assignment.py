"""Product assignments (paper Definition 3).

A :class:`ProductAssignment` is the map α′ : H × S → P assigning one product
to each (host, service) pair; α(h, S_h) — the tuple of products at a host —
is :meth:`ProductAssignment.products_at`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.network.model import Network

__all__ = ["ProductAssignment", "AssignmentError"]


class AssignmentError(ValueError):
    """Raised for assignments inconsistent with their network."""


class ProductAssignment:
    """A (possibly partial) assignment of products to (host, service) pairs.

    The assignment remembers the network it belongs to and refuses products
    outside the declared candidate range — an α′ value must satisfy
    α′(h, s) ∈ p(s) by Definition 3.

    >>> net = Network(); net.add_host("h0", {"web": ["wb1", "wb2"]})
    >>> a = ProductAssignment(net)
    >>> a.assign("h0", "web", "wb2")
    >>> a.get("h0", "web")
    'wb2'
    """

    def __init__(
        self,
        network: Network,
        values: Optional[Mapping[Tuple[str, str], str]] = None,
    ) -> None:
        self._network = network
        self._values: Dict[Tuple[str, str], str] = {}
        for (host, service), product in (values or {}).items():
            self.assign(host, service, product)

    @property
    def network(self) -> Network:
        """The network this assignment is defined over."""
        return self._network

    @classmethod
    def from_decoded(
        cls, network: Network, values: Mapping[Tuple[str, str], str]
    ) -> "ProductAssignment":
        """Wrap solver-decoded values without re-validating each product.

        Decoders map label indices into the network's own candidate
        ranges, so every value is range-valid by construction; skipping
        the per-pair check matters on the streaming hot path, where an
        assignment is rebuilt after every churn event.
        """
        assignment = cls(network)
        assignment._values = dict(values)
        return assignment

    # ------------------------------------------------------------- mutation

    def assign(self, host: str, service: str, product: str) -> None:
        """Set α′(host, service) = product; validates the candidate range."""
        candidates = self._network.candidates(host, service)
        if product not in candidates:
            raise AssignmentError(
                f"product {product!r} is not a candidate for service {service!r} "
                f"at host {host!r}; allowed: {list(candidates)}"
            )
        self._values[(host, service)] = product

    def unassign(self, host: str, service: str) -> None:
        """Remove an assignment (no-op validation: pair must exist)."""
        self._values.pop((host, service), None)

    # -------------------------------------------------------------- queries

    def get(self, host: str, service: str) -> Optional[str]:
        """α′(host, service), or None when unassigned."""
        return self._values.get((host, service))

    def __getitem__(self, key: Tuple[str, str]) -> str:
        return self._values[key]

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._values)

    def items(self) -> Iterator[Tuple[Tuple[str, str], str]]:
        """Iterator of ((host, service), product) pairs, in assignment order."""
        return iter(self._values.items())

    def products_at(self, host: str) -> Dict[str, str]:
        """α(h, S_h): the service → product map at one host."""
        return {
            service: self._values[(host, service)]
            for service in self._network.services_of(host)
            if (host, service) in self._values
        }

    def is_complete(self) -> bool:
        """True when every (host, service) in the network is assigned."""
        return all(
            (host, service) in self._values
            for host in self._network.hosts
            for service in self._network.services_of(host)
        )

    def missing(self) -> List[Tuple[str, str]]:
        """All unassigned (host, service) pairs."""
        return [
            (host, service)
            for host in self._network.hosts
            for service in self._network.services_of(host)
            if (host, service) not in self._values
        ]

    def diff(self, other: "ProductAssignment") -> List[Tuple[str, str]]:
        """Pairs on which two assignments disagree (union of their keys)."""
        keys = set(self._values) | set(other._values)
        return sorted(
            key for key in keys if self._values.get(key) != other._values.get(key)
        )

    def copy(self) -> "ProductAssignment":
        """An independent copy (the network object is shared)."""
        return ProductAssignment(self._network, dict(self._values))

    def as_dict(self) -> Dict[Tuple[str, str], str]:
        """A plain dict snapshot of the assignment."""
        return dict(self._values)

    # ---------------------------------------------------------- presentation

    def format(self) -> str:
        """Readable per-host listing (the textual form of the paper's Fig. 4)."""
        lines = []
        for host in self._network.hosts:
            picks = self.products_at(host)
            rendered = ", ".join(f"{s}={p}" for s, p in picks.items()) or "(unassigned)"
            lines.append(f"{host}: {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ProductAssignment({len(self._values)}/{self._network.variable_count()} assigned)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProductAssignment):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:  # pragma: no cover - explicitness only
        raise TypeError("ProductAssignment is mutable and unhashable")
