"""Random network workloads for the scalability study (paper Section VIII).

The paper benchmarks the optimiser on "randomly generated networks"
parameterised by host count, average degree and services per host (its
Tables VII-IX).  :func:`random_network` reproduces that workload: a random
(near-)regular host graph with ``degree`` average degree, each host running
``services`` services, each choosable from ``products_per_service``
products.  :func:`random_similarity` draws the accompanying similarity
table.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

import networkx as nx

from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = ["RandomNetworkConfig", "random_network", "random_similarity"]


@dataclass(frozen=True)
class RandomNetworkConfig:
    """Parameters for one scalability workload.

    Attributes:
        hosts: number of hosts |H|.
        degree: target average degree (paper sweeps 5-50).
        services: services per host (paper sweeps 5-30).
        products_per_service: size of every candidate range (the paper does
            not publish this; its case study uses 3-4, we default to 4).
        similarity_density: fraction of product pairs with non-zero
            similarity in the generated table.
        seed: PRNG seed.
    """

    hosts: int
    degree: int
    services: int
    products_per_service: int = 4
    similarity_density: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hosts < 2:
            raise ValueError("need at least 2 hosts")
        if not 0 < self.degree < self.hosts:
            raise ValueError(f"degree must be in (0, hosts); got {self.degree}")
        if self.services < 1:
            raise ValueError("need at least one service per host")
        if self.products_per_service < 2:
            raise ValueError("diversification needs >= 2 products per service")
        if not 0.0 <= self.similarity_density <= 1.0:
            raise ValueError("similarity_density must be a probability")

    def service_names(self) -> List[str]:
        """The synthetic service names ``s0..s{services-1}``."""
        return [f"s{i}" for i in range(self.services)]

    def product_names(self, service: str) -> List[str]:
        """The synthetic candidate products of ``service``."""
        return [f"{service}_p{j}" for j in range(self.products_per_service)]

    def expected_edges(self) -> int:
        """Approximate link count of the drawn topology."""
        return self.hosts * self.degree // 2


def random_network(config: RandomNetworkConfig) -> Network:
    """Generate the random network for a scalability workload.

    The host graph is a random regular graph when ``hosts * degree`` is even
    (the paper's fixed-degree sweeps suggest near-regular graphs); otherwise
    a G(n, m) graph with the same edge count.  Products are namespaced per
    service so every service contributes an independent label space, as in
    the paper's model.
    """
    rng = random.Random(config.seed)
    graph = _host_graph(config, rng)
    services = {
        name: config.product_names(name) for name in config.service_names()
    }
    network = Network()
    for index in range(config.hosts):
        network.add_host(f"h{index}", services)
    for a, b in graph.edges():
        network.add_link(f"h{a}", f"h{b}")
    return network


def random_similarity(
    config: RandomNetworkConfig,
    low: float = 0.05,
    high: float = 0.8,
) -> SimilarityTable:
    """Draw a similarity table for the workload's product universe.

    A ``similarity_density`` fraction of same-service product pairs receives
    a similarity drawn uniformly from [low, high]; cross-service pairs stay
    at zero (products of different services never interact in the paper's
    pairwise cost).
    """
    if not 0.0 <= low <= high <= 1.0:
        raise ValueError(f"need 0 <= low <= high <= 1, got [{low}, {high}]")
    rng = random.Random(config.seed + 1)
    table = SimilarityTable()
    for service in config.service_names():
        products = config.product_names(service)
        for product in products:
            table.add_product(product)
        for i, a in enumerate(products):
            for b in products[i + 1 :]:
                if rng.random() < config.similarity_density:
                    table.set(a, b, round(rng.uniform(low, high), 3))
    return table


def _host_graph(config: RandomNetworkConfig, rng: random.Random) -> nx.Graph:
    """A connected-ish random host graph with the target average degree."""
    n, d = config.hosts, config.degree
    if (n * d) % 2 == 0 and d < n:
        graph = nx.random_regular_graph(d, n, seed=rng.randrange(2**31))
    else:
        edges = n * d // 2
        graph = nx.gnm_random_graph(n, edges, seed=rng.randrange(2**31))
    # Attach any isolated hosts so every host participates in diversification.
    isolated = [node for node in graph.nodes if graph.degree(node) == 0]
    others = [node for node in graph.nodes if graph.degree(node) > 0]
    for node in isolated:
        if others:
            graph.add_edge(node, rng.choice(others))
            others.append(node)
    return graph
