"""Network and constraint serialisation.

A deployment description — hosts, per-host service catalogues, links, and
configuration constraints — is the input a real operator would maintain
under version control.  This module defines a JSON document format for it
and the load/save functions, so networks can be built outside Python and
audited/diffed as text:

.. code-block:: json

    {
      "hosts": {
        "web": {"os": ["windows", "ubuntu"], "db": ["mysql", "mssql"]},
        "hmi": {"os": ["windows"]}
      },
      "links": [["web", "hmi"]],
      "constraints": [
        {"kind": "fix", "host": "web", "service": "os", "product": "ubuntu"},
        {"kind": "avoid_combination", "host": "ALL", "service_m": "os",
         "product_j": "ubuntu", "service_n": "db", "product_k": "mssql"}
      ]
    }

Round-trips preserve host, service and candidate order (the label order of
the MRF), so optimisation results are reproducible across save/load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.network.constraints import (
    AvoidCombination,
    Constraint,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.model import Network

__all__ = [
    "network_to_json",
    "network_from_json",
    "save_network",
    "load_network",
]


def network_to_json(
    network: Network, constraints: Optional[ConstraintSet] = None
) -> str:
    """Serialise a network (and optional constraints) to a JSON string."""
    payload = {
        "hosts": {
            host: {
                service: list(network.candidates(host, service))
                for service in network.services_of(host)
            }
            for host in network.hosts
        },
        "links": [list(link) for link in network.links],
        "constraints": [
            _constraint_to_dict(constraint) for constraint in (constraints or ())
        ],
    }
    return json.dumps(payload, indent=2)


def network_from_json(text: str) -> Tuple[Network, ConstraintSet]:
    """Parse a JSON document into (network, constraints).

    Raises ``ValueError`` on structural problems (unknown constraint kinds,
    missing fields) and the network model's own errors on semantic ones
    (dangling links, empty candidate lists, ...).
    """
    payload = json.loads(text)
    if not isinstance(payload, dict) or "hosts" not in payload:
        raise ValueError("network JSON must be an object with a 'hosts' key")
    network = Network()
    for host, services in payload["hosts"].items():
        network.add_host(host, services)
    for link in payload.get("links", ()):
        if len(link) != 2:
            raise ValueError(f"malformed link entry: {link!r}")
        network.add_link(link[0], link[1])
    constraints = ConstraintSet(
        _constraint_from_dict(entry) for entry in payload.get("constraints", ())
    )
    return network, constraints


def save_network(
    network: Network,
    path: Union[str, Path],
    constraints: Optional[ConstraintSet] = None,
) -> None:
    """Write a network description to a JSON file."""
    Path(path).write_text(network_to_json(network, constraints))


def load_network(path: Union[str, Path]) -> Tuple[Network, ConstraintSet]:
    """Read a network description from a JSON file."""
    return network_from_json(Path(path).read_text())


# ------------------------------------------------------------------ internal

_KIND_FIX = "fix"
_KIND_FORBID = "forbid"
_KIND_REQUIRE = "require_combination"
_KIND_AVOID = "avoid_combination"


def _constraint_to_dict(constraint: Constraint) -> Dict[str, str]:
    if isinstance(constraint, FixProduct):
        return {
            "kind": _KIND_FIX,
            "host": constraint.host,
            "service": constraint.service,
            "product": constraint.product,
        }
    if isinstance(constraint, ForbidProduct):
        return {
            "kind": _KIND_FORBID,
            "host": constraint.host,
            "service": constraint.service,
            "product": constraint.product,
        }
    if isinstance(constraint, RequireCombination):
        return {
            "kind": _KIND_REQUIRE,
            "host": constraint.host,
            "service_m": constraint.service_m,
            "product_j": constraint.product_j,
            "service_n": constraint.service_n,
            "product_l": constraint.product_l,
        }
    if isinstance(constraint, AvoidCombination):
        return {
            "kind": _KIND_AVOID,
            "host": constraint.host,
            "service_m": constraint.service_m,
            "product_j": constraint.product_j,
            "service_n": constraint.service_n,
            "product_k": constraint.product_k,
        }
    raise ValueError(f"unknown constraint type: {constraint!r}")


def _constraint_from_dict(entry: Dict[str, str]) -> Constraint:
    try:
        kind = entry["kind"]
        if kind == _KIND_FIX:
            return FixProduct(entry["host"], entry["service"], entry["product"])
        if kind == _KIND_FORBID:
            return ForbidProduct(entry["host"], entry["service"], entry["product"])
        if kind == _KIND_REQUIRE:
            return RequireCombination(
                entry["host"], entry["service_m"], entry["product_j"],
                entry["service_n"], entry["product_l"],
            )
        if kind == _KIND_AVOID:
            return AvoidCombination(
                entry["host"], entry["service_m"], entry["product_j"],
                entry["service_n"], entry["product_k"],
            )
    except KeyError as missing:
        raise ValueError(f"constraint entry misses field {missing}") from None
    raise ValueError(f"unknown constraint kind {kind!r}")
