"""CSR-style array form of a :class:`~repro.mrf.graph.PairwiseMRF`.

The paper's optimizer is multi-threaded C++ with GPU-accelerated matrix
operations (Section VIII); this module is the NumPy analogue for the
*general* MRF (heterogeneous label spaces, constraints, preferences — the
cases the replicated-service :mod:`repro.mrf.batched` fast path cannot
take).  A :class:`MRFArrays` plan precomputes everything the message-passing
solvers need as flat arrays so that per-iteration work is NumPy block
operations instead of per-edge Python loops:

* **Label padding.**  Nodes have individual label counts; everything is
  padded to the maximum count ``lmax``.  The padding convention keeps the
  arithmetic exact and NaN-free: padded *belief* entries are ``+inf`` (never
  selected by a min/argmin), padded *message* entries are ``0`` (additive
  identity), padded *cost* entries are ``+inf``.
* **Shared cost stack.**  Edge cost matrices are shared by reference across
  edges of the same service; the stack keeps one padded copy per distinct
  matrix plus one per transposed orientation, and edges index into it, so
  memory stays O(nodes·L + edges + matrices·L²) exactly as before.
* **Wavefront levels.**  Sequential solvers (TRW-S sweeps, conditioned
  decoding, ICM) process node ``i`` after all lower-numbered neighbours.
  That dependency is a DAG whose topological *levels* — computed once —
  batch every node of a level into one block update, which is
  mathematically identical to the node-by-node order because nodes in one
  level are never adjacent (belief sums accumulate in level-major order,
  so numerically the agreement is to floating-point round-off).  Typical
  instances need only a few dozen levels for thousands of nodes, so the
  Python-loop count drops by orders of magnitude.

Directed message slot layout matches the reference solvers: slot ``2e``
carries first→second of edge ``e`` (indexed by the second endpoint's
labels), slot ``2e+1`` the reverse.

Besides wrapping a finished :class:`~repro.mrf.graph.PairwiseMRF`, a plan
can be built straight from arrays (:meth:`MRFArrays.from_parts`) and
**delta-updated** afterwards — :meth:`MRFArrays.set_cost_matrix` rewrites
one cost-stack entry in place (similarity feeds change values, not
structure), :meth:`MRFArrays.set_unary` rewrites one node's hard-mask
unary (constraint pins/forbids), and :meth:`MRFArrays.replace_edges`
re-derives the directed slots, γ weights and wavefront levels from a
patched edge set while leaving every node array untouched.  This is what
lets :mod:`repro.stream` apply network churn and constraint events to a
live plan instead of rebuilding it from the Python-level MRF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mrf.graph import PairwiseMRF

__all__ = [
    "MRFArrays",
    "SolverScratch",
    "SolverScratchPool",
    "wavefront_schedule",
]


class SolverScratch:
    """Reusable named work buffers for the solver kernels.

    The message-passing kernels allocate the same large temporaries every
    iteration — the (edges, L, L) cost gather of a send block, padded
    belief copies, message deltas.  A :class:`SolverScratch` keeps one
    flat, monotonically-grown buffer per (name, dtype) and hands out
    reshaped views, so a steady-state consumer (streaming warm re-solves,
    grid sweeps, per-shard workers) stops churning the NumPy allocator:
    after the first solve of a given plan shape, iterations allocate
    nothing.

    Buffers are handed out by *name*; two live views of the same name
    alias, so every kernel uses distinct names for distinct roles.  A
    scratch is **not** thread-safe — concurrent solvers each need their
    own (:class:`~repro.mrf.sharded.ShardedSolver` keeps one per worker
    thread).  Passing ``scratch=None`` to a solver creates a private one
    per call, which still reuses buffers *across iterations* of that
    solve.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def array(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """An uninitialised ``shape`` view of the named buffer."""
        need = 1
        for extent in shape:
            need *= int(extent)
        buffer = self._buffers.get(name)
        if buffer is None or buffer.size < need or buffer.dtype != dtype:
            buffer = np.empty(max(need, 1), dtype=dtype)
            self._buffers[name] = buffer
        return buffer[:need].reshape(shape)

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`array`, but zero-filled."""
        view = self.array(name, shape, dtype)
        view.fill(0)
        return view


class SolverScratchPool:
    """A check-out pool of :class:`SolverScratch` instances.

    Concurrent shard solves each need a private scratch, but tying
    scratches to *threads* (``threading.local``) loses all reuse when the
    consumer builds a fresh thread pool per solve — the streaming engine
    does exactly that, once per event.  Leasing from a pool instead keeps
    the buffers alive across pools: the pool grows to the peak concurrent
    lease count and no further, and a lease is exclusive for its duration,
    so the single-thread contract of :class:`SolverScratch` holds.
    """

    __slots__ = ("_idle",)

    def __init__(self) -> None:
        import queue

        self._idle: "queue.SimpleQueue[SolverScratch]" = queue.SimpleQueue()

    def acquire(self) -> SolverScratch:
        """A scratch no other live lease holds (created on demand)."""
        import queue

        try:
            return self._idle.get_nowait()
        except queue.Empty:
            return SolverScratch()

    def release(self, scratch: SolverScratch) -> None:
        """Return a scratch to the idle pool."""
        self._idle.put(scratch)


def wavefront_schedule(n: int, lo: np.ndarray, hi: np.ndarray):
    """(γ, forward levels, backward levels) of the index-order schedule.

    ``lo``/``hi`` are the per-edge endpoint arrays with ``lo < hi``.  The
    γ weights are TRW-S's monotonic-chain weights
    ``1 / max(#forward, #backward neighbours)``.  Levels are longest-path
    DAG depths: the forward level of a node is one past the deepest
    lower-numbered neighbour, the backward levels mirror it over
    higher-numbered ones (see ``_levels`` for the two size-dispatched
    exact implementations).  Nodes sharing a level are never adjacent,
    which is what lets level-major block updates reproduce the
    node-by-node schedule — both the general plan here and the
    replicated-service host-graph plan in :mod:`repro.mrf.batched`
    consume this one derivation.
    """
    m = len(lo)
    chains = np.maximum(
        np.bincount(lo, minlength=n) if m else np.zeros(n, dtype=np.int64),
        np.bincount(hi, minlength=n) if m else np.zeros(n, dtype=np.int64),
    )
    gamma = np.ones(n)
    gamma[chains > 0] = 1.0 / chains[chains > 0]

    def _levels(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Longest-path levels of the src→dst DAG.

        level[d] = 1 + max over edges (s→d) of level[s].  Two exact
        implementations with identical output, picked by size: small
        plans (shard sub-plans, case studies) run the 3-ops-per-round
        Jacobi fixpoint — minimal constant cost, O(edges · depth) total —
        while big plans run a Kahn wave propagation that relaxes each
        edge exactly once (a node's out-edges fire in the wave where its
        last incoming dependency resolved), O(edges + depth · overhead):
        on a 150k-edge estate the waves win 3×, on a 200-node chain shard
        the rounds win 3× — crossover is around a few thousand edges.
        """
        level = np.zeros(n, dtype=np.int64)
        if not m:
            return level
        if m <= 4096:
            while True:
                deeper = level.copy()
                np.maximum.at(deeper, dst, level[src] + 1)
                if np.array_equal(deeper, level):
                    return level
                level = deeper
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        dst_sorted = dst[order]
        starts = np.searchsorted(src_sorted, np.arange(n + 1))
        indegree = np.bincount(dst, minlength=n)
        frontier = np.flatnonzero(indegree == 0)
        while len(frontier):
            counts = starts[frontier + 1] - starts[frontier]
            total = int(counts.sum())
            if not total:
                break
            base = np.repeat(starts[frontier], counts)
            offset = np.arange(total) - np.repeat(
                np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            )
            rows = base + offset
            senders = src_sorted[rows]
            receivers = dst_sorted[rows]
            np.maximum.at(level, receivers, level[senders] + 1)
            fired = np.bincount(receivers, minlength=n)
            indegree -= fired
            frontier = np.flatnonzero((indegree == 0) & (fired > 0))
        return level

    return gamma, _levels(lo, hi), _levels(hi, lo)


@dataclass
class _SendBlock:
    """Flattened directed edges whose senders share one wavefront level."""

    snd: np.ndarray  # sender node per edge
    rcv: np.ndarray  # receiver node per edge
    out: np.ndarray  # message slot written (sender → receiver)
    inn: np.ndarray  # opposite slot on the same edge (receiver → sender)
    cid: np.ndarray  # cost-stack index, oriented rows = sender labels
    gam: np.ndarray  # (edges, 1) sender γ weights, pregathered
    pad: np.ndarray  # (edges, lmax) True at the receiver's padded labels


@dataclass
class _Wavefront(_SendBlock):
    """One forward level: its nodes, their conditioning edges to earlier
    levels (for label extraction / decoding / ICM) and their forward sends.
    """

    nodes: np.ndarray     # nodes in this level, ascending
    ext_seg: np.ndarray   # per backward edge: position of its node in `nodes`
    ext_nbr: np.ndarray   # per backward edge: the earlier neighbour
    ext_in: np.ndarray    # per backward edge: slot of the neighbour's message in
    ext_cid: np.ndarray   # per backward edge: cost id, rows = this node's labels
    all_seg: np.ndarray   # full-adjacency versions of the above (ICM uses
    all_nbr: np.ndarray   # every neighbour, not just earlier ones)
    all_cid: np.ndarray


class MRFArrays:
    """Precomputed array plan for vectorized message passing on one MRF.

    Building the plan is a single O(nodes + edges) pass; solvers reuse it
    across all iterations.  See the module docstring for the padding and
    level-schedule conventions.
    """

    def __init__(self, mrf: PairwiseMRF) -> None:
        n = mrf.node_count
        m = mrf.edge_count
        unaries = [mrf.unary(i) for i in range(n)]

        # ---- dedup shared matrices (one stack entry per distinct object)
        stack_of: Dict[int, int] = {}
        matrices: List[np.ndarray] = []
        edge_first = np.empty(m, dtype=np.int64)
        edge_second = np.empty(m, dtype=np.int64)
        edge_cid = np.empty(m, dtype=np.int64)
        for e in range(m):
            i, j = mrf.edge(e)
            matrix = mrf.edge_cost(e)
            k = stack_of.get(id(matrix))
            if k is None:
                k = len(matrices)
                stack_of[id(matrix)] = k
                matrices.append(matrix)
            edge_first[e] = i
            edge_second[e] = j
            edge_cid[e] = k
        self._setup_nodes(unaries)
        self._setup_costs(matrices)
        self._build_structure(edge_first, edge_second, edge_cid)

    @classmethod
    def from_parts(
        cls,
        unaries: Sequence[np.ndarray],
        edge_first: np.ndarray,
        edge_second: np.ndarray,
        edge_cid: np.ndarray,
        matrices: Sequence[np.ndarray],
        lmax: Optional[int] = None,
    ) -> "MRFArrays":
        """Build a plan straight from arrays, bypassing the MRF object.

        ``edge_cid[e]`` indexes ``matrices``; matrix rows correspond to the
        labels of ``edge_first[e]``.  ``lmax`` can force a label padding
        wider than the largest unary (so message arrays keep their width
        across delta updates that shrink the label space).
        """
        plan = cls.__new__(cls)
        plan._setup_nodes(unaries, lmax=lmax)
        plan._setup_costs(matrices)
        plan._build_structure(
            np.asarray(edge_first, dtype=np.int64),
            np.asarray(edge_second, dtype=np.int64),
            np.asarray(edge_cid, dtype=np.int64),
        )
        return plan

    @classmethod
    def from_dense(
        cls,
        unary: np.ndarray,
        label_counts: np.ndarray,
        edge_first: np.ndarray,
        edge_second: np.ndarray,
        edge_cid: np.ndarray,
        matrices: Sequence[np.ndarray],
        lmax: Optional[int] = None,
    ) -> "MRFArrays":
        """Build a plan from an already-padded ``(n, lmax)`` unary stack.

        The zero-copy entry point of the network→plan compiler
        (:mod:`repro.core.compile`): ``unary`` must be zero at padded
        label slots (``from_parts``'s fill convention).  Everything else
        matches :meth:`from_parts`.
        """
        plan = cls.__new__(cls)
        plan._install_nodes(
            np.asarray(unary, dtype=float),
            np.asarray(label_counts, dtype=np.int64),
            lmax=lmax,
        )
        plan._setup_costs(matrices)
        plan._build_structure(
            np.asarray(edge_first, dtype=np.int64),
            np.asarray(edge_second, dtype=np.int64),
            np.asarray(edge_cid, dtype=np.int64),
        )
        return plan

    # ------------------------------------------------------- construction

    def _setup_nodes(
        self, unaries: Sequence[np.ndarray], lmax: Optional[int] = None
    ) -> None:
        n = len(unaries)
        counts = np.asarray([len(u) for u in unaries], dtype=np.int64)
        widest = int(counts.max()) if n else 0
        if lmax is None:
            lmax = widest
        elif lmax < widest:
            raise ValueError(f"lmax={lmax} below widest label space {widest}")
        unary = np.zeros((n, lmax))
        for i in range(n):
            unary[i, : counts[i]] = unaries[i]
        self._install_nodes(unary, counts, lmax=lmax)

    def _install_nodes(
        self, unary: np.ndarray, counts: np.ndarray, lmax: Optional[int] = None
    ) -> None:
        """Adopt a padded unary stack (zeros outside the label masks)."""
        n = len(counts)
        self.node_count = n
        widest = int(counts.max()) if n else 0
        if lmax is None:
            lmax = widest
        elif lmax < widest:
            raise ValueError(f"lmax={lmax} below widest label space {widest}")
        if unary.shape != (n, lmax):
            padded = np.zeros((n, lmax))
            padded[:, : unary.shape[1]] = unary
            unary = padded
        self.label_counts = counts
        self.lmax = lmax
        self.mask = np.arange(lmax)[None, :] < counts[:, None]
        #: inverse mask, kept so kernels can pad without re-negating.
        self._pad = ~self.mask
        self._iota = np.arange(n, dtype=np.int64)
        self.unary = unary
        #: unaries with +inf padding — safe to argmin directly.
        self.unary_inf = np.where(self.mask, unary, np.inf)

    def _setup_costs(self, matrices: Sequence[np.ndarray]) -> None:
        """(Re)build the padded cost stack: one entry per distinct matrix
        plus one per transposed orientation."""
        stacked = len(matrices)
        lmax = self.lmax
        cost = np.full((2 * stacked, lmax, lmax), np.inf) if stacked else (
            np.zeros((0, lmax, lmax))
        )
        for k, matrix in enumerate(matrices):
            rows, cols = matrix.shape
            cost[k, :rows, :cols] = matrix
            cost[stacked + k, :cols, :rows] = matrix.T
        self.cost = cost
        self.stacked = stacked

    def set_cost_matrix(self, cid: int, matrix: np.ndarray) -> None:
        """Patch one cost-stack entry (and its transpose) in place.

        Value-only deltas — a similarity feed rescoring a product pair —
        land here: no slot, level or message state changes, so a
        warm-started solver continues from its previous fixed point.
        """
        if not 0 <= cid < self.stacked:
            raise ValueError(f"cost id {cid} out of range [0, {self.stacked})")
        rows, cols = matrix.shape
        self.cost[cid, :rows, :cols] = matrix
        self.cost[self.stacked + cid, :cols, :rows] = matrix.T

    def set_unary(self, node: int, vector: np.ndarray) -> None:
        """Patch one node's unary vector (and its +inf view) in place.

        The unary counterpart of :meth:`set_cost_matrix`: constraint
        deltas — a service pinned or a product forbidden mid-stream —
        rewrite a node's hard-mask unary without touching slots, levels or
        message state, so a warm-started solver continues from its
        previous fixed point.  ``vector`` must have exactly the node's
        label count; padded entries keep their 0 / +inf conventions.
        """
        count = int(self.label_counts[node])
        if len(vector) != count:
            raise ValueError(
                f"node {node} has {count} labels, got a vector of {len(vector)}"
            )
        self.unary[node, :count] = vector
        self.unary_inf[node, :count] = vector

    def replace_edges(
        self,
        edge_first: np.ndarray,
        edge_second: np.ndarray,
        edge_cid: np.ndarray,
        matrices: Sequence[np.ndarray],
    ) -> None:
        """Swap in a patched edge set, keeping every node array.

        Re-derives the cost stack, directed slots, γ weights and wavefront
        levels from the new arrays — all NumPy lexsorts, orders of magnitude
        cheaper than rebuilding the Python-level MRF.  The caller owns the
        message-slot remapping (slot ``2e``/``2e+1`` follows edge ``e``'s
        position in the new arrays).
        """
        self._setup_costs(matrices)
        self._build_structure(
            np.asarray(edge_first, dtype=np.int64),
            np.asarray(edge_second, dtype=np.int64),
            np.asarray(edge_cid, dtype=np.int64),
        )

    def _build_structure(
        self,
        edge_first: np.ndarray,
        edge_second: np.ndarray,
        edge_cid: np.ndarray,
    ) -> None:
        n = self.node_count
        m = len(edge_first)
        stacked = self.stacked
        self.edge_count = m
        self.edge_first = edge_first
        self.edge_second = edge_second
        self.edge_cid = edge_cid  # oriented rows = first endpoint

        # ---- directed slots (for synchronous BP): slot 2e, 2e+1
        slots = 2 * m
        self.slot_sender = np.empty(slots, dtype=np.int64)
        self.slot_receiver = np.empty(slots, dtype=np.int64)
        self.slot_reverse = np.empty(slots, dtype=np.int64)
        self.slot_cid = np.empty(slots, dtype=np.int64)
        self.slot_sender[0::2] = edge_first
        self.slot_sender[1::2] = edge_second
        self.slot_receiver[0::2] = edge_second
        self.slot_receiver[1::2] = edge_first
        self.slot_reverse[0::2] = np.arange(1, slots, 2)
        self.slot_reverse[1::2] = np.arange(0, slots, 2)
        self.slot_cid[0::2] = edge_cid
        self.slot_cid[1::2] = stacked + edge_cid
        #: (2·edges, lmax) True at each receiving slot's padded labels —
        #: pregathered so the synchronous BP update pads without a fancy
        #: index per round.
        self.slot_pad = self._pad[self.slot_receiver]

        # ---- orientation by node order: every edge is a "forward" edge of
        # its lower endpoint and a "backward" edge of its higher one.
        lo = np.minimum(edge_first, edge_second)
        hi = np.maximum(edge_first, edge_second)
        first_is_lo = edge_first < edge_second
        e_ids = np.arange(m, dtype=np.int64)
        slot_lo2hi = np.where(first_is_lo, 2 * e_ids, 2 * e_ids + 1)
        slot_hi2lo = np.where(first_is_lo, 2 * e_ids + 1, 2 * e_ids)
        cid_rows_lo = np.where(first_is_lo, edge_cid, stacked + edge_cid)
        cid_rows_hi = np.where(first_is_lo, stacked + edge_cid, edge_cid)

        gamma, flevel, blevel = wavefront_schedule(n, lo, hi)
        self.gamma = gamma

        # ---- flattened, level-major orderings.  Secondary sort keys keep
        # each node's edges in edge-insertion order, matching the adjacency
        # order of the per-node reference solvers.
        def _bounds(levels_sorted: np.ndarray, count: int) -> np.ndarray:
            return np.searchsorted(levels_sorted, np.arange(count + 1))

        n_flevels = int(flevel.max()) + 1 if n else 0
        node_order = np.lexsort((np.arange(n, dtype=np.int64), flevel))
        node_bounds = _bounds(flevel[node_order], n_flevels)
        send_order = np.lexsort((e_ids, lo, flevel[lo]))
        send_bounds = _bounds(flevel[lo][send_order], n_flevels)
        ext_order = np.lexsort((e_ids, hi, flevel[hi]))
        ext_bounds = _bounds(flevel[hi][ext_order], n_flevels)
        a_node = np.concatenate([lo, hi])
        a_nbr = np.concatenate([hi, lo])
        a_cid = np.concatenate([cid_rows_lo, cid_rows_hi])
        a_eid = np.concatenate([e_ids, e_ids])
        all_order = np.lexsort((a_eid, a_node, flevel[a_node]))
        all_bounds = _bounds(flevel[a_node][all_order], n_flevels)

        self.fwd_levels: List[_Wavefront] = []
        for level in range(n_flevels):
            nodes = node_order[node_bounds[level] : node_bounds[level + 1]]
            ext = ext_order[ext_bounds[level] : ext_bounds[level + 1]]
            send = send_order[send_bounds[level] : send_bounds[level + 1]]
            full = all_order[all_bounds[level] : all_bounds[level + 1]]
            self.fwd_levels.append(
                _Wavefront(
                    nodes=nodes,
                    # `nodes` ascends within a level, so positions of the
                    # conditioning edges' endpoints are binary searches.
                    ext_seg=np.searchsorted(nodes, hi[ext]),
                    ext_nbr=lo[ext],
                    ext_in=slot_lo2hi[ext],
                    ext_cid=cid_rows_hi[ext],
                    snd=lo[send],
                    rcv=hi[send],
                    out=slot_lo2hi[send],
                    inn=slot_hi2lo[send],
                    cid=cid_rows_lo[send],
                    gam=gamma[lo[send]][:, None],
                    pad=self._pad[hi[send]],
                    all_seg=np.searchsorted(nodes, a_node[full]),
                    all_nbr=a_nbr[full],
                    all_cid=a_cid[full],
                )
            )

        self.bwd_levels: List[_SendBlock] = []
        n_blevels = int(blevel.max()) + 1 if m else 0
        bsend_order = np.lexsort((e_ids, hi, blevel[hi]))
        bsend_bounds = _bounds(blevel[hi][bsend_order], n_blevels)
        for level in range(n_blevels):
            send = bsend_order[bsend_bounds[level] : bsend_bounds[level + 1]]
            if not len(send):
                continue
            self.bwd_levels.append(
                _SendBlock(
                    snd=hi[send],
                    rcv=lo[send],
                    out=slot_hi2lo[send],
                    inn=slot_lo2hi[send],
                    cid=cid_rows_hi[send],
                    gam=gamma[hi[send]][:, None],
                    pad=self._pad[lo[send]],
                )
            )

    # ------------------------------------------------------------- accessors

    def unary_vectors(self) -> List[np.ndarray]:
        """The unpadded per-node unary vectors (copies into from_parts form).

        ``unary_vectors()[i]`` has ``label_counts[i]`` entries — the exact
        inputs a rebuilt (or shard) plan needs.
        """
        return [
            self.unary[i, : self.label_counts[i]]
            for i in range(self.node_count)
        ]

    def matrix_stack(self) -> List[np.ndarray]:
        """The padded forward-orientation cost matrices, one per raw cid.

        Entries are ``(lmax, lmax)`` with ``+inf`` padding; feeding them
        back through :meth:`from_parts` with the same ``lmax`` reproduces
        the stack exactly, which is what the shard partitioner relies on.
        """
        return [self.cost[k] for k in range(self.stacked)]

    # ------------------------------------------------------------ evaluation

    def zero_messages(self) -> np.ndarray:
        """A (2·edges, lmax) zero message array (zeros are also the correct
        value for padded label slots)."""
        return np.zeros((2 * self.edge_count, self.lmax))

    def padded_beliefs(self) -> np.ndarray:
        """Unaries with +inf at padded slots — the belief starting point."""
        return np.where(self.mask, self.unary, np.inf)

    def energy(self, labels: np.ndarray) -> float:
        """E(x) for an (n,) label array; equals ``mrf.energy`` up to
        floating-point summation order."""
        total = self.unary[self._iota, labels].sum()
        if self.edge_count:
            total += self.cost[
                self.edge_cid, labels[self.edge_first], labels[self.edge_second]
            ].sum()
        return float(total)

    def dual_bound(
        self,
        messages: np.ndarray,
        beliefs: np.ndarray,
        chunk: int = 8192,
        scratch: Optional[SolverScratch] = None,
        backend=None,
    ) -> float:
        """Reparametrisation lower bound ``Σ_i min θ'_i + Σ_ij min θ'_ij``
        (chunked over edges to cap peak memory; the chunk buffer comes from
        ``scratch`` so repeated bounds allocate nothing).  The per-edge
        minima come from the kernel ``backend`` (see
        :mod:`repro.mrf.backends`); the chunked summation stays here so
        every backend inherits NumPy's pairwise summation bit-for-bit."""
        from repro.mrf.backends import resolve_backend

        kernels = resolve_backend(backend)
        scratch = scratch if scratch is not None else SolverScratch()
        bound = float(beliefs.min(axis=1).sum())
        for start in range(0, self.edge_count, chunk):
            stop = min(start + chunk, self.edge_count)
            bound += float(
                kernels.bound_chunk_mins(
                    self, messages, start, stop, scratch
                ).sum()
            )
        return bound

    # ------------------------------------------------------------- decoding

    def condition_level(
        self,
        level: _Wavefront,
        beliefs: np.ndarray,
        messages: np.ndarray,
        labels: np.ndarray,
        scratch: Optional[SolverScratch] = None,
        backend=None,
    ) -> None:
        """Label one level by sequential conditioning on earlier levels.

        Each node of ``level`` takes the argmin of its belief with every
        earlier neighbour's message replaced by the actual pairwise column
        for that neighbour's already-assigned label; results are written
        into ``labels`` in place.  This is the shared conditioning rule of
        the TRW-S forward-sweep extraction and the BP decode.
        """
        from repro.mrf.backends import resolve_backend

        kernels = resolve_backend(backend)
        scratch = scratch if scratch is not None else SolverScratch()
        kernels.condition_level(
            self, level, beliefs, messages, labels, scratch
        )

    def decode(
        self,
        beliefs: np.ndarray,
        messages: np.ndarray,
        scratch: Optional[SolverScratch] = None,
        backend=None,
    ) -> np.ndarray:
        """Sequential-conditioning decode, one wavefront level at a time.

        Node ``i`` takes the argmin of its belief with every earlier
        neighbour's message replaced by the actual pairwise column — the
        same rule (and the same result) as the per-node reference decode.
        """
        from repro.mrf.backends import resolve_backend

        kernels = resolve_backend(backend)
        scratch = scratch if scratch is not None else SolverScratch()
        labels = np.zeros(self.node_count, dtype=np.int64)
        for level in self.fwd_levels:
            kernels.condition_level(
                self, level, beliefs, messages, labels, scratch
            )
        return labels

    # ------------------------------------------------------------------ ICM

    def icm(
        self,
        labels: np.ndarray,
        max_sweeps: int = 100,
        scratch: Optional[SolverScratch] = None,
        backend=None,
    ) -> np.ndarray:
        """Iterated conditional modes on the plan (Gauss-Seidel order).

        Processes levels ascending so each node sees its lower-numbered
        neighbours' *new* labels and higher-numbered ones' old labels —
        exactly the node-by-node sweep of
        :class:`~repro.mrf.icm.ICMSolver`, stopped when a full sweep
        changes nothing.
        """
        from repro.mrf.backends import resolve_backend

        kernels = resolve_backend(backend)
        scratch = scratch if scratch is not None else SolverScratch()
        current = labels.copy()
        for _ in range(max_sweeps):
            changed = False
            for level in self.fwd_levels:
                best = kernels.icm_level(self, level, current, scratch)
                if not np.array_equal(best, current[level.nodes]):
                    changed = True
                current[level.nodes] = best
            if not changed:
                break
        return current

    # --------------------------------------------------------------- greedy

    def greedy_labels(self) -> np.ndarray:
        """Degree-descending sequential greedy labelling on the plan.

        The plan-level analogue of the MRF greedy used by the TRW-S refine
        stage: nodes are labelled from most- to least-connected, each taking
        the argmin of its unary plus the oriented pairwise costs to
        already-labelled neighbours.  Lets plan-only callers (the streaming
        engine) seed ICM without materialising a :class:`PairwiseMRF`.
        """
        n = self.node_count
        incident: List[List[tuple]] = [[] for _ in range(n)]
        for e in range(self.edge_count):
            i = int(self.edge_first[e])
            j = int(self.edge_second[e])
            cid = int(self.edge_cid[e])
            incident[i].append((j, cid))
            incident[j].append((i, self.stacked + cid))
        order = sorted(range(n), key=lambda i: (-len(incident[i]), i))
        labels = np.zeros(n, dtype=np.int64)
        assigned = np.zeros(n, dtype=bool)
        for node in order:
            vector = self.unary_inf[node].copy()
            for neighbor, cid in incident[node]:
                if assigned[neighbor]:
                    vector += self.cost[cid, :, labels[neighbor]]
            labels[node] = int(np.argmin(vector))
            assigned[node] = True
        return labels
