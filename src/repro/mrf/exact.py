"""Brute-force exact MAP solver.

Enumerates the full label space — only usable on tiny instances, where it
provides ground truth for testing the approximate solvers (TRW-S must reach
the same energy on trees; its lower bound must never exceed this optimum).
A hard cap on the search-space size guards against accidental blow-ups.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.mrf.graph import PairwiseMRF, MRFError
from repro.mrf.solvers import SolverResult

__all__ = ["ExactSolver"]


class ExactSolver:
    """Exhaustive search over all labellings.

    Args:
        max_space: refuse instances whose label-space size exceeds this.
        seed: unused (uniform constructor signature).
    """

    name = "exact"

    def __init__(self, max_space: int = 2_000_000, seed: Optional[int] = None) -> None:
        self.max_space = max_space

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        """Exhaustive exact MAP (guarded by ``max_space``)."""
        if mrf.node_count == 0:
            return SolverResult(
                labels=[], energy=0.0, lower_bound=0.0, iterations=0,
                converged=True, solver=self.name,
            )
        space = 1
        for node in range(mrf.node_count):
            space *= mrf.label_count(node)
            if space > self.max_space:
                raise MRFError(
                    f"label space exceeds ExactSolver cap ({self.max_space}); "
                    f"use an approximate solver"
                )

        ranges = [range(mrf.label_count(i)) for i in range(mrf.node_count)]
        best_labels: Optional[List[int]] = None
        best_energy = float("inf")
        for labelling in itertools.product(*ranges):
            energy = mrf.energy(labelling)
            if energy < best_energy:
                best_energy = energy
                best_labels = list(labelling)

        assert best_labels is not None
        return SolverResult(
            labels=best_labels,
            energy=best_energy,
            lower_bound=best_energy,
            iterations=1,
            converged=True,
            solver=self.name,
        )
