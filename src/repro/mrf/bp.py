"""Loopy min-sum belief propagation, vectorized.

The paper discusses BP as the standard alternative to graph cuts for its
energy form, and adopts TRW-S because BP "might not converge" on many
instances (Section V-C).  We implement damped synchronous min-sum BP both as
a comparison baseline and so the reproduction can demonstrate that claim
empirically (see ``benchmarks/bench_ablation_solvers.py``).

Synchronous BP vectorizes perfectly: every directed message depends only on
the previous round, so one round is a single block operation over all
``2·edges`` slots of the :class:`~repro.mrf.vectorized.MRFArrays` plan.
Only the sequential-conditioning decode is order-dependent, and it runs on
the plan's wavefront levels.  The per-edge loop implementation this
replaces is kept as :class:`~repro.mrf.reference.ReferenceBPSolver`
(``"bp-ref"``); both compute identical message updates.
"""

from __future__ import annotations

import time
from typing import List, Optional, Union

import numpy as np

from repro import obs
from repro.mrf.backends import KernelBackend, resolve_backend
from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import SolverResult, SolveStats
from repro.mrf.vectorized import MRFArrays, SolverScratch

__all__ = ["LoopyBPSolver"]


class LoopyBPSolver:
    """Damped synchronous min-sum loopy BP.

    Args:
        max_iterations: synchronous update rounds.
        tolerance: convergence threshold on the max message change.
        damping: convex mixing factor of old/new messages in [0, 1);
            0 is undamped BP, values around 0.5 stabilise loopy graphs.
        backend: kernel backend running the round/decode primitives — a
            :class:`~repro.mrf.backends.KernelBackend`, a registry name
            (``"numpy"`` / ``"native"``), ``"auto"`` or ``None`` (consult
            ``REPRO_BACKEND``, then auto-detect).  Backends are
            bit-for-bit identical; see ``docs/kernels.md``.
        seed: stored but unused by the (deterministic) updates — kept so
            the uniform constructor signature survives the per-shard
            reseeding of :class:`~repro.mrf.sharded.ShardedSolver`.
    """

    name = "bp"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        damping: float = 0.5,
        backend: Union[KernelBackend, str, None] = None,
        seed: Optional[int] = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= damping < 1.0:
            raise ValueError("damping must be in [0, 1)")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.damping = damping
        self.backend = backend
        self.seed = seed if seed is not None else 0

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        """Run loopy BP on ``mrf`` (array plan built on the fly)."""
        return self.solve_arrays(MRFArrays(mrf))

    def solve_arrays(
        self,
        plan: MRFArrays,
        messages: Optional[np.ndarray] = None,
        scratch: Optional[SolverScratch] = None,
        backend: Union[KernelBackend, str, None] = None,
    ) -> SolverResult:
        """Run BP on a prebuilt array plan, optionally warm-started.

        ``messages`` is a caller-owned ``(2·edges, lmax)`` directed message
        array (zeros = cold start), updated **in place** every round so the
        caller keeps the post-solve state for the next warm start.  A
        near-fixed-point start just makes the first max-change small, so
        convergence costs a round or two instead of a full schedule.

        ``scratch`` holds the round buffers (the big one is the
        ``(2·edges, L, L)`` cost gather of the synchronous update); pass a
        shared :class:`SolverScratch` so repeated solves allocate nothing.

        While tracing is enabled (:func:`repro.obs.enabled`) the solve
        records a ``bp.solve`` span with nested per-iteration events and
        attaches a :class:`~repro.mrf.solvers.SolveStats` to the result;
        disabled, this wrapper costs one branch per solve.
        """
        kernels = resolve_backend(
            backend if backend is not None else self.backend
        )
        if not obs.enabled():
            return self._solve_arrays(plan, messages, scratch, kernels, None)
        stats = SolveStats()
        start = time.perf_counter()
        with obs.span(
            "bp.solve", cat="solve",
            nodes=plan.node_count, edges=plan.edge_count,
            backend=kernels.describe(),
        ) as solve_span:
            result = self._solve_arrays(plan, messages, scratch, kernels, stats)
            stats.total_seconds = time.perf_counter() - start
            result.stats = stats
            solve_span.add(
                iterations=result.iterations,
                energy=result.energy,
                converged=result.converged,
            )
        return result

    def _solve_arrays(
        self,
        plan: MRFArrays,
        messages: Optional[np.ndarray],
        scratch: Optional[SolverScratch],
        kernels: KernelBackend,
        stats: Optional[SolveStats],
    ) -> SolverResult:
        """The BP round loop behind :meth:`solve_arrays`; ``stats`` collects
        per-phase telemetry when tracing is on (``None`` disables it)."""
        collect = stats is not None
        setup_start = time.perf_counter() if collect else 0.0
        n = plan.node_count
        if n == 0:
            return SolverResult(
                labels=[], energy=0.0, iterations=0, converged=True,
                solver=self.name, stats=stats,
            )

        scratch = scratch if scratch is not None else SolverScratch()
        slots = 2 * plan.edge_count
        lmax = plan.lmax
        if messages is None:
            messages = scratch.zeros("bp_messages", (slots, lmax))
        beliefs = scratch.array("bp_beliefs", (n, lmax))

        best_labels: Optional[np.ndarray] = None
        best_energy = float("inf")
        energy_trace: List[float] = []
        converged = False
        iterations = 0
        trace = obs.current_trace() if collect else None
        if collect:
            stats.setup_seconds = time.perf_counter() - setup_start

        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            if collect:
                iter_wall_ns = time.time_ns()
                iter_start = mark = time.perf_counter()
            # Beliefs B_i = θ_i + Σ_j M_{j→i} from the previous round.
            kernels.bp_beliefs(plan, messages, beliefs)

            # Synchronous update of every directed message: exclude what
            # came in on the same edge, then min-reduce over sender labels.
            if plan.edge_count:
                max_change = kernels.bp_round(
                    plan, messages, beliefs, self.damping, scratch
                )
            else:
                max_change = 0.0
            if collect:
                now = time.perf_counter()
                stats.forward_seconds += now - mark
                mark = now

            # Decode against the pre-update beliefs and the new messages,
            # matching the reference solver's update/decode interleaving.
            labels = plan.decode(beliefs, messages, scratch, backend=kernels)
            energy = plan.energy(labels)
            if energy < best_energy:
                best_energy = energy
                best_labels = labels
            energy_trace.append(best_energy)
            if collect:
                now = time.perf_counter()
                stats.energy_seconds += now - mark
                stats.iteration_seconds.append(now - iter_start)
                trace.record(
                    "bp.iteration", "solve",
                    ts=iter_wall_ns / 1000.0,
                    dur=(now - iter_start) * 1e6,
                    args={
                        "i": iteration,
                        "energy": best_energy,
                        "max_change": max_change,
                    },
                )

            if max_change <= self.tolerance:
                converged = True
                break

        assert best_labels is not None
        return SolverResult(
            labels=[int(x) for x in best_labels],
            energy=best_energy,
            iterations=iterations,
            converged=converged,
            solver=self.name,
            energy_trace=energy_trace,
            stats=stats,
        )
