"""Loopy min-sum belief propagation.

The paper discusses BP as the standard alternative to graph cuts for its
energy form, and adopts TRW-S because BP "might not converge" on many
instances (Section V-C).  We implement damped synchronous min-sum BP both as
a comparison baseline and so the reproduction can demonstrate that claim
empirically (see ``benchmarks/bench_ablation_solvers.py``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import SolverResult

__all__ = ["LoopyBPSolver"]


class LoopyBPSolver:
    """Damped synchronous min-sum loopy BP.

    Args:
        max_iterations: synchronous update rounds.
        tolerance: convergence threshold on the max message change.
        damping: convex mixing factor of old/new messages in [0, 1);
            0 is undamped BP, values around 0.5 stabilise loopy graphs.
        seed: unused (uniform constructor signature).
    """

    name = "bp"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        damping: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= damping < 1.0:
            raise ValueError("damping must be in [0, 1)")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.damping = damping

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        n = mrf.node_count
        if n == 0:
            return SolverResult(
                labels=[], energy=0.0, iterations=0, converged=True, solver=self.name
            )

        # messages[2e] flows first→second of edge e; messages[2e+1] reverse.
        messages: List[np.ndarray] = []
        for edge_id in range(mrf.edge_count):
            i, j = mrf.edge(edge_id)
            messages.append(np.zeros(mrf.label_count(j)))
            messages.append(np.zeros(mrf.label_count(i)))

        # Per-node incoming message slots: (in_index, out_index, oriented cost).
        incoming = [[] for _ in range(n)]
        for edge_id in range(mrf.edge_count):
            i, j = mrf.edge(edge_id)
            cost = mrf.edge_cost(edge_id)
            # Entry layout: (message INTO the node, message OUT of the node
            # along the same edge, cost oriented with rows = node's labels).
            incoming[j].append((2 * edge_id, 2 * edge_id + 1, cost.T))
            incoming[i].append((2 * edge_id + 1, 2 * edge_id, cost))

        best_labels: Optional[List[int]] = None
        best_energy = float("inf")
        energy_trace: List[float] = []
        converged = False
        iterations = 0

        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            beliefs = [mrf.unary(i).copy() for i in range(n)]
            for node in range(n):
                for in_index, _out, _cost in incoming[node]:
                    beliefs[node] += messages[in_index]

            # Synchronous update of every directed message.
            new_messages = [None] * len(messages)
            max_change = 0.0
            for node in range(n):
                for in_index, out_index, oriented in incoming[node]:
                    # Message *out* of `node` along out_index: exclude what
                    # came in on the same edge (in_index), then min-reduce.
                    base = beliefs[node] - messages[in_index]
                    updated = (base[:, None] + oriented).min(axis=0)
                    updated -= updated.min()
                    if self.damping > 0.0:
                        updated = (
                            self.damping * messages[out_index]
                            + (1.0 - self.damping) * updated
                        )
                    change = float(np.max(np.abs(updated - messages[out_index])))
                    max_change = max(max_change, change)
                    new_messages[out_index] = updated
            for index, updated in enumerate(new_messages):
                if updated is not None:
                    messages[index] = updated

            labels = self._decode(mrf, incoming, messages, beliefs)
            energy = mrf.energy(labels)
            if energy < best_energy:
                best_energy = energy
                best_labels = labels
            energy_trace.append(best_energy)

            if max_change <= self.tolerance:
                converged = True
                break

        assert best_labels is not None
        return SolverResult(
            labels=best_labels,
            energy=best_energy,
            iterations=iterations,
            converged=converged,
            solver=self.name,
            energy_trace=energy_trace,
        )

    @staticmethod
    def _decode(mrf, incoming, messages, beliefs) -> List[int]:
        """Sequential-conditioning decoding of the current beliefs.

        Naive per-node argmin cannot break ties on symmetric instances
        (uniform unaries, symmetric costs) where BP's fixed point is
        uniform — exactly the "nearly flat" degeneracy the paper mentions.
        Decoding each node conditioned on its already-decoded neighbours
        (replace their messages by the actual pairwise column) resolves it.
        """
        labels = [0] * mrf.node_count
        decoded = [False] * mrf.node_count
        for node in range(mrf.node_count):
            vector = beliefs[node].copy()
            for in_index, _out, oriented in incoming[node]:
                # `oriented` has rows = this node's labels.  Slot 2e carries
                # i→j (sender i); slot 2e+1 carries j→i (sender j).
                i, j = mrf.edge(in_index // 2)
                sender = i if in_index % 2 == 0 else j
                if decoded[sender]:
                    vector -= messages[in_index]
                    vector += oriented[:, labels[sender]]
            labels[node] = int(np.argmin(vector))
            decoded[node] = True
        return labels
