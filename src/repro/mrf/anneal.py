"""Simulated-annealing MAP solver.

A stochastic baseline complementing ICM: Metropolis single-variable moves
under a geometric cooling schedule.  Slower than message passing but immune
to the deterministic local optima ICM falls into, which makes it a useful
cross-check on medium instances and a third point for the solver ablation.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

import numpy as np

from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import SolverResult, register_solver

__all__ = ["SimulatedAnnealingSolver"]


class SimulatedAnnealingSolver:
    """Metropolis annealing over single-node label moves.

    Args:
        max_iterations: number of full sweeps (each sweep proposes one move
            per node).
        start_temperature / end_temperature: geometric cooling endpoints.
        seed: PRNG seed (runs are deterministic given the seed).
        initial: optional starting labelling (defaults to unary argmin).
    """

    name = "anneal"

    def __init__(
        self,
        max_iterations: int = 300,
        start_temperature: float = 1.0,
        end_temperature: float = 1e-3,
        seed: Optional[int] = None,
        initial: Optional[Sequence[int]] = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if start_temperature <= 0 or end_temperature <= 0:
            raise ValueError("temperatures must be positive")
        if end_temperature > start_temperature:
            raise ValueError("end_temperature must not exceed start_temperature")
        self.max_iterations = max_iterations
        self.start_temperature = start_temperature
        self.end_temperature = end_temperature
        self.seed = seed
        self.initial = initial

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        """Run simulated annealing on ``mrf``; see :class:`SolverResult`."""
        n = mrf.node_count
        if n == 0:
            return SolverResult(
                labels=[], energy=0.0, iterations=0, converged=True, solver=self.name
            )
        rng = random.Random(self.seed)
        if self.initial is not None:
            if len(self.initial) != n:
                raise ValueError(
                    f"initial labelling has {len(self.initial)} entries for {n} nodes"
                )
            labels = [int(x) for x in self.initial]
        else:
            labels = [int(np.argmin(mrf.unary(i))) for i in range(n)]

        # Oriented cost views per node for O(degree) move deltas.
        oriented = [[] for _ in range(n)]
        for edge_id in range(mrf.edge_count):
            i, j = mrf.edge(edge_id)
            cost = mrf.edge_cost(edge_id)
            oriented[i].append((j, cost))
            oriented[j].append((i, cost.T))

        def move_delta(node: int, new_label: int) -> float:
            """Energy change of relabelling ``node`` to ``new_label``."""
            old_label = labels[node]
            delta = float(mrf.unary(node)[new_label] - mrf.unary(node)[old_label])
            for neighbor, cost in oriented[node]:
                delta += float(
                    cost[new_label, labels[neighbor]]
                    - cost[old_label, labels[neighbor]]
                )
            return delta

        energy = mrf.energy(labels)
        best_labels = list(labels)
        best_energy = energy
        cooling = (self.end_temperature / self.start_temperature) ** (
            1.0 / max(self.max_iterations - 1, 1)
        )
        temperature = self.start_temperature
        energy_trace: List[float] = []

        for _ in range(self.max_iterations):
            for node in range(n):
                count = mrf.label_count(node)
                if count < 2:
                    continue
                proposal = rng.randrange(count - 1)
                if proposal >= labels[node]:
                    proposal += 1  # uniform over the other labels
                delta = move_delta(node, proposal)
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    labels[node] = proposal
                    energy += delta
                    if energy < best_energy - 1e-12:
                        best_energy = energy
                        best_labels = list(labels)
            energy_trace.append(best_energy)
            temperature *= cooling

        # Guard against float drift in the incremental energy bookkeeping.
        best_energy = mrf.energy(best_labels)
        return SolverResult(
            labels=best_labels,
            energy=best_energy,
            iterations=self.max_iterations,
            converged=True,
            solver=self.name,
            energy_trace=energy_trace,
        )


register_solver("anneal", SimulatedAnnealingSolver)
