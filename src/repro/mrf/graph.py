"""Pairwise MRF representation.

A :class:`PairwiseMRF` holds the energy function of Eq. 1 in the paper::

    E(x) = Σ_i θ_i(x_i)  +  Σ_(i,j)∈E θ_ij(x_i, x_j)

Nodes have individual label spaces (each (host, service) pair has its own
candidate-product range), unary costs are vectors, pairwise costs are
matrices.  Edge cost matrices may be shared between edges by reference —
every inter-host edge of one service reuses the same similarity-derived
matrix — which keeps large instances cheap.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["PairwiseMRF", "MRFError"]


class MRFError(ValueError):
    """Raised on malformed MRF construction or evaluation."""


class PairwiseMRF:
    """A discrete pairwise MRF with minimisation semantics.

    >>> mrf = PairwiseMRF()
    >>> a = mrf.add_node([0.0, 1.0])
    >>> b = mrf.add_node([1.0, 0.0])
    >>> mrf.add_edge(a, b, [[0.0, 1.0], [1.0, 0.0]])
    0
    >>> mrf.energy([0, 1])
    0.0
    """

    def __init__(self) -> None:
        self._unaries: List[np.ndarray] = []
        self._edges: List[Tuple[int, int]] = []
        self._edge_costs: List[np.ndarray] = []
        self._edge_index: Dict[Tuple[int, int], int] = {}
        # node -> list of (neighbor, edge_id) pairs, in insertion order.
        self._adjacency: List[List[Tuple[int, int]]] = []

    # ------------------------------------------------------------- building

    def add_node(self, unary: Sequence[float]) -> int:
        """Add a node with the given unary cost vector; returns its index."""
        costs = np.asarray(unary, dtype=float)
        if costs.ndim != 1 or costs.size == 0:
            raise MRFError("unary costs must be a non-empty 1-D vector")
        self._unaries.append(costs)
        self._adjacency.append([])
        return len(self._unaries) - 1

    def add_edge(self, i: int, j: int, costs) -> int:
        """Add an undirected edge with pairwise cost matrix θ_ij.

        ``costs[a, b]`` is the cost of node ``i`` taking label ``a`` and node
        ``j`` taking label ``b``.  The matrix is stored by reference when a
        float64 ndarray is passed, enabling sharing.  Returns the edge id.
        """
        self._require_node(i)
        self._require_node(j)
        if i == j:
            raise MRFError(f"self-edge at node {i}")
        if (min(i, j), max(i, j)) in self._edge_index:
            raise MRFError(f"edge ({i}, {j}) already exists")
        matrix = costs if isinstance(costs, np.ndarray) else np.asarray(costs, dtype=float)
        if matrix.dtype != np.float64:
            matrix = matrix.astype(float)
        expected = (self.label_count(i), self.label_count(j))
        if matrix.shape != expected:
            raise MRFError(
                f"edge ({i}, {j}) cost matrix shape {matrix.shape} != {expected}"
            )
        edge_id = len(self._edges)
        self._edges.append((i, j))
        self._edge_costs.append(matrix)
        self._edge_index[(min(i, j), max(i, j))] = edge_id
        self._adjacency[i].append((j, edge_id))
        self._adjacency[j].append((i, edge_id))
        return edge_id

    def add_unary(self, node: int, extra: Sequence[float]) -> None:
        """Accumulate extra unary cost onto a node (used by constraints)."""
        self._require_node(node)
        addition = np.asarray(extra, dtype=float)
        if addition.shape != self._unaries[node].shape:
            raise MRFError(
                f"extra unary shape {addition.shape} != {self._unaries[node].shape}"
            )
        self._unaries[node] = self._unaries[node] + addition

    # -------------------------------------------------------------- queries

    @property
    def node_count(self) -> int:
        """Number of variables."""
        return len(self._unaries)

    @property
    def edge_count(self) -> int:
        """Number of pairwise edges."""
        return len(self._edges)

    def label_count(self, node: int) -> int:
        """Label-space size of ``node``."""
        self._require_node(node)
        return self._unaries[node].size

    def unary(self, node: int) -> np.ndarray:
        """The unary cost vector θ_i (not a copy; treat as read-only)."""
        self._require_node(node)
        return self._unaries[node]

    def edge(self, edge_id: int) -> Tuple[int, int]:
        """The (first, second) endpoints of edge ``edge_id``."""
        return self._edges[edge_id]

    def edge_cost(self, edge_id: int) -> np.ndarray:
        """θ_ij oriented from the edge's first to second endpoint."""
        return self._edge_costs[edge_id]

    def edges(self) -> Iterable[Tuple[int, int, np.ndarray]]:
        """Iterate (i, j, θ_ij) triples."""
        for (i, j), cost in zip(self._edges, self._edge_costs):
            yield i, j, cost

    def neighbors(self, node: int) -> List[Tuple[int, int]]:
        """(neighbor, edge_id) pairs of ``node``, in insertion order."""
        self._require_node(node)
        return list(self._adjacency[node])

    def has_edge(self, i: int, j: int) -> bool:
        """True when nodes ``i`` and ``j`` share an edge."""
        return (min(i, j), max(i, j)) in self._edge_index

    def edge_id(self, i: int, j: int) -> int:
        """The edge id coupling ``i`` and ``j`` (KeyError when absent)."""
        return self._edge_index[(min(i, j), max(i, j))]

    def connected_components(self) -> List[List[int]]:
        """Node partition into connected components (deterministic order)."""
        seen = [False] * self.node_count
        components: List[List[int]] = []
        for start in range(self.node_count):
            if seen[start]:
                continue
            stack, component = [start], []
            seen[start] = True
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbor, _ in self._adjacency[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        stack.append(neighbor)
            components.append(sorted(component))
        return components

    # ------------------------------------------------------------ evaluation

    def energy(self, labels: Sequence[int]) -> float:
        """E(x) for a full labelling."""
        if len(labels) != self.node_count:
            raise MRFError(
                f"labelling has {len(labels)} entries for {self.node_count} nodes"
            )
        total = 0.0
        for node, label in enumerate(labels):
            if not 0 <= label < self._unaries[node].size:
                raise MRFError(f"label {label} out of range at node {node}")
            total += float(self._unaries[node][label])
        for (i, j), cost in zip(self._edges, self._edge_costs):
            total += float(cost[labels[i], labels[j]])
        return total

    def trivial_lower_bound(self) -> float:
        """Σ_i min θ_i + Σ_ij min θ_ij — a cheap universal lower bound."""
        bound = sum(float(u.min()) for u in self._unaries)
        bound += sum(float(c.min()) for c in self._edge_costs)
        return bound

    def __repr__(self) -> str:
        return f"PairwiseMRF({self.node_count} nodes, {self.edge_count} edges)"

    # -------------------------------------------------------------- internal

    def _require_node(self, node: int) -> None:
        if not 0 <= node < len(self._unaries):
            raise MRFError(f"unknown node index {node}")
