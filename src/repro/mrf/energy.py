"""Energy evaluation utilities.

:meth:`PairwiseMRF.energy` evaluates E(x); the helpers here expose the
unary/pairwise split (the two sums of the paper's Eq. 1) and validate
labellings — used by tests to cross-check the MRF built by
:mod:`repro.core.costs` against a direct evaluation of the paper's formula
on the network model.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.mrf.graph import PairwiseMRF, MRFError

__all__ = ["energy_breakdown", "validate_labels"]


def energy_breakdown(mrf: PairwiseMRF, labels: Sequence[int]) -> Tuple[float, float]:
    """Return ``(unary_total, pairwise_total)`` with their sum == E(labels)."""
    validate_labels(mrf, labels)
    unary_total = sum(
        float(mrf.unary(node)[labels[node]]) for node in range(mrf.node_count)
    )
    pairwise_total = sum(
        float(cost[labels[i], labels[j]]) for i, j, cost in mrf.edges()
    )
    return unary_total, pairwise_total


def validate_labels(mrf: PairwiseMRF, labels: Sequence[int]) -> None:
    """Raise :class:`MRFError` unless ``labels`` is a complete valid labelling."""
    if len(labels) != mrf.node_count:
        raise MRFError(
            f"labelling has {len(labels)} entries for {mrf.node_count} nodes"
        )
    for node, label in enumerate(labels):
        if not 0 <= int(label) < mrf.label_count(node):
            raise MRFError(
                f"label {label} out of range [0, {mrf.label_count(node)}) "
                f"at node {node}"
            )
