"""ctypes/C implementation of the native kernels.

A line-for-line transliteration of :mod:`repro.mrf.backends._kernels_py`
into C, compiled on first use with whatever C compiler the host offers
(``$CC``, ``cc``, ``gcc``, ``clang``) and loaded through :mod:`ctypes` —
the pyscf idiom of thin native kernels under a NumPy-facing API, with no
build system and no Python.h dependency.  When no compiler works, the
loader reports unavailable and the backend registry degrades to NumPy.

Two flags are load-bearing for the bit-parity gate:

- ``-ffp-contract=off``: stops the compiler fusing ``b*γ - m`` into an
  FMA, whose single rounding differs from NumPy's two-step result;
- ``-O3 -march=native`` plus explicit software prefetch of the gathered
  belief/message rows: the sweeps are latency-bound at 10k+ hosts
  (messages no longer fit in cache), and prefetching the next edges'
  rows is where most of the ≥5× bar comes from.

Compiled libraries are cached on disk under a content hash, so every
process after the first just ``dlopen``\\ s.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = ["load_kernels", "CKernels", "KERNELS_C"]

#: Stack workspace size in the C kernels; plans with more labels per node
#: fall back to the NumPy backend (native.py gates on this).
LMAX_LIMIT = 64

KERNELS_C = r"""
#include <stdint.h>
#include <math.h>
#include <string.h>

/* NumPy-matching reductions: NaN poisons min/max; argmin returns the
 * first NaN's index.  PF is the software-prefetch distance (edges). */
#define MINACC(best, v) do { if ((v) < (best) || isnan(v)) (best) = (v); } while (0)
#define PF 12

static inline void send_body(
    int64_t k, const int64_t lmax,
    const double *restrict cost,
    const int64_t *restrict snd, const int64_t *restrict rcv,
    const int64_t *restrict out, const int64_t *restrict inn,
    const int64_t *restrict cid, const double *restrict gam,
    const uint8_t *restrict pad,
    double *restrict messages, double *restrict beliefs)
{
    const int64_t LL = lmax * lmax;
    double base_buf[64];
    double new_buf[64];
    for (int64_t e = 0; e < k; ++e) {
        if (e + PF < k) {
            __builtin_prefetch(beliefs + snd[e + PF] * lmax, 0);
            __builtin_prefetch(messages + inn[e + PF] * lmax, 0);
            __builtin_prefetch(messages + out[e + PF] * lmax, 1);
            __builtin_prefetch(beliefs + rcv[e + PF] * lmax, 1);
        }
        const double *b = beliefs + snd[e] * lmax;
        const double *m_in = messages + inn[e] * lmax;
        const double g = gam[e];
        for (int64_t r = 0; r < lmax; ++r)
            base_buf[r] = b[r] * g - m_in[r];
        const double *cm = cost + cid[e] * LL;
        for (int64_t c = 0; c < lmax; ++c)
            new_buf[c] = INFINITY;
        for (int64_t r = 0; r < lmax; ++r) {
            const double br = base_buf[r];
            const double *row = cm + r * lmax;
            for (int64_t c = 0; c < lmax; ++c) {
                const double v = row[c] + br;
                MINACC(new_buf[c], v);
            }
        }
        double rowmin = INFINITY;
        for (int64_t c = 0; c < lmax; ++c)
            MINACC(rowmin, new_buf[c]);
        const uint8_t *ep = pad + e * lmax;
        double *mout = messages + out[e] * lmax;
        double *brcv = beliefs + rcv[e] * lmax;
        for (int64_t c = 0; c < lmax; ++c) {
            const double nv = ep[c] ? 0.0 : new_buf[c] - rowmin;
            brcv[c] += nv - mout[c];
            mout[c] = nv;
        }
    }
}

void repro_trws_send(
    int64_t k, int64_t lmax, const double *cost,
    const int64_t *snd, const int64_t *rcv, const int64_t *out,
    const int64_t *inn, const int64_t *cid, const double *gam,
    const uint8_t *pad, double *messages, double *beliefs)
{
    if (lmax == 4)
        send_body(k, 4, cost, snd, rcv, out, inn, cid, gam, pad, messages, beliefs);
    else if (lmax == 6)
        send_body(k, 6, cost, snd, rcv, out, inn, cid, gam, pad, messages, beliefs);
    else if (lmax == 8)
        send_body(k, 8, cost, snd, rcv, out, inn, cid, gam, pad, messages, beliefs);
    else
        send_body(k, lmax, cost, snd, rcv, out, inn, cid, gam, pad, messages, beliefs);
}

void repro_condition(
    int64_t nn, int64_t t, int64_t lmax, const double *cost,
    const int64_t *nodes, const int64_t *ext_seg, const int64_t *ext_nbr,
    const int64_t *ext_in, const int64_t *ext_cid,
    const double *beliefs, const double *messages,
    int64_t *labels, double *cond)
{
    const int64_t LL = lmax * lmax;
    for (int64_t i = 0; i < nn; ++i)
        memcpy(cond + i * lmax, beliefs + nodes[i] * lmax,
               (size_t)lmax * sizeof(double));
    for (int64_t j = 0; j < t; ++j) {
        if (j + PF < t) {
            __builtin_prefetch(labels + ext_nbr[j + PF], 0);
            __builtin_prefetch(messages + ext_in[j + PF] * lmax, 0);
            __builtin_prefetch(cond + ext_seg[j + PF] * lmax, 1);
        }
        const int64_t lab = labels[ext_nbr[j]];
        const double *cm = cost + ext_cid[j] * LL + lab;
        const double *m_in = messages + ext_in[j] * lmax;
        double *row = cond + ext_seg[j] * lmax;
        for (int64_t r = 0; r < lmax; ++r)
            row[r] += cm[r * lmax] - m_in[r];
    }
    for (int64_t i = 0; i < nn; ++i) {
        const double *row = cond + i * lmax;
        int64_t best = 0;
        double bv = row[0];
        for (int64_t r = 1; r < lmax; ++r) {
            const double v = row[r];
            if (v < bv || (isnan(v) && !isnan(bv))) { bv = v; best = r; }
        }
        labels[nodes[i]] = best;
    }
}

void repro_icm(
    int64_t nn, int64_t t, int64_t lmax, const double *cost,
    const int64_t *nodes, const int64_t *all_seg, const int64_t *all_nbr,
    const int64_t *all_cid, const double *unary, const int64_t *current,
    int64_t *best_out, double *cond)
{
    const int64_t LL = lmax * lmax;
    for (int64_t i = 0; i < nn; ++i)
        memcpy(cond + i * lmax, unary + nodes[i] * lmax,
               (size_t)lmax * sizeof(double));
    for (int64_t j = 0; j < t; ++j) {
        if (j + PF < t)
            __builtin_prefetch(current + all_nbr[j + PF], 0);
        const int64_t lab = current[all_nbr[j]];
        const double *cm = cost + all_cid[j] * LL + lab;
        double *row = cond + all_seg[j] * lmax;
        for (int64_t r = 0; r < lmax; ++r)
            row[r] += cm[r * lmax];
    }
    for (int64_t i = 0; i < nn; ++i) {
        const double *row = cond + i * lmax;
        int64_t best = 0;
        double bv = row[0];
        for (int64_t r = 1; r < lmax; ++r) {
            const double v = row[r];
            if (v < bv || (isnan(v) && !isnan(bv))) { bv = v; best = r; }
        }
        best_out[i] = best;
    }
}

static inline void bound_body(
    int64_t k, const int64_t lmax,
    const double *restrict cost, const int64_t *restrict cid,
    const double *restrict messages, double *restrict mins)
{
    const int64_t LL = lmax * lmax;
    for (int64_t e = 0; e < k; ++e) {
        const double *cm = cost + cid[e] * LL;
        const double *ts = messages + (2 * e) * lmax;
        const double *tf = messages + (2 * e + 1) * lmax;
        double best = INFINITY;
        for (int64_t r = 0; r < lmax; ++r) {
            const double fr = tf[r];
            const double *row = cm + r * lmax;
            for (int64_t c = 0; c < lmax; ++c) {
                const double v = row[c] - fr - ts[c];
                MINACC(best, v);
            }
        }
        mins[e] = best;
    }
}

void repro_bound_mins(
    int64_t k, int64_t lmax, const double *cost, const int64_t *cid,
    const double *messages, double *mins)
{
    if (lmax == 4) bound_body(k, 4, cost, cid, messages, mins);
    else if (lmax == 6) bound_body(k, 6, cost, cid, messages, mins);
    else if (lmax == 8) bound_body(k, 8, cost, cid, messages, mins);
    else bound_body(k, lmax, cost, cid, messages, mins);
}

void repro_bp_beliefs(
    int64_t n, int64_t slots, int64_t lmax, const double *unary,
    const int64_t *slot_receiver, const double *messages, double *beliefs)
{
    memcpy(beliefs, unary, (size_t)(n * lmax) * sizeof(double));
    for (int64_t s = 0; s < slots; ++s) {
        if (s + PF < slots)
            __builtin_prefetch(beliefs + slot_receiver[s + PF] * lmax, 1);
        double *row = beliefs + slot_receiver[s] * lmax;
        const double *m = messages + s * lmax;
        for (int64_t r = 0; r < lmax; ++r)
            row[r] += m[r];
    }
}

static inline double bp_round_body(
    int64_t slots, const int64_t lmax,
    const double *restrict cost,
    const int64_t *restrict slot_sender, const int64_t *restrict slot_reverse,
    const int64_t *restrict slot_cid, const uint8_t *restrict slot_pad,
    const double damping,
    const double *restrict beliefs, double *restrict messages,
    double *restrict new_msgs)
{
    const int64_t LL = lmax * lmax;
    double base_buf[64];
    for (int64_t s = 0; s < slots; ++s) {
        if (s + PF < slots) {
            __builtin_prefetch(beliefs + slot_sender[s + PF] * lmax, 0);
            __builtin_prefetch(messages + slot_reverse[s + PF] * lmax, 0);
        }
        const double *b = beliefs + slot_sender[s] * lmax;
        const double *m_rev = messages + slot_reverse[s] * lmax;
        for (int64_t r = 0; r < lmax; ++r)
            base_buf[r] = b[r] - m_rev[r];
        const double *cm = cost + slot_cid[s] * LL;
        double *nm = new_msgs + s * lmax;
        for (int64_t c = 0; c < lmax; ++c)
            nm[c] = INFINITY;
        for (int64_t r = 0; r < lmax; ++r) {
            const double br = base_buf[r];
            const double *row = cm + r * lmax;
            for (int64_t c = 0; c < lmax; ++c) {
                const double v = row[c] + br;
                MINACC(nm[c], v);
            }
        }
        double rowmin = INFINITY;
        for (int64_t c = 0; c < lmax; ++c)
            MINACC(rowmin, nm[c]);
        const uint8_t *ep = slot_pad + s * lmax;
        for (int64_t c = 0; c < lmax; ++c)
            nm[c] = ep[c] ? 0.0 : nm[c] - rowmin;
    }
    double max_change = 0.0;
    for (int64_t s = 0; s < slots; ++s) {
        double *m = messages + s * lmax;
        const double *nm = new_msgs + s * lmax;
        for (int64_t c = 0; c < lmax; ++c) {
            const double old = m[c];
            double nv = nm[c];
            if (damping > 0.0)
                nv = nv * (1.0 - damping) + old * damping;
            const double d = fabs(nv - old);
            if (d > max_change || isnan(d)) max_change = d;
            m[c] = nv;
        }
    }
    return max_change;
}

double repro_bp_round(
    int64_t slots, int64_t lmax, const double *cost,
    const int64_t *slot_sender, const int64_t *slot_reverse,
    const int64_t *slot_cid, const uint8_t *slot_pad, double damping,
    const double *beliefs, double *messages, double *new_msgs)
{
    if (lmax == 4)
        return bp_round_body(slots, 4, cost, slot_sender, slot_reverse,
                             slot_cid, slot_pad, damping, beliefs, messages,
                             new_msgs);
    if (lmax == 6)
        return bp_round_body(slots, 6, cost, slot_sender, slot_reverse,
                             slot_cid, slot_pad, damping, beliefs, messages,
                             new_msgs);
    if (lmax == 8)
        return bp_round_body(slots, 8, cost, slot_sender, slot_reverse,
                             slot_cid, slot_pad, damping, beliefs, messages,
                             new_msgs);
    return bp_round_body(slots, lmax, cost, slot_sender, slot_reverse,
                         slot_cid, slot_pad, damping, beliefs, messages,
                         new_msgs);
}
"""

_BASE_FLAGS = ["-O3", "-shared", "-fPIC", "-ffp-contract=off", "-fno-math-errno"]

_lock = threading.Lock()
_cached: Optional["CKernels"] = None
_failed = False

_DP = ctypes.POINTER(ctypes.c_double)
_IP = ctypes.POINTER(ctypes.c_int64)
_UP = ctypes.POINTER(ctypes.c_uint8)
_I64 = ctypes.c_int64


def _dp(a: np.ndarray):
    return a.ctypes.data_as(_DP)


def _ip(a: np.ndarray):
    return a.ctypes.data_as(_IP)


def _up(a: np.ndarray):
    return a.ctypes.data_as(_UP)


class CKernels:
    """ctypes bindings over the compiled kernel library.

    Methods mirror :mod:`repro.mrf.backends._kernels_py` signatures, so the
    native backend drives either implementation through one adapter.  All
    array arguments must be C-contiguous with the documented dtypes — the
    backend's plan-state prep guarantees that.
    """

    kind = "cc"

    def __init__(self, path: Path) -> None:
        self.path = path
        self._lib = ctypes.CDLL(str(path))
        self._lib.repro_bp_round.restype = ctypes.c_double

    def trws_send(self, k, lmax, cost, snd, rcv, out, inn, cid, gam, pad,
                  messages, beliefs, base_buf, new_buf):
        self._lib.repro_trws_send(
            _I64(k), _I64(lmax), _dp(cost), _ip(snd), _ip(rcv), _ip(out),
            _ip(inn), _ip(cid), _dp(gam), _up(pad), _dp(messages),
            _dp(beliefs))

    def condition(self, nn, t, lmax, cost, nodes, ext_seg, ext_nbr, ext_in,
                  ext_cid, beliefs, messages, labels, cond):
        self._lib.repro_condition(
            _I64(nn), _I64(t), _I64(lmax), _dp(cost), _ip(nodes),
            _ip(ext_seg), _ip(ext_nbr), _ip(ext_in), _ip(ext_cid),
            _dp(beliefs), _dp(messages), _ip(labels), _dp(cond))

    def icm_condition(self, nn, t, lmax, cost, nodes, all_seg, all_nbr,
                      all_cid, unary, current, best_out, cond):
        self._lib.repro_icm(
            _I64(nn), _I64(t), _I64(lmax), _dp(cost), _ip(nodes),
            _ip(all_seg), _ip(all_nbr), _ip(all_cid), _dp(unary),
            _ip(current), _ip(best_out), _dp(cond))

    def bound_mins(self, k, lmax, cost, cid, messages, mins):
        self._lib.repro_bound_mins(
            _I64(k), _I64(lmax), _dp(cost), _ip(cid), _dp(messages),
            _dp(mins))

    def bp_beliefs(self, n, slots, lmax, unary, slot_receiver, messages,
                   beliefs):
        self._lib.repro_bp_beliefs(
            _I64(n), _I64(slots), _I64(lmax), _dp(unary), _ip(slot_receiver),
            _dp(messages), _dp(beliefs))

    def bp_round(self, slots, lmax, cost, slot_sender, slot_reverse,
                 slot_cid, slot_pad, damping, beliefs, messages, new_msgs,
                 base_buf):
        return self._lib.repro_bp_round(
            _I64(slots), _I64(lmax), _dp(cost), _ip(slot_sender),
            _ip(slot_reverse), _ip(slot_cid), _up(slot_pad),
            ctypes.c_double(damping), _dp(beliefs), _dp(messages),
            _dp(new_msgs))


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    try:
        tag = f"uid{os.getuid()}"
    except AttributeError:  # pragma: no cover - non-posix
        tag = "shared"
    return Path(tempfile.gettempdir()) / f"repro-kernels-{tag}"


def _compilers():
    explicit = os.environ.get("CC")
    candidates = [explicit] if explicit else []
    candidates += ["cc", "gcc", "clang"]
    return candidates


def _try_build(directory: Path, source: Path, target: Path) -> bool:
    for compiler in _compilers():
        for extra in (["-march=native"], []):
            tmp = directory / f".{target.name}.tmp{os.getpid()}"
            cmd = [compiler, *_BASE_FLAGS, *extra, str(source), "-o", str(tmp)]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, timeout=120, check=False
                )
            except (OSError, subprocess.TimeoutExpired):
                continue
            if proc.returncode == 0 and tmp.exists():
                os.replace(tmp, target)
                return True
            tmp.unlink(missing_ok=True)
    return False


def load_kernels() -> Optional[CKernels]:
    """Compile (once, disk-cached) and load the C kernels, or ``None``.

    Never raises: any compiler/loader failure marks the C path unavailable
    for the rest of the process and the registry falls back to NumPy.
    """
    global _cached, _failed
    if _cached is not None:
        return _cached
    if _failed:
        return None
    with _lock:
        if _cached is not None or _failed:
            return _cached
        try:
            digest = hashlib.sha256(
                ("|".join(_BASE_FLAGS) + KERNELS_C).encode()
            ).hexdigest()[:16]
            directory = _cache_dir()
            directory.mkdir(parents=True, exist_ok=True)
            target = directory / f"libreprokernels-{digest}.so"
            if not target.exists():
                source = directory / f"kernels-{digest}.c"
                source.write_text(KERNELS_C)
                if not _try_build(directory, source, target):
                    _failed = True
                    return None
            _cached = CKernels(target)
        except Exception:
            _failed = True
            return None
    return _cached
