"""The kernel-backend contract: the per-level sweep primitives.

A backend implements the handful of array kernels the vectorized solvers
spend their time in — the TRW-S block message update, the sequential
conditioning / ICM gather-argmin steps, the dual-bound edge reduction,
and the synchronous BP round.  Everything *around* those kernels — sweep
scheduling, convergence control, energy bookkeeping, refinement — stays
in shared Python and is identical across backends.

The contract is deliberately bit-for-bit: every kernel must reproduce the
NumPy reference backend's floating-point results exactly (same operation
order, same reduction order, same padding conventions), so any backend can
be swapped in without perturbing a single test, snapshot, or warm-start
trace.  ``tests/test_backends.py`` enforces this the way ``trws-ref``
gates the vectorized solvers.

Buffer conventions shared by all backends (see ``docs/kernels.md``):

- padded *belief/cost* entries are ``+inf``; padded *message* entries are
  ``0.0`` — kernels may therefore reduce over full ``lmax`` rows/columns
  and rely on the padding to be inert;
- every temporary lives in the caller's
  :class:`~repro.mrf.vectorized.SolverScratch` under a stable name, so
  repeated solves allocate nothing regardless of backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.mrf.vectorized import (
        MRFArrays,
        SolverScratch,
        _SendBlock,
        _Wavefront,
    )

__all__ = ["KernelBackend"]


class KernelBackend:
    """Abstract kernel backend (see module docstring for the contract).

    Attributes:
        name: registry name (``"numpy"``, ``"native"``).
        kind: implementation detail for reporting — ``"numpy"``,
            ``"numba"`` or ``"cc"``; shown by ``repro --help`` and
            recorded by benchmarks.
    """

    name: str = "abstract"
    kind: str = "abstract"

    @property
    def available(self) -> bool:
        """Whether this backend can run in the current environment."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable identity, e.g. ``"native (cc)"``."""
        if self.name == self.kind:
            return self.name
        return f"{self.name} ({self.kind})"

    # ------------------------------------------------------ TRW-S kernels

    def send_block(
        self,
        plan: "MRFArrays",
        block: "_SendBlock",
        messages: np.ndarray,
        beliefs: np.ndarray,
        scratch: "SolverScratch",
    ) -> None:
        """One level's block message update (γ·belief reweighting, oriented
        cost add, min-reduce over sender labels, normalisation, receiver
        belief scatter).  Mutates ``messages`` and ``beliefs`` in place."""
        raise NotImplementedError

    def condition_level(
        self,
        plan: "MRFArrays",
        level: "_Wavefront",
        beliefs: np.ndarray,
        messages: np.ndarray,
        labels: np.ndarray,
        scratch: "SolverScratch",
    ) -> None:
        """Sequential-conditioning label extraction for one wavefront
        level; writes ``labels[level.nodes]`` in place."""
        raise NotImplementedError

    def icm_level(
        self,
        plan: "MRFArrays",
        level: "_Wavefront",
        current: np.ndarray,
        scratch: "SolverScratch",
    ) -> np.ndarray:
        """One ICM level step: condition each node of ``level`` on *all*
        neighbours' current labels and return the per-node argmin labels
        (``len(level.nodes)`` int64; may alias a scratch buffer)."""
        raise NotImplementedError

    def bound_chunk_mins(
        self,
        plan: "MRFArrays",
        messages: np.ndarray,
        start: int,
        stop: int,
        scratch: "SolverScratch",
    ) -> np.ndarray:
        """Per-edge minima of the reparametrised pairwise costs for edges
        ``[start, stop)`` — the edge term of the dual bound.  Returns a
        ``(stop - start,)`` float array (may alias a scratch buffer); the
        chunked summation stays in shared code so both backends inherit
        NumPy's pairwise summation bit-for-bit."""
        raise NotImplementedError

    # --------------------------------------------------------- BP kernels

    def bp_beliefs(
        self,
        plan: "MRFArrays",
        messages: np.ndarray,
        beliefs: np.ndarray,
    ) -> None:
        """Beliefs from the previous round: ``unary + Σ incoming``,
        scatter-accumulated in slot order into ``beliefs`` in place."""
        raise NotImplementedError

    def bp_round(
        self,
        plan: "MRFArrays",
        messages: np.ndarray,
        beliefs: np.ndarray,
        damping: float,
        scratch: "SolverScratch",
    ) -> float:
        """One synchronous min-sum round over all ``2·edges`` directed
        slots: compute every new message from the previous round's values,
        damp, write back in place, and return the max absolute message
        change."""
        raise NotImplementedError
