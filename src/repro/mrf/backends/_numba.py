"""Numba implementation of the native kernels.

Jit-compiles the shared loop bodies in
:mod:`repro.mrf.backends._kernels_py` with ``@njit(cache=True)`` so the
machine code persists across processes (``__pycache__``-adjacent cache
files).  ``fastmath`` stays off — reassociation or FMA contraction would
break the bit-parity gate against the NumPy backend.

``bound_mins`` is the one kernel whose iterations are fully independent
(per-edge minima), so it alone gets ``parallel=True``; the sweep kernels
are sequential by construction (scatter order is part of the contract).

Import of this module never raises: :func:`load_kernels` returns ``None``
when Numba is absent or jitting fails, and the registry degrades to the
ctypes/C path or NumPy.
"""

from __future__ import annotations

from typing import Optional

from repro.mrf.backends import _kernels_py as _py

__all__ = ["load_kernels", "NumbaKernels"]

_cached: Optional["NumbaKernels"] = None
_failed = False


class NumbaKernels:
    """Holder of the jitted kernel entry points (same call signatures as
    :mod:`repro.mrf.backends._kernels_py`)."""

    kind = "numba"

    def __init__(self) -> None:
        from numba import njit

        jit = njit(cache=True, fastmath=False)
        self.trws_send = jit(_py.trws_send)
        self.condition = jit(_py.condition)
        self.icm_condition = jit(_py.icm_condition)
        self.bound_mins = njit(cache=True, fastmath=False, parallel=True)(
            _py.bound_mins
        )
        self.bp_beliefs = jit(_py.bp_beliefs)
        self.bp_round = jit(_py.bp_round)


def load_kernels() -> Optional[NumbaKernels]:
    """Jit and return the Numba kernels, or ``None`` when unavailable."""
    global _cached, _failed
    if _cached is not None:
        return _cached
    if _failed:
        return None
    try:
        _cached = NumbaKernels()
    except Exception:
        _failed = True
        return None
    return _cached
