"""Loop-level kernel bodies shared by the Numba and C paths.

These functions are written as plain nested loops over primitive arrays so
that:

- Numba can ``@njit`` them unchanged (:mod:`repro.mrf.backends._numba`);
- the C kernels (:mod:`repro.mrf.backends._cc`) are a line-for-line
  transliteration, reviewed against this file;
- the *logic* is testable without any toolchain — ``tests/test_backends.py``
  runs them un-jitted on tiny plans and asserts bit-parity with the NumPy
  backend, so a broken loop is caught even on machines where Numba and a C
  compiler are both absent.

Bit-parity notes (the whole point of this file):

- scatter-adds run in element order, matching ``np.add.at``;
- min/argmin/max accumulate with NumPy's NaN propagation (a NaN poisons
  the reduction; ``argmin`` returns the first NaN's index);
- within one TRW-S wavefront block, senders and receivers are disjoint and
  ``out``/``inn`` slots never alias, so the fused per-edge loop (compute +
  scatter) is exactly NumPy's two-phase compute-then-scatter;
- reductions run over full padded rows/columns exactly like the NumPy
  kernels do: padded beliefs/costs are ``+inf`` and padded messages ``0``,
  which keeps the padding inert;
- every kernel takes ``cost`` as the *flattened* ``(stacked·L·L,)`` view
  of the plan's cost stack (1-D indexing keeps Numba's typed lowering
  trivial and matches the C pointer arithmetic);
- multiply-then-subtract stays two rounded operations (the C build passes
  ``-ffp-contract=off`` so no FMA sneaks in; Numba's default fastmath=False
  already guarantees it).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import prange
except ImportError:  # pragma: no cover - the default environment
    prange = range

__all__ = [
    "trws_send",
    "condition",
    "icm_condition",
    "bound_mins",
    "bp_beliefs",
    "bp_round",
]


def trws_send(
    k, lmax, cost, snd, rcv, out, inn, cid, gam, pad,
    messages, beliefs, base_buf, new_buf,
):
    """One TRW-S block message update, one fused loop per directed edge."""
    for e in range(k):
        s = snd[e]
        g = gam[e]
        m = inn[e]
        for r in range(lmax):
            base_buf[r] = beliefs[s, r] * g - messages[m, r]
        c0 = cid[e] * lmax * lmax
        for c in range(lmax):
            new_buf[c] = np.inf
        for r in range(lmax):
            br = base_buf[r]
            row = c0 + r * lmax
            for c in range(lmax):
                v = cost[row + c] + br
                if v < new_buf[c] or v != v:
                    new_buf[c] = v
        rowmin = np.inf
        for c in range(lmax):
            v = new_buf[c]
            if v < rowmin or v != v:
                rowmin = v
        o = out[e]
        r_ = rcv[e]
        for c in range(lmax):
            if pad[e, c]:
                nv = 0.0
            else:
                nv = new_buf[c] - rowmin
            beliefs[r_, c] += nv - messages[o, c]
            messages[o, c] = nv


def condition(
    nn, t, lmax, cost, nodes, ext_seg, ext_nbr, ext_in, ext_cid,
    beliefs, messages, labels, cond,
):
    """Sequential-conditioning label extraction for one wavefront level."""
    for i in range(nn):
        node = nodes[i]
        for r in range(lmax):
            cond[i, r] = beliefs[node, r]
    for j in range(t):
        seg = ext_seg[j]
        lab = labels[ext_nbr[j]]
        c0 = ext_cid[j] * lmax * lmax + lab
        m = ext_in[j]
        for r in range(lmax):
            cond[seg, r] += cost[c0 + r * lmax] - messages[m, r]
    for i in range(nn):
        best = 0
        bv = cond[i, 0]
        for r in range(1, lmax):
            v = cond[i, r]
            if v < bv or (v != v and bv == bv):
                bv = v
                best = r
        labels[nodes[i]] = best


def icm_condition(
    nn, t, lmax, cost, nodes, all_seg, all_nbr, all_cid,
    unary, current, best_out, cond,
):
    """One ICM level: condition on *all* neighbours' current labels."""
    for i in range(nn):
        node = nodes[i]
        for r in range(lmax):
            cond[i, r] = unary[node, r]
    for j in range(t):
        seg = all_seg[j]
        lab = current[all_nbr[j]]
        c0 = all_cid[j] * lmax * lmax + lab
        for r in range(lmax):
            cond[seg, r] += cost[c0 + r * lmax]
    for i in range(nn):
        best = 0
        bv = cond[i, 0]
        for r in range(1, lmax):
            v = cond[i, r]
            if v < bv or (v != v and bv == bv):
                bv = v
                best = r
        best_out[i] = best


def bound_mins(k, lmax, cost, cid, messages, mins):
    """Per-edge minima of the reparametrised pairwise costs.

    ``messages`` is the ``(2k, lmax)`` directed-slot slice for these edges
    (slot ``2e`` towards the second endpoint, ``2e+1`` back).  Independent
    per edge, hence the only ``prange`` kernel.
    """
    for e in prange(k):
        c0 = cid[e] * lmax * lmax
        best = np.inf
        for r in range(lmax):
            fr = messages[2 * e + 1, r]
            row = c0 + r * lmax
            for c in range(lmax):
                v = cost[row + c] - fr - messages[2 * e, c]
                if v < best or v != v:
                    best = v
        mins[e] = best


def bp_beliefs(n, slots, lmax, unary, slot_receiver, messages, beliefs):
    """Beliefs = unary + Σ incoming messages, scatter-added in slot order."""
    for i in range(n):
        for r in range(lmax):
            beliefs[i, r] = unary[i, r]
    for s in range(slots):
        node = slot_receiver[s]
        for r in range(lmax):
            beliefs[node, r] += messages[s, r]


def bp_round(
    slots, lmax, cost, slot_sender, slot_reverse, slot_cid, slot_pad,
    damping, beliefs, messages, new_msgs, base_buf,
):
    """One synchronous BP round; returns the max absolute message change.

    Two phases, because every new message reads the *previous* round via
    ``slot_reverse``: compute all raw updates first, then damp/diff/write.
    """
    for s in range(slots):
        snd = slot_sender[s]
        rev = slot_reverse[s]
        for r in range(lmax):
            base_buf[r] = beliefs[snd, r] - messages[rev, r]
        c0 = slot_cid[s] * lmax * lmax
        for c in range(lmax):
            new_msgs[s, c] = np.inf
        for r in range(lmax):
            br = base_buf[r]
            row = c0 + r * lmax
            for c in range(lmax):
                v = cost[row + c] + br
                if v < new_msgs[s, c] or v != v:
                    new_msgs[s, c] = v
        rowmin = np.inf
        for c in range(lmax):
            v = new_msgs[s, c]
            if v < rowmin or v != v:
                rowmin = v
        for c in range(lmax):
            if slot_pad[s, c]:
                new_msgs[s, c] = 0.0
            else:
                new_msgs[s, c] = new_msgs[s, c] - rowmin
    max_change = 0.0
    for s in range(slots):
        for c in range(lmax):
            old = messages[s, c]
            nv = new_msgs[s, c]
            if damping > 0.0:
                nv = nv * (1.0 - damping) + old * damping
            d = abs(nv - old)
            if d > max_change or d != d:
                max_change = d
            messages[s, c] = nv
    return max_change
