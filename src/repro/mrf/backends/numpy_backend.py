"""The NumPy kernel backend — the reference implementation.

These are the exact kernel bodies the vectorized solvers ran before the
backend registry existed (extracted from ``trws.py``, ``vectorized.py``
and ``bp.py`` unchanged — same operations, same order, same
``SolverScratch`` buffer names), so this backend *defines* the bit-level
contract every other backend is gated against.
"""

from __future__ import annotations

import numpy as np

from repro.mrf.backends.base import KernelBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    """Vectorized NumPy kernels (always available; the parity reference)."""

    name = "numpy"
    kind = "numpy"

    @property
    def available(self) -> bool:
        return True

    # ------------------------------------------------------ TRW-S kernels

    def send_block(self, plan, block, messages, beliefs, scratch):
        k = len(block.snd)
        if not k:
            return
        lmax = plan.lmax
        base = scratch.array("send_base", (k, lmax))
        tmp = scratch.array("send_tmp", (k, lmax))
        cost = scratch.array("send_cost", (k, lmax, lmax))
        new = scratch.array("send_new", (k, lmax))
        rowmin = scratch.array("send_rowmin", (k, 1))
        beliefs.take(block.snd, axis=0, out=base, mode="clip")
        np.multiply(base, block.gam, out=base)
        messages.take(block.inn, axis=0, out=tmp, mode="clip")
        np.subtract(base, tmp, out=base)
        plan.cost.take(block.cid, axis=0, out=cost, mode="clip")
        np.add(cost, base[:, :, None], out=cost)
        cost.min(axis=1, out=new)
        new.min(axis=1, keepdims=True, out=rowmin)
        np.subtract(new, rowmin, out=new)
        # Padded receiver labels came out +inf; store the 0 convention.
        np.copyto(new, 0.0, where=block.pad)
        messages.take(block.out, axis=0, out=tmp, mode="clip")
        np.subtract(new, tmp, out=tmp)
        np.add.at(beliefs, block.rcv, tmp)
        messages[block.out] = new

    def condition_level(self, plan, level, beliefs, messages, labels, scratch):
        cond = scratch.array("cond", (len(level.nodes), plan.lmax))
        beliefs.take(level.nodes, axis=0, out=cond, mode="clip")
        if len(level.ext_nbr):
            np.add.at(
                cond,
                level.ext_seg,
                plan.cost[level.ext_cid, :, labels[level.ext_nbr]]
                - messages[level.ext_in],
            )
        labels[level.nodes] = np.argmin(cond, axis=1)

    def icm_level(self, plan, level, current, scratch):
        cond = scratch.array("icm_cond", (len(level.nodes), plan.lmax))
        plan.unary_inf.take(level.nodes, axis=0, out=cond, mode="clip")
        if len(level.all_nbr):
            np.add.at(
                cond,
                level.all_seg,
                plan.cost[level.all_cid, :, current[level.all_nbr]],
            )
        return np.argmin(cond, axis=1)

    def bound_chunk_mins(self, plan, messages, start, stop, scratch):
        to_second = messages[2 * start : 2 * stop : 2]
        to_first = messages[2 * start + 1 : 2 * stop : 2]
        reduced = scratch.array("bound_cost", (stop - start, plan.lmax, plan.lmax))
        plan.cost.take(plan.edge_cid[start:stop], axis=0, out=reduced, mode="clip")
        np.subtract(reduced, to_first[:, :, None], out=reduced)
        np.subtract(reduced, to_second[:, None, :], out=reduced)
        return reduced.min(axis=(1, 2))

    # --------------------------------------------------------- BP kernels

    def bp_beliefs(self, plan, messages, beliefs):
        np.copyto(beliefs, plan.unary_inf)
        np.add.at(beliefs, plan.slot_receiver, messages)

    def bp_round(self, plan, messages, beliefs, damping, scratch):
        slots = 2 * plan.edge_count
        lmax = plan.lmax
        base = scratch.array("bp_base", (slots, lmax))
        diff = scratch.array("bp_diff", (slots, lmax))
        cost = scratch.array("bp_cost", (slots, lmax, lmax))
        updated = scratch.array("bp_new", (slots, lmax))
        rowmin = scratch.array("bp_rowmin", (slots, 1))
        beliefs.take(plan.slot_sender, axis=0, out=base, mode="clip")
        messages.take(plan.slot_reverse, axis=0, out=diff, mode="clip")
        np.subtract(base, diff, out=base)
        plan.cost.take(plan.slot_cid, axis=0, out=cost, mode="clip")
        np.add(cost, base[:, :, None], out=cost)
        cost.min(axis=1, out=updated)
        updated.min(axis=1, keepdims=True, out=rowmin)
        np.subtract(updated, rowmin, out=updated)
        np.copyto(updated, 0.0, where=plan.slot_pad)
        if damping > 0.0:
            np.multiply(updated, 1.0 - damping, out=updated)
            np.multiply(messages, damping, out=diff)
            np.add(updated, diff, out=updated)
        np.subtract(updated, messages, out=diff)
        np.abs(diff, out=diff)
        max_change = float(diff.max())
        np.copyto(messages, updated)
        return max_change
