"""Kernel-backend registry for the vectorized message-passing solvers.

The solvers (:mod:`repro.mrf.trws`, :mod:`repro.mrf.bp`) and the plan
primitives (:class:`~repro.mrf.vectorized.MRFArrays` decode/ICM/bound)
spend their time in a handful of per-level array kernels.  This package
makes that kernel tier pluggable:

- ``numpy`` — the vectorized NumPy reference (always available; defines
  the bit-level contract);
- ``native`` — the same kernels compiled (Numba or ctypes/C), bit-for-bit
  identical and parity-gated by ``tests/test_backends.py``.

Selection precedence, resolved *per call* so environments and tests can
flip it dynamically:

1. an explicit ``backend=`` argument (``KernelBackend`` instance or name);
2. :func:`set_default_backend` (process-wide override);
3. the ``REPRO_BACKEND`` environment variable;
4. ``auto``: ``native`` when its toolchain is available, else ``numpy``.

:func:`get_backend` is strict (unknown name → ``ValueError``);
:func:`resolve_backend` is graceful — asking for an unavailable backend
warns once and falls back to NumPy, so a host without Numba or a C
compiler behaves exactly as before this tier existed.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Union

from repro.mrf.backends.base import KernelBackend
from repro.mrf.backends.native import NativeBackend
from repro.mrf.backends.numpy_backend import NumpyBackend

__all__ = [
    "KernelBackend",
    "NativeBackend",
    "NumpyBackend",
    "available_backends",
    "active_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
]

#: Environment variable consulted by :func:`resolve_backend` (read at
#: resolve time, not import time).
BACKEND_ENV = "REPRO_BACKEND"

_REGISTRY: Dict[str, KernelBackend] = {}
_default: Optional[str] = None
_warned: set = set()


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register ``backend`` under ``backend.name`` (last wins)."""
    _REGISTRY[backend.name] = backend
    return backend


register_backend(NumpyBackend())
register_backend(NativeBackend())


def available_backends() -> Dict[str, bool]:
    """Registered backend names → whether each can run here.

    >>> available_backends()["numpy"]
    True
    """
    return {name: _REGISTRY[name].available for name in sorted(_REGISTRY)}


def get_backend(name: str) -> KernelBackend:
    """The registered backend called ``name`` (strict).

    Raises:
        ValueError: unknown name — listing the known ones.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown kernel backend {name!r} (known: {known}, plus 'auto')"
        ) from None


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    Takes precedence over ``REPRO_BACKEND``; ``"auto"`` and unknown names
    are rejected eagerly so misconfiguration fails at the call site.
    """
    global _default
    if name is not None and name != "auto":
        get_backend(name)
    _default = None if name == "auto" else name


def _fallback(requested: str, reason: str) -> KernelBackend:
    if requested not in _warned:
        _warned.add(requested)
        warnings.warn(
            f"kernel backend {requested!r} {reason}; falling back to numpy",
            RuntimeWarning,
            stacklevel=3,
        )
    return _REGISTRY["numpy"]


def resolve_backend(
    backend: Union[KernelBackend, str, None] = None,
) -> KernelBackend:
    """Resolve a solve's kernel backend (graceful; never raises on
    *availability* or on ``REPRO_BACKEND`` typos, only on unknown
    explicit names).

    ``backend`` may be a :class:`KernelBackend` instance (used as-is when
    available), a name, ``"auto"``, or ``None`` (consult the default set
    by :func:`set_default_backend`, then ``REPRO_BACKEND``, then auto).
    """
    if isinstance(backend, KernelBackend):
        if backend.available:
            return backend
        return _fallback(backend.name, "is not available on this host")
    name = backend
    if name is None:
        name = _default
    from_env = False
    if name is None:
        name = os.environ.get(BACKEND_ENV, "").strip() or None
        from_env = name is not None
    if name is None or name == "auto":
        native = _REGISTRY["native"]
        return native if native.available else _REGISTRY["numpy"]
    if from_env and name not in _REGISTRY:
        # A typo in an exported REPRO_BACKEND must not crash every solve
        # on the fleet — environment config degrades like a missing
        # toolchain does.  Explicit names (argument/set_default_backend)
        # stay strict: those fail at an attributable call site.
        return _fallback(name, "is not a known kernel backend")
    chosen = get_backend(name)
    if chosen.available:
        return chosen
    return _fallback(name, "is not available on this host")


def active_backend_name(
    backend: Union[KernelBackend, str, None] = None,
) -> str:
    """Human-readable identity of the backend a solve would use now.

    >>> active_backend_name("numpy")
    'numpy'
    """
    return resolve_backend(backend).describe()
