"""The compiled ``native`` backend: Numba- or C-compiled loop kernels.

Implementation preference is Numba (``@njit(cache=True)``) then the
ctypes/C build (:mod:`repro.mrf.backends._cc`); ``REPRO_NATIVE_IMPL``
(``numba`` | ``cc``) pins one explicitly.  Both run the *same* loop
bodies (:mod:`repro.mrf.backends._kernels_py` and its reviewed C
transliteration), so the choice is operational, not numerical.

The backend holds **no copies** of plan data.  Per plan it caches only a
flattened *view* of the cost stack plus a validation token of object
identities (``WeakKeyDictionary``, so plans stay collectable); in-place
streaming patches (``set_cost_matrix`` / ``set_unary``) therefore remain
visible to the kernels, while ``replace_edges`` rebuilds are caught by the
token and re-validated.  Any array that is not C-contiguous ``float64`` /
``int64`` — or a plan wider than 64 labels, the C kernels' stack-buffer
limit — routes that call to the NumPy backend instead: graceful, never
wrong.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro.mrf.backends.base import KernelBackend
from repro.mrf.backends.numpy_backend import NumpyBackend

__all__ = ["NativeBackend"]

#: C kernels keep per-edge label workspaces on the stack with this bound.
_LMAX_LIMIT = 64


def _f64(a: np.ndarray) -> bool:
    return a.dtype == np.float64 and a.flags.c_contiguous


def _i64(a: np.ndarray) -> bool:
    return a.dtype == np.int64 and a.flags.c_contiguous


class _PlanState:
    """Cached per-plan view bundle with an identity validation token."""

    __slots__ = ("token", "ok", "cost_flat")

    def __init__(self, plan) -> None:
        self.token = self._token(plan)
        cost = plan.cost
        self.ok = (
            plan.lmax <= _LMAX_LIMIT
            and _f64(cost)
            and _f64(plan.unary_inf)
            and _i64(plan.slot_sender)
            and _i64(plan.slot_receiver)
            and _i64(plan.slot_reverse)
            and _i64(plan.slot_cid)
            and plan.slot_pad.dtype == np.bool_
            and plan.slot_pad.flags.c_contiguous
        )
        self.cost_flat = cost.reshape(-1) if self.ok else None

    @staticmethod
    def _token(plan) -> tuple:
        # replace_edges rebinds all of these; in-place value patches
        # (set_cost_matrix / set_unary) rebind none, and the cached views
        # keep seeing the new values — exactly what streaming needs.
        return (
            id(plan.cost),
            id(plan.unary_inf),
            id(plan.slot_pad),
            plan.lmax,
            plan.edge_count,
        )


class NativeBackend(KernelBackend):
    """Compiled kernels behind the shared :class:`KernelBackend` contract."""

    name = "native"
    kind = "native"

    def __init__(self) -> None:
        self._numpy = NumpyBackend()
        self._kernels = None
        self._resolved = False
        self._states: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # ----------------------------------------------------- implementation

    def _impl(self):
        """Resolve the kernel implementation once per backend instance."""
        if self._resolved:
            return self._kernels
        self._resolved = True
        preference = os.environ.get("REPRO_NATIVE_IMPL", "").strip().lower()
        if preference == "numba":
            loaders = ["numba"]
        elif preference == "cc":
            loaders = ["cc"]
        else:
            loaders = ["numba", "cc"]
        for which in loaders:
            if which == "numba":
                from repro.mrf.backends import _numba

                kernels = _numba.load_kernels()
            else:
                from repro.mrf.backends import _cc

                kernels = _cc.load_kernels()
            if kernels is not None:
                self._kernels = kernels
                self.kind = kernels.kind
                break
        return self._kernels

    @property
    def available(self) -> bool:
        return self._impl() is not None

    def describe(self) -> str:
        self._impl()
        return super().describe()

    def _state(self, plan) -> _PlanState:
        state = self._states.get(plan)
        if state is None or state.token != _PlanState._token(plan):
            state = _PlanState(plan)
            self._states[plan] = state
        return state

    # ------------------------------------------------------ TRW-S kernels

    def send_block(self, plan, block, messages, beliefs, scratch):
        k = len(block.snd)
        if not k:
            return
        kernels = self._impl()
        state = self._state(plan)
        if (
            kernels is None
            or not state.ok
            or not (_f64(messages) and _f64(beliefs))
            or not (
                _i64(block.snd)
                and _i64(block.rcv)
                and _i64(block.out)
                and _i64(block.inn)
                and _i64(block.cid)
            )
            or not block.gam.flags.c_contiguous
            or not block.pad.flags.c_contiguous
            or block.gam.dtype != np.float64
            or block.pad.dtype != np.bool_
        ):
            self._numpy.send_block(plan, block, messages, beliefs, scratch)
            return
        lmax = plan.lmax
        kernels.trws_send(
            k,
            lmax,
            state.cost_flat,
            block.snd,
            block.rcv,
            block.out,
            block.inn,
            block.cid,
            block.gam.reshape(-1),
            block.pad,
            messages,
            beliefs,
            scratch.array("native_base_buf", (lmax,)),
            scratch.array("native_new_buf", (lmax,)),
        )

    def condition_level(self, plan, level, beliefs, messages, labels, scratch):
        nn = len(level.nodes)
        kernels = self._impl()
        state = self._state(plan)
        if (
            not nn
            or kernels is None
            or not state.ok
            or not (_f64(beliefs) and _f64(messages))
            or not _i64(labels)
            or not (
                _i64(level.nodes)
                and _i64(level.ext_seg)
                and _i64(level.ext_nbr)
                and _i64(level.ext_in)
                and _i64(level.ext_cid)
            )
        ):
            self._numpy.condition_level(
                plan, level, beliefs, messages, labels, scratch
            )
            return
        kernels.condition(
            nn,
            len(level.ext_nbr),
            plan.lmax,
            state.cost_flat,
            level.nodes,
            level.ext_seg,
            level.ext_nbr,
            level.ext_in,
            level.ext_cid,
            beliefs,
            messages,
            labels,
            scratch.array("native_cond", (nn, plan.lmax)),
        )

    def icm_level(self, plan, level, current, scratch):
        nn = len(level.nodes)
        kernels = self._impl()
        state = self._state(plan)
        if (
            not nn
            or kernels is None
            or not state.ok
            or not _i64(current)
            or not (
                _i64(level.nodes)
                and _i64(level.all_seg)
                and _i64(level.all_nbr)
                and _i64(level.all_cid)
            )
        ):
            return self._numpy.icm_level(plan, level, current, scratch)
        best = scratch.array("native_icm_best", (nn,), np.int64)
        kernels.icm_condition(
            nn,
            len(level.all_nbr),
            plan.lmax,
            state.cost_flat,
            level.nodes,
            level.all_seg,
            level.all_nbr,
            level.all_cid,
            plan.unary_inf,
            current,
            best,
            scratch.array("native_icm", (nn, plan.lmax)),
        )
        return best

    def bound_chunk_mins(self, plan, messages, start, stop, scratch):
        k = stop - start
        kernels = self._impl()
        state = self._state(plan)
        cid = plan.edge_cid[start:stop]
        if (
            k <= 0
            or kernels is None
            or not state.ok
            or not _f64(messages)
            or not _i64(cid)
        ):
            return self._numpy.bound_chunk_mins(
                plan, messages, start, stop, scratch
            )
        mins = scratch.array("native_bound", (k,))
        kernels.bound_mins(
            k,
            plan.lmax,
            state.cost_flat,
            cid,
            messages[2 * start : 2 * stop],
            mins,
        )
        return mins

    # --------------------------------------------------------- BP kernels

    def bp_beliefs(self, plan, messages, beliefs):
        kernels = self._impl()
        state = self._state(plan)
        if (
            kernels is None
            or not state.ok
            or not (_f64(messages) and _f64(beliefs))
        ):
            self._numpy.bp_beliefs(plan, messages, beliefs)
            return
        kernels.bp_beliefs(
            plan.node_count,
            2 * plan.edge_count,
            plan.lmax,
            plan.unary_inf,
            plan.slot_receiver,
            messages,
            beliefs,
        )

    def bp_round(self, plan, messages, beliefs, damping, scratch):
        slots = 2 * plan.edge_count
        kernels = self._impl()
        state = self._state(plan)
        if (
            not slots
            or kernels is None
            or not state.ok
            or not (_f64(messages) and _f64(beliefs))
        ):
            return self._numpy.bp_round(
                plan, messages, beliefs, damping, scratch
            )
        lmax = plan.lmax
        return float(
            kernels.bp_round(
                slots,
                lmax,
                state.cost_flat,
                plan.slot_sender,
                plan.slot_reverse,
                plan.slot_cid,
                plan.slot_pad,
                float(damping),
                beliefs,
                messages,
                scratch.array("native_bp_new", (slots, lmax)),
                scratch.array("native_base_buf", (lmax,)),
            )
        )
