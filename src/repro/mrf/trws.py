"""Sequential tree-reweighted message passing (TRW-S).

This is the optimiser the paper uses for MAP inference on its diversification
MRF (Section V-C), following Kolmogorov's sequential TRW scheme:

* nodes are processed in a fixed order; each full iteration is a forward
  sweep (messages to later neighbours) and a backward sweep (messages to
  earlier neighbours),
* node ``i`` averages its reparametrised unary with weight
  ``γ_i = 1 / max(|earlier neighbours|, |later neighbours|)``, the
  monotonic-chain decomposition weight,
* a labelling is extracted during every forward sweep with Kolmogorov's
  sequential-conditioning rule, and the best labelling seen is returned,
* a valid dual **lower bound** is computed from the current
  reparametrisation after every backward sweep:
  ``Σ_i min θ'_i + Σ_ij min θ'_ij`` where θ' is the message-reparametrised
  energy (which preserves E exactly, so the bound is always ≤ the optimum).

The solver certifies global optimality whenever ``energy == lower_bound``
(common on the tree-like and weakly-coupled instances of the case study,
matching the paper's "guaranteed to give an optimal MAP solution in most
cases").

Implementation notes: beliefs ``B_i = θ_i + Σ_j M_{j→i}`` are maintained
incrementally so each message update costs one ``(L_i × L_j)`` matrix
min-reduction; edge cost matrices are shared by reference across edges of
the same service, so memory stays O(nodes·L + edges·L) plus one matrix per
service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import SolverResult

__all__ = ["TRWSSolver"]


@dataclass
class _NodeLinks:
    """Precomputed adjacency for one node, split by processing order."""

    # Each entry: (neighbor, out_message_index, in_message_index, cost_rows_self)
    forward: List[Tuple[int, int, int, np.ndarray]]
    backward: List[Tuple[int, int, int, np.ndarray]]
    gamma: float


class TRWSSolver:
    """TRW-S MAP solver for :class:`~repro.mrf.graph.PairwiseMRF`.

    Args:
        max_iterations: forward+backward sweep budget.
        tolerance: convergence threshold on the lower-bound improvement and
            on the primal-dual gap.
        compute_bound: disable to skip the per-iteration dual bound (saves
            one O(E·L²) pass per iteration on large scalability runs).
        refine: polish the best extracted labelling with ICM coordinate
            descent before returning.  On flat-unary instances the message
            fixed point can be fully symmetric (the LP relaxation is
            fractional), where one extraction pass leaves easy single-node
            improvements on the table; the standard remedy is an ICM
            post-pass (cf. OpenGM's TRWS+ICM pipeline).
        tie_break_noise: scale of the random unary perturbation used to
            break label-symmetry.  The diversification problem has flat
            unaries (``Pr_const``) and cost matrices whose columns all
            contain zeros, making the all-zero message state a degenerate
            fixed point; an ε-perturbation far below any real cost
            difference restores informative messages.  Energies and
            labellings are always evaluated against the *original* costs;
            the dual bound is corrected by the total perturbation so it
            remains a valid bound for the original problem.
        seed: seeds the tie-breaking perturbation (deterministic default).
    """

    name = "trws"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-9,
        compute_bound: bool = True,
        refine: bool = True,
        tie_break_noise: float = 1e-4,
        seed: Optional[int] = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tie_break_noise < 0:
            raise ValueError("tie_break_noise must be non-negative")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.compute_bound = compute_bound
        self.refine = refine
        self.tie_break_noise = tie_break_noise
        self.seed = seed if seed is not None else 0

    # ----------------------------------------------------------------- API

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        """Run TRW-S and return the best labelling found plus the dual bound.

        Forests are dispatched to an exact min-sum dynamic program (TRW-S is
        exact on trees; the DP realises that guarantee directly and returns
        a tight bound).  Loopy graphs run the iterative message passing.
        """
        n = mrf.node_count
        if n == 0:
            return SolverResult(
                labels=[], energy=0.0, lower_bound=0.0, iterations=0,
                converged=True, solver=self.name,
            )
        if _is_forest(mrf):
            labels = _solve_forest(mrf)
            energy = mrf.energy(labels)
            return SolverResult(
                labels=labels, energy=energy, lower_bound=energy,
                iterations=1, converged=True, solver=self.name,
                energy_trace=[energy], bound_trace=[energy],
            )

        links = self._build_links(mrf)
        messages = self._init_messages(mrf)
        if self.tie_break_noise > 0:
            rng = np.random.default_rng(self.seed)
            noise = [
                rng.uniform(0.0, self.tie_break_noise, mrf.label_count(i))
                for i in range(n)
            ]
            beliefs = [mrf.unary(i) + noise[i] for i in range(n)]
            bound_slack = float(sum(x.max() for x in noise))
        else:
            beliefs = [mrf.unary(i).copy() for i in range(n)]
            bound_slack = 0.0

        best_labels: Optional[List[int]] = None
        best_energy = float("inf")
        lower_bound = float("-inf")
        energy_trace: List[float] = []
        bound_trace: List[float] = []
        converged = False
        iterations = 0

        stalled = 0
        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            previous_energy = best_energy
            labels = self._forward_sweep(mrf, links, messages, beliefs)
            energy = mrf.energy(labels)
            if energy < best_energy:
                best_energy = energy
                best_labels = labels
            self._backward_sweep(mrf, links, messages, beliefs)

            previous_bound = lower_bound
            if self.compute_bound:
                # The bound holds for the perturbed problem; subtracting the
                # total perturbation makes it valid for the original one.
                lower_bound = max(
                    lower_bound,
                    self._reparametrised_bound(mrf, messages, beliefs)
                    - bound_slack,
                )
            energy_trace.append(best_energy)
            bound_trace.append(lower_bound)

            if self.compute_bound and np.isfinite(lower_bound):
                if best_energy - lower_bound <= self.tolerance:
                    converged = True
                    break
                # Converged when neither the dual bound nor the primal has
                # moved for a few consecutive iterations (the bound alone can
                # plateau while the labelling still improves).  The stall
                # threshold absorbs the tie-breaking perturbation's jitter.
                stall_eps = max(self.tolerance, self.tie_break_noise)
                bound_stalled = (
                    np.isfinite(previous_bound)
                    and abs(lower_bound - previous_bound) <= stall_eps
                )
                energy_stalled = (
                    np.isfinite(previous_energy)
                    and abs(best_energy - previous_energy) <= stall_eps
                )
                stalled = stalled + 1 if (bound_stalled and energy_stalled) else 0
                if stalled >= 3:
                    converged = True
                    break

        assert best_labels is not None
        if self.refine:
            from repro.mrf.icm import ICMSolver

            # Polish several primal starting points and keep the best: the
            # message-passing extraction, the unary argmin, and a
            # degree-ordered sequential greedy (which dominates greedy
            # colouring baselines by construction).  On instances where the
            # LP relaxation is uninformative the extraction basin can be
            # mediocre; the extra inits cost a few cheap ICM sweeps.
            candidates = [
                best_labels,
                [int(np.argmin(mrf.unary(i))) for i in range(n)],
                _greedy_labels(mrf),
            ]
            for candidate in candidates:
                polished = ICMSolver(initial=candidate).solve(mrf)
                if polished.energy < best_energy:
                    best_labels = polished.labels
                    best_energy = polished.energy
            if self.compute_bound and best_energy - lower_bound <= self.tolerance:
                converged = True
        return SolverResult(
            labels=best_labels,
            energy=best_energy,
            lower_bound=lower_bound,
            iterations=iterations,
            converged=converged,
            solver=self.name,
            energy_trace=energy_trace,
            bound_trace=bound_trace,
        )

    # ------------------------------------------------------------- internals

    @staticmethod
    def _build_links(mrf: PairwiseMRF) -> List[_NodeLinks]:
        """Split each node's adjacency into forward/backward neighbours.

        The processing order is node-index order.  ``cost_rows_self`` is the
        edge cost matrix oriented so its *rows* index this node's labels
        (a transposed view when the node is the edge's second endpoint).
        """
        links: List[_NodeLinks] = []
        for i in range(mrf.node_count):
            forward: List[Tuple[int, int, int, np.ndarray]] = []
            backward: List[Tuple[int, int, int, np.ndarray]] = []
            for j, edge_id in mrf.neighbors(i):
                first, _second = mrf.edge(edge_id)
                cost = mrf.edge_cost(edge_id)
                if first == i:
                    oriented = cost
                    out_index, in_index = 2 * edge_id, 2 * edge_id + 1
                else:
                    oriented = cost.T
                    out_index, in_index = 2 * edge_id + 1, 2 * edge_id
                entry = (j, out_index, in_index, oriented)
                if j > i:
                    forward.append(entry)
                else:
                    backward.append(entry)
            chains = max(len(forward), len(backward))
            gamma = 1.0 / chains if chains else 1.0
            links.append(_NodeLinks(forward=forward, backward=backward, gamma=gamma))
        return links

    @staticmethod
    def _init_messages(mrf: PairwiseMRF) -> List[np.ndarray]:
        """Zero messages; slot 2e is first→second of edge e, 2e+1 reverse."""
        messages: List[np.ndarray] = []
        for edge_id in range(mrf.edge_count):
            i, j = mrf.edge(edge_id)
            messages.append(np.zeros(mrf.label_count(j)))
            messages.append(np.zeros(mrf.label_count(i)))
        return messages

    def _forward_sweep(
        self,
        mrf: PairwiseMRF,
        links: List[_NodeLinks],
        messages: List[np.ndarray],
        beliefs: List[np.ndarray],
    ) -> List[int]:
        """One forward pass; also extracts a labelling by sequential
        conditioning on already-labelled (earlier) neighbours."""
        labels = [0] * mrf.node_count
        for i in range(mrf.node_count):
            node = links[i]
            belief = beliefs[i]

            # --- label extraction: θ_i + Σ_{j<i} θ_ij(x_j, ·) + Σ_{j>i} M_{j→i}
            conditioned = belief.copy()
            for j, _out, in_index, oriented in node.backward:
                conditioned -= messages[in_index]
                conditioned += oriented[:, labels[j]]
            labels[i] = int(np.argmin(conditioned))

            # --- message updates to later neighbours
            if node.forward:
                weighted = node.gamma * belief
                for j, out_index, in_index, oriented in node.forward:
                    base = weighted - messages[in_index]
                    new_message = (base[:, None] + oriented).min(axis=0)
                    new_message -= new_message.min()
                    beliefs[j] += new_message - messages[out_index]
                    messages[out_index] = new_message
        return labels

    def _backward_sweep(
        self,
        mrf: PairwiseMRF,
        links: List[_NodeLinks],
        messages: List[np.ndarray],
        beliefs: List[np.ndarray],
    ) -> None:
        """One backward pass (messages to earlier neighbours)."""
        for i in range(mrf.node_count - 1, -1, -1):
            node = links[i]
            if not node.backward:
                continue
            weighted = node.gamma * beliefs[i]
            for j, out_index, in_index, oriented in node.backward:
                base = weighted - messages[in_index]
                new_message = (base[:, None] + oriented).min(axis=0)
                new_message -= new_message.min()
                beliefs[j] += new_message - messages[out_index]
                messages[out_index] = new_message

    @staticmethod
    def _reparametrised_bound(
        mrf: PairwiseMRF,
        messages: List[np.ndarray],
        beliefs: List[np.ndarray],
    ) -> float:
        """Dual bound from the current reparametrisation.

        With θ'_i = θ_i + Σ_j M_{j→i} (== beliefs) and
        θ'_ij = θ_ij − M_{j→i}(x_i) − M_{i→j}(x_j), the reparametrisation
        preserves E exactly, so ``Σ_i min θ'_i + Σ_ij min θ'_ij ≤ min E``.
        """
        bound = sum(float(b.min()) for b in beliefs)
        for edge_id in range(mrf.edge_count):
            cost = mrf.edge_cost(edge_id)
            to_second = messages[2 * edge_id]      # M_{i→j}, indexed by x_j
            to_first = messages[2 * edge_id + 1]   # M_{j→i}, indexed by x_i
            reduced = cost - to_first[:, None] - to_second[None, :]
            bound += float(reduced.min())
        return bound


def _is_forest(mrf: PairwiseMRF) -> bool:
    """True when the MRF graph contains no cycle (per-component check)."""
    components = mrf.connected_components()
    node_component = {}
    for index, component in enumerate(components):
        for node in component:
            node_component[node] = index
    edge_counts = [0] * len(components)
    for edge_id in range(mrf.edge_count):
        i, _ = mrf.edge(edge_id)
        edge_counts[node_component[i]] += 1
    return all(
        edge_counts[index] == len(component) - 1
        for index, component in enumerate(components)
    )


def _solve_forest(mrf: PairwiseMRF) -> List[int]:
    """Exact min-sum dynamic programming on a forest.

    Each component is rooted at its smallest node; messages flow leaves →
    root carrying min-marginals, then an argmin backtrack assigns labels.
    """
    labels = [-1] * mrf.node_count
    visited = [False] * mrf.node_count
    for root in range(mrf.node_count):
        if visited[root]:
            continue
        # Build a DFS order of the component rooted at `root`.
        order: List[Tuple[int, int]] = []  # (node, parent)
        stack = [(root, -1)]
        visited[root] = True
        while stack:
            node, parent = stack.pop()
            order.append((node, parent))
            for neighbor, _ in mrf.neighbors(node):
                if not visited[neighbor]:
                    visited[neighbor] = True
                    stack.append((neighbor, node))

        # Upward sweep (children before parents = reversed DFS order).
        upward: dict = {}   # node -> message vector added to its parent
        choice: dict = {}   # node -> argmin table over parent labels
        accumulated = {node: mrf.unary(node).copy() for node, _ in order}
        for node, parent in reversed(order):
            if parent < 0:
                continue
            edge_id = mrf.edge_id(parent, node)
            first, _second = mrf.edge(edge_id)
            cost = mrf.edge_cost(edge_id)
            oriented = cost if first == parent else cost.T  # rows = parent
            totals = oriented + accumulated[node][None, :]
            choice[node] = np.argmin(totals, axis=1)
            upward[node] = totals.min(axis=1)
            accumulated[parent] += upward[node]

        # Downward argmin backtrack.
        labels[root] = int(np.argmin(accumulated[root]))
        for node, parent in order:
            if parent >= 0:
                labels[node] = int(choice[node][labels[parent]])
    return labels


def _greedy_labels(mrf: PairwiseMRF) -> List[int]:
    """Degree-descending sequential greedy labelling.

    Nodes are labelled from most- to least-connected; each takes the label
    minimising its unary plus the pairwise cost to already-labelled
    neighbours — the weighted-colouring heuristic of O'Donnell & Sethu,
    expressed at the MRF level.
    """
    n = mrf.node_count
    order = sorted(range(n), key=lambda i: (-len(mrf.neighbors(i)), i))
    labels = [0] * n
    assigned = [False] * n
    for node in order:
        vector = mrf.unary(node).copy()
        for neighbor, edge_id in mrf.neighbors(node):
            if not assigned[neighbor]:
                continue
            first, _second = mrf.edge(edge_id)
            cost = mrf.edge_cost(edge_id)
            oriented = cost if first == node else cost.T
            vector = vector + oriented[:, labels[neighbor]]
        labels[node] = int(np.argmin(vector))
        assigned[node] = True
    return labels
