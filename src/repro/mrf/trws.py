"""Sequential tree-reweighted message passing (TRW-S), vectorized.

This is the optimiser the paper uses for MAP inference on its diversification
MRF (Section V-C), following Kolmogorov's sequential TRW scheme:

* nodes are processed in a fixed order; each full iteration is a forward
  sweep (messages to later neighbours) and a backward sweep (messages to
  earlier neighbours),
* node ``i`` averages its reparametrised unary with weight
  ``γ_i = 1 / max(|earlier neighbours|, |later neighbours|)``, the
  monotonic-chain decomposition weight,
* a labelling is extracted during every forward sweep with Kolmogorov's
  sequential-conditioning rule, and the best labelling seen is returned,
* a valid dual **lower bound** is computed from the current
  reparametrisation after every backward sweep:
  ``Σ_i min θ'_i + Σ_ij min θ'_ij`` where θ' is the message-reparametrised
  energy (which preserves E exactly, so the bound is always ≤ the optimum).

The solver certifies global optimality whenever ``energy == lower_bound``
(common on the tree-like and weakly-coupled instances of the case study,
matching the paper's "guaranteed to give an optimal MAP solution in most
cases").

Implementation: the sweeps run on the CSR-style array plan of
:class:`~repro.mrf.vectorized.MRFArrays`.  Sequential node order is
preserved through the plan's wavefront levels — nodes whose lower-numbered
dependencies are all satisfied form one level and are updated in a single
NumPy block operation, which computes the updates of the node-by-node
schedule (nodes in a level are never adjacent; belief sums accumulate in a
different order, so agreement is to floating-point round-off, not
bit-for-bit).  The per-node loop implementation this replaces is kept as
:class:`~repro.mrf.reference.ReferenceTRWSSolver` (``"trws-ref"``); the two
return the same energies and bounds, the vectorized one an order of
magnitude faster (see ``benchmarks/bench_vectorized_speedup.py``).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.mrf.backends import KernelBackend, resolve_backend
from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import SolverResult, SolveStats
from repro.mrf.vectorized import MRFArrays, SolverScratch

__all__ = ["TRWSSolver"]


class TRWSSolver:
    """TRW-S MAP solver for :class:`~repro.mrf.graph.PairwiseMRF`.

    Args:
        max_iterations: forward+backward sweep budget.
        tolerance: convergence threshold on the lower-bound improvement and
            on the primal-dual gap.
        compute_bound: disable to skip the per-iteration dual bound (saves
            one O(E·L²) pass per iteration on large scalability runs).
        refine: polish the best extracted labelling with ICM coordinate
            descent before returning.  On flat-unary instances the message
            fixed point can be fully symmetric (the LP relaxation is
            fractional), where one extraction pass leaves easy single-node
            improvements on the table; the standard remedy is an ICM
            post-pass (cf. OpenGM's TRWS+ICM pipeline).
        backend: kernel backend running the sweep primitives — a
            :class:`~repro.mrf.backends.KernelBackend`, a registry name
            (``"numpy"`` / ``"native"``), ``"auto"`` or ``None`` (consult
            ``REPRO_BACKEND``, then auto-detect).  Backends are
            bit-for-bit identical, so this only changes speed; see
            ``docs/kernels.md``.
        tie_break_noise: scale of the random unary perturbation used to
            break label-symmetry.  The diversification problem has flat
            unaries (``Pr_const``) and cost matrices whose columns all
            contain zeros, making the all-zero message state a degenerate
            fixed point; an ε-perturbation far below any real cost
            difference restores informative messages.  Energies and
            labellings are always evaluated against the *original* costs;
            the dual bound is corrected by the total perturbation so it
            remains a valid bound for the original problem.
        seed: seeds the tie-breaking perturbation (deterministic default).
    """

    name = "trws"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-9,
        compute_bound: bool = True,
        refine: bool = True,
        backend: Union[KernelBackend, str, None] = None,
        tie_break_noise: float = 1e-4,
        seed: Optional[int] = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tie_break_noise < 0:
            raise ValueError("tie_break_noise must be non-negative")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.compute_bound = compute_bound
        self.refine = refine
        self.backend = backend
        self.tie_break_noise = tie_break_noise
        self.seed = seed if seed is not None else 0

    # ----------------------------------------------------------------- API

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        """Run TRW-S and return the best labelling found plus the dual bound.

        Forests are dispatched to an exact min-sum dynamic program (TRW-S is
        exact on trees; the DP realises that guarantee directly and returns
        a tight bound).  Loopy graphs run the iterative message passing.
        """
        n = mrf.node_count
        if n == 0:
            return SolverResult(
                labels=[], energy=0.0, lower_bound=0.0, iterations=0,
                converged=True, solver=self.name,
            )
        if _is_forest(mrf):
            labels = _solve_forest(mrf)
            energy = mrf.energy(labels)
            return SolverResult(
                labels=labels, energy=energy, lower_bound=energy,
                iterations=1, converged=True, solver=self.name,
                energy_trace=[energy], bound_trace=[energy],
            )

        plan = MRFArrays(mrf)
        extra_inits = ()
        if self.refine:  # the greedy labelling only feeds the refine stage
            extra_inits = (plan.greedy_labels(),)
        return self.solve_arrays(plan, extra_inits=extra_inits)

    def solve_arrays(
        self,
        plan: MRFArrays,
        messages: Optional[np.ndarray] = None,
        extra_inits: Sequence[np.ndarray] = (),
        default_inits: bool = True,
        scratch: Optional[SolverScratch] = None,
        backend: Union[KernelBackend, str, None] = None,
    ) -> SolverResult:
        """Run TRW-S on a prebuilt array plan, optionally warm-started.

        Args:
            plan: the array plan (built once, reusable across solves).
            messages: a caller-owned ``(2·edges, lmax)`` directed message
                array to start from — the warm-start hook of the streaming
                engine.  Zeros are the cold start; the array is updated **in
                place**, so after the call it holds the new fixed-point
                state for the next warm start.  ``None`` allocates a fresh
                cold-start array.
            extra_inits: additional primal labellings handed to the ICM
                refine stage (e.g. the previous solution of an incremental
                re-solve, or a greedy construction).
            default_inits: include the unary-argmin labelling among the
                refine candidates (the cold default).  Warm re-solves with
                a near-optimal ``extra_inits`` turn it off — the constant
                init never beats the previous optimum there and costs an
                ICM run per solve.
            scratch: a reusable :class:`SolverScratch` holding the sweep
                work buffers.  Steady-state callers (streaming re-solves,
                per-shard workers, grid sweeps) pass one in so repeated
                solves allocate nothing; ``None`` keeps a private scratch
                for this call (still allocation-free *across iterations*).
            backend: kernel backend for this solve; overrides the
                constructor's choice (same accepted values).  All
                backends are bit-for-bit identical.

        Beliefs are reconstructed from the messages (``θ_i + Σ M_{j→i}``
        plus the tie-breaking perturbation), preserving the TRW-S belief
        invariant, and any message state yields a valid dual bound — so a
        warm start can only save iterations, never corrupt the result.

        While tracing is enabled (:func:`repro.obs.enabled`) the solve
        records a ``trws.solve`` span with nested per-iteration events and
        attaches a :class:`~repro.mrf.solvers.SolveStats` to the result;
        disabled, this wrapper costs one branch per solve.
        """
        kernels = resolve_backend(
            backend if backend is not None else self.backend
        )
        if not obs.enabled():
            return self._solve_arrays(
                plan, messages, extra_inits, default_inits, scratch, kernels,
                None,
            )
        stats = SolveStats()
        start = time.perf_counter()
        with obs.span(
            "trws.solve", cat="solve",
            nodes=plan.node_count, edges=plan.edge_count,
            backend=kernels.describe(),
        ) as solve_span:
            result = self._solve_arrays(
                plan, messages, extra_inits, default_inits, scratch, kernels,
                stats,
            )
            stats.total_seconds = time.perf_counter() - start
            result.stats = stats
            solve_span.add(
                iterations=result.iterations,
                energy=result.energy,
                bound=result.lower_bound,
                converged=result.converged,
            )
        return result

    def _solve_arrays(
        self,
        plan: MRFArrays,
        messages: Optional[np.ndarray],
        extra_inits: Sequence[np.ndarray],
        default_inits: bool,
        scratch: Optional[SolverScratch],
        kernels: KernelBackend,
        stats: Optional[SolveStats],
    ) -> SolverResult:
        """The sweep loop behind :meth:`solve_arrays`; ``stats`` collects
        per-phase telemetry when tracing is on (``None`` disables it)."""
        collect = stats is not None
        setup_start = time.perf_counter() if collect else 0.0
        n = plan.node_count
        if n == 0:
            return SolverResult(
                labels=[], energy=0.0, lower_bound=0.0, iterations=0,
                converged=True, solver=self.name, stats=stats,
            )
        scratch = scratch if scratch is not None else SolverScratch()
        if messages is None:
            messages = scratch.zeros(
                "trws_messages", (2 * plan.edge_count, plan.lmax)
            )
        beliefs = scratch.array("trws_beliefs", (n, plan.lmax))
        np.copyto(beliefs, plan.unary_inf)
        if plan.edge_count:
            np.add.at(beliefs, plan.slot_receiver, messages)
        bound_slack = 0.0
        if self.tie_break_noise > 0:
            # One batched draw yields the same value stream as the
            # reference solver's per-node draws (uniform doubles consume
            # one 64-bit word each, in order), so both perturb identically
            # and their traces stay comparable.
            rng = np.random.default_rng(self.seed)
            total = int(plan.label_counts.sum())
            flat = rng.uniform(0.0, self.tie_break_noise, total)
            beliefs[plan.mask] += flat
            starts = np.concatenate(
                ([0], np.cumsum(plan.label_counts[:-1]))
            )
            bound_slack = float(np.maximum.reduceat(flat, starts).sum())

        best_labels: Optional[np.ndarray] = None
        best_energy = float("inf")
        lower_bound = float("-inf")
        energy_trace: List[float] = []
        bound_trace: List[float] = []
        converged = False
        iterations = 0
        trace = obs.current_trace() if collect else None
        if collect:
            stats.setup_seconds = time.perf_counter() - setup_start
            stats.fwd_level_seconds = [0.0] * len(plan.fwd_levels)
            stats.bwd_level_seconds = [0.0] * len(plan.bwd_levels)

        stalled = 0
        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            previous_energy = best_energy
            if collect:
                iter_wall_ns = time.time_ns()
                iter_start = mark = time.perf_counter()
            labels = self._forward_sweep(
                plan, messages, beliefs, scratch, kernels,
                stats.fwd_level_seconds if collect else None,
            )
            if collect:
                now = time.perf_counter()
                stats.forward_seconds += now - mark
                mark = now
            energy = plan.energy(labels)
            if energy < best_energy:
                best_energy = energy
                best_labels = labels
            if collect:
                now = time.perf_counter()
                stats.energy_seconds += now - mark
                mark = now
            self._backward_sweep(
                plan, messages, beliefs, scratch, kernels,
                stats.bwd_level_seconds if collect else None,
            )
            if collect:
                now = time.perf_counter()
                stats.backward_seconds += now - mark
                mark = now

            previous_bound = lower_bound
            if self.compute_bound:
                # The bound holds for the perturbed problem; subtracting the
                # total perturbation makes it valid for the original one.
                lower_bound = max(
                    lower_bound,
                    plan.dual_bound(
                        messages, beliefs, scratch=scratch, backend=kernels
                    )
                    - bound_slack,
                )
            energy_trace.append(best_energy)
            bound_trace.append(lower_bound)
            if collect:
                now = time.perf_counter()
                stats.bound_seconds += now - mark
                stats.iteration_seconds.append(now - iter_start)
                trace.record(
                    "trws.iteration", "solve",
                    ts=iter_wall_ns / 1000.0,
                    dur=(now - iter_start) * 1e6,
                    args={
                        "i": iteration,
                        "energy": best_energy,
                        "bound": lower_bound,
                    },
                )

            if self.compute_bound and np.isfinite(lower_bound):
                if best_energy - lower_bound <= self.tolerance:
                    converged = True
                    break
                # Converged when neither the dual bound nor the primal has
                # moved for a few consecutive iterations (the bound alone can
                # plateau while the labelling still improves).  The stall
                # threshold absorbs the tie-breaking perturbation's jitter.
                stall_eps = max(self.tolerance, self.tie_break_noise)
                bound_stalled = (
                    np.isfinite(previous_bound)
                    and abs(lower_bound - previous_bound) <= stall_eps
                )
                energy_stalled = (
                    np.isfinite(previous_energy)
                    and abs(best_energy - previous_energy) <= stall_eps
                )
                stalled = stalled + 1 if (bound_stalled and energy_stalled) else 0
                if stalled >= 3:
                    converged = True
                    break

        assert best_labels is not None
        if collect:
            refine_start = time.perf_counter()
        if self.refine:
            # Polish several primal starting points and keep the best: the
            # message-passing extraction, the unary argmin, and the caller's
            # extra inits — solve() passes a degree-ordered sequential
            # greedy (which dominates greedy colouring baselines by
            # construction), warm-started re-solves pass the previous
            # solution.  On instances where the LP relaxation is
            # uninformative the extraction basin can be mediocre; the extra
            # inits cost a few cheap ICM sweeps.
            candidates = [best_labels]
            if default_inits:
                candidates.append(np.argmin(plan.unary_inf, axis=1))
            candidates.extend(extra_inits)
            # Dedupe: a warm re-solve's extraction frequently equals the
            # previous solution it was seeded with; one ICM run suffices.
            distinct: List[np.ndarray] = []
            for candidate in candidates:
                if not any(np.array_equal(candidate, kept) for kept in distinct):
                    distinct.append(candidate)
            for candidate in distinct:
                polished = plan.icm(candidate, scratch=scratch, backend=kernels)
                polished_energy = plan.energy(polished)
                if polished_energy < best_energy:
                    best_labels = polished
                    best_energy = polished_energy
            if self.compute_bound and best_energy - lower_bound <= self.tolerance:
                converged = True
        if collect:
            stats.refine_seconds = time.perf_counter() - refine_start
        return SolverResult(
            labels=[int(x) for x in best_labels],
            energy=best_energy,
            lower_bound=lower_bound,
            iterations=iterations,
            converged=converged,
            solver=self.name,
            energy_trace=energy_trace,
            bound_trace=bound_trace,
            stats=stats,
        )

    # ------------------------------------------------------------- internals

    def _forward_sweep(
        self,
        plan: MRFArrays,
        messages: np.ndarray,
        beliefs: np.ndarray,
        scratch: SolverScratch,
        kernels: KernelBackend,
        level_seconds: Optional[List[float]] = None,
    ) -> np.ndarray:
        """One forward pass over the wavefront levels.

        Per level: extract labels by sequential conditioning on earlier
        neighbours (θ_i + Σ_{j<i} θ_ij(x_j, ·) + Σ_{j>i} M_{j→i}), then send
        messages to later neighbours.  Both steps run on the resolved
        kernel backend (:mod:`repro.mrf.backends`); every temporary lives
        in ``scratch``, so sweeps allocate nothing once the buffers are
        warm.  ``level_seconds`` (tracing only) accumulates per-level wall
        time in place.
        """
        labels = np.zeros(plan.node_count, dtype=np.int64)
        if level_seconds is None:
            for level in plan.fwd_levels:
                kernels.condition_level(
                    plan, level, beliefs, messages, labels, scratch
                )
                kernels.send_block(plan, level, messages, beliefs, scratch)
        else:
            for index, level in enumerate(plan.fwd_levels):
                start = time.perf_counter()
                kernels.condition_level(
                    plan, level, beliefs, messages, labels, scratch
                )
                kernels.send_block(plan, level, messages, beliefs, scratch)
                level_seconds[index] += time.perf_counter() - start
        return labels

    def _backward_sweep(
        self,
        plan: MRFArrays,
        messages: np.ndarray,
        beliefs: np.ndarray,
        scratch: SolverScratch,
        kernels: KernelBackend,
        level_seconds: Optional[List[float]] = None,
    ) -> None:
        """One backward pass (messages to earlier neighbours);
        ``level_seconds`` (tracing only) accumulates per-level time."""
        if level_seconds is None:
            for block in plan.bwd_levels:
                kernels.send_block(plan, block, messages, beliefs, scratch)
        else:
            for index, block in enumerate(plan.bwd_levels):
                start = time.perf_counter()
                kernels.send_block(plan, block, messages, beliefs, scratch)
                level_seconds[index] += time.perf_counter() - start


def _is_forest(mrf: PairwiseMRF) -> bool:
    """True when the MRF graph contains no cycle (per-component check)."""
    components = mrf.connected_components()
    node_component = {}
    for index, component in enumerate(components):
        for node in component:
            node_component[node] = index
    edge_counts = [0] * len(components)
    for edge_id in range(mrf.edge_count):
        i, _ = mrf.edge(edge_id)
        edge_counts[node_component[i]] += 1
    return all(
        edge_counts[index] == len(component) - 1
        for index, component in enumerate(components)
    )


def _solve_forest(mrf: PairwiseMRF) -> List[int]:
    """Exact min-sum dynamic programming on a forest.

    Each component is rooted at its smallest node; messages flow leaves →
    root carrying min-marginals, then an argmin backtrack assigns labels.
    """
    labels = [-1] * mrf.node_count
    visited = [False] * mrf.node_count
    for root in range(mrf.node_count):
        if visited[root]:
            continue
        # Build a DFS order of the component rooted at `root`.
        order: List[Tuple[int, int]] = []  # (node, parent)
        stack = [(root, -1)]
        visited[root] = True
        while stack:
            node, parent = stack.pop()
            order.append((node, parent))
            for neighbor, _ in mrf.neighbors(node):
                if not visited[neighbor]:
                    visited[neighbor] = True
                    stack.append((neighbor, node))

        # Upward sweep (children before parents = reversed DFS order).
        upward: dict = {}   # node -> message vector added to its parent
        choice: dict = {}   # node -> argmin table over parent labels
        accumulated = {node: mrf.unary(node).copy() for node, _ in order}
        for node, parent in reversed(order):
            if parent < 0:
                continue
            edge_id = mrf.edge_id(parent, node)
            first, _second = mrf.edge(edge_id)
            cost = mrf.edge_cost(edge_id)
            oriented = cost if first == parent else cost.T  # rows = parent
            totals = oriented + accumulated[node][None, :]
            choice[node] = np.argmin(totals, axis=1)
            upward[node] = totals.min(axis=1)
            accumulated[parent] += upward[node]

        # Downward argmin backtrack.
        labels[root] = int(np.argmin(accumulated[root]))
        for node, parent in order:
            if parent >= 0:
                labels[node] = int(choice[node][labels[parent]])
    return labels


# The degree-descending greedy init lives on the plan now
# (:meth:`MRFArrays.greedy_labels`) so the monolithic solve, the sharded
# solver and the streaming engine all share one implementation.
