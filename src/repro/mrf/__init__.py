"""Discrete pairwise Markov Random Field engine.

The paper (Section V) casts optimal diversification as MAP inference on a
discrete pairwise MRF and solves it with sequential tree-reweighted message
passing (TRW-S).  This subpackage provides:

``repro.mrf.graph``
    :class:`PairwiseMRF` — nodes with per-node label spaces and unary costs,
    edges with pairwise cost matrices.
``repro.mrf.trws``
    The TRW-S solver (Kolmogorov), with a monotone dual lower bound.
``repro.mrf.bp``
    Loopy min-sum belief propagation, the paper's stated alternative.
``repro.mrf.icm``
    Iterated conditional modes — a cheap local-search baseline/refiner.
``repro.mrf.exact``
    Brute-force enumeration for ground truth on small instances.
``repro.mrf.partition``
    Component/zone partitioning of plans — the shard layer.
``repro.mrf.sharded``
    :class:`ShardedSolver` — concurrent per-shard solving over partitions.
``repro.mrf.dual``
    :class:`DualDecompositionSolver` — Lagrangian dual decomposition over
    balanced edge cuts of a connected plan (``trws-dual``).
``repro.mrf.solvers``
    Common :class:`SolverResult` type and a name → solver registry.
``repro.mrf.backends``
    Pluggable kernel backends for the vectorized solvers (NumPy
    reference and the compiled ``native`` tier), bit-for-bit identical.
"""

from repro.mrf.backends import (
    available_backends,
    get_backend,
    resolve_backend,
    set_default_backend,
)
from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import (
    SolverResult,
    active_kernel_backend,
    available_solvers,
    get_solver,
    solve,
)
from repro.mrf.trws import TRWSSolver
from repro.mrf.bp import LoopyBPSolver
from repro.mrf.icm import ICMSolver
from repro.mrf.exact import ExactSolver
from repro.mrf.anneal import SimulatedAnnealingSolver
from repro.mrf.batched import BatchedTRWSSolver, ReplicatedProblem
from repro.mrf.partition import (
    PlanPartition,
    split_components,
    split_parts,
    split_replicated,
    zone_groups,
)
from repro.mrf.dual import DualDecompositionSolver, DualSolveResult
from repro.mrf.sharded import ShardedSolver, solve_plan
from repro.mrf.vectorized import MRFArrays, SolverScratch

__all__ = [
    "MRFArrays",
    "PairwiseMRF",
    "SolverScratch",
    "PlanPartition",
    "SolverResult",
    "TRWSSolver",
    "LoopyBPSolver",
    "ICMSolver",
    "ExactSolver",
    "SimulatedAnnealingSolver",
    "BatchedTRWSSolver",
    "DualDecompositionSolver",
    "DualSolveResult",
    "ReplicatedProblem",
    "ShardedSolver",
    "active_kernel_backend",
    "available_backends",
    "available_solvers",
    "get_backend",
    "get_solver",
    "resolve_backend",
    "set_default_backend",
    "solve",
    "solve_plan",
    "split_components",
    "split_parts",
    "split_replicated",
    "zone_groups",
]
