"""Common solver protocol and registry.

Every solver consumes a :class:`~repro.mrf.graph.PairwiseMRF` and produces a
:class:`SolverResult`.  The registry lets callers pick a solver by name
(``"trws"``, ``"bp"``, ``"icm"``, ``"exact"``), which is how
:func:`repro.core.diversify.diversify` exposes its ``solver=`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol

import numpy as np

from repro.mrf.graph import PairwiseMRF

__all__ = [
    "SolveStats",
    "SolverResult",
    "Solver",
    "register_solver",
    "get_solver",
    "available_solvers",
    "active_kernel_backend",
    "solve",
]


@dataclass
class SolveStats:
    """Per-phase timing telemetry for one solve, collected while tracing.

    Attached to :attr:`SolverResult.stats` when :func:`repro.obs.enabled`
    was true during the solve; ``None`` otherwise (the disabled path
    collects nothing).  All times are seconds on the monotonic clock.

    Attributes:
        total_seconds: wall time of the whole ``solve_arrays`` call.
        setup_seconds: scratch/message/belief preparation before sweeping.
        forward_seconds: total time in forward sweeps (TRW-S) or message
            updates (BP).
        backward_seconds: total time in backward sweeps (TRW-S only).
        bound_seconds: dual-bound evaluation time (TRW-S only).
        energy_seconds: primal energy/decode evaluation time.
        refine_seconds: ICM refinement / polish time after the main loop.
        iteration_seconds: per-iteration wall times, index-aligned with
            the result's ``energy_trace``.
        fwd_level_seconds: per-wavefront-level time in the forward sweep,
            accumulated across iterations (one entry per level).
        bwd_level_seconds: likewise for the backward sweep.
    """

    total_seconds: float = 0.0
    setup_seconds: float = 0.0
    forward_seconds: float = 0.0
    backward_seconds: float = 0.0
    bound_seconds: float = 0.0
    energy_seconds: float = 0.0
    refine_seconds: float = 0.0
    iteration_seconds: List[float] = field(default_factory=list)
    fwd_level_seconds: List[float] = field(default_factory=list)
    bwd_level_seconds: List[float] = field(default_factory=list)

    def phase_seconds(self) -> Dict[str, float]:
        """The named phases as a dict (BENCH per-phase attribution)."""
        return {
            "setup": self.setup_seconds,
            "forward": self.forward_seconds,
            "backward": self.backward_seconds,
            "bound": self.bound_seconds,
            "energy": self.energy_seconds,
            "refine": self.refine_seconds,
        }


@dataclass
class SolverResult:
    """Outcome of MAP inference on a pairwise MRF.

    Attributes:
        labels: one label index per node (the MAP estimate found).
        energy: E(labels) under the MRF being solved.
        lower_bound: a valid lower bound on the optimal energy when the
            solver provides one (TRW-S dual); ``-inf`` otherwise.
        iterations: sweeps/passes performed.
        converged: True when the solver met its convergence criterion
            before exhausting its iteration budget.
        solver: name of the producing solver.
        energy_trace: best energy after each iteration (diagnostics).
        bound_trace: lower bound after each iteration (diagnostics).
        stats: per-phase :class:`SolveStats` when the solve ran under an
            active trace (see :mod:`repro.obs`); ``None`` otherwise.
    """

    labels: List[int]
    energy: float
    lower_bound: float = float("-inf")
    iterations: int = 0
    converged: bool = False
    solver: str = ""
    energy_trace: List[float] = field(default_factory=list)
    bound_trace: List[float] = field(default_factory=list)
    stats: Optional[SolveStats] = None

    @property
    def optimality_gap(self) -> float:
        """energy − lower_bound (0 certifies a global optimum)."""
        return self.energy - self.lower_bound

    def is_certified_optimal(self, tolerance: float = 1e-9) -> bool:
        """True when the dual gap certifies global optimality."""
        return np.isfinite(self.lower_bound) and self.optimality_gap <= tolerance


class Solver(Protocol):
    """Anything with a ``solve(mrf) -> SolverResult`` method."""

    def solve(self, mrf: PairwiseMRF) -> SolverResult:  # pragma: no cover
        """Run MAP inference on ``mrf``."""
        ...


_REGISTRY: Dict[str, Callable[..., Solver]] = {}


def register_solver(name: str, factory: Callable[..., Solver]) -> None:
    """Register a solver factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def get_solver(name: str, **options) -> Solver:
    """Instantiate a registered solver by name.

    >>> solver = get_solver("trws", max_iterations=10)
    >>> type(solver).__name__
    'TRWSSolver'
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from None
    return factory(**options)


def available_solvers() -> List[str]:
    """Sorted names of registered solvers.

    The registry is populated when :mod:`repro.mrf` imports: the
    vectorized pair (``trws``/``bp``), their per-node reference twins
    (``trws-ref``/``bp-ref``, kept for parity tests), the sharded
    wrappers (``trws-sharded``/``bp-sharded``), the dual-decomposition
    wrapper (``trws-dual``), and the refine/baseline solvers (``icm``,
    ``exact``, ``anneal``).

    >>> import repro.mrf  # registers the built-in solvers
    >>> [name for name in available_solvers() if name.startswith("trws")]
    ['trws', 'trws-dual', 'trws-ref', 'trws-sharded']
    """
    return sorted(_REGISTRY)


def active_kernel_backend() -> str:
    """Identity of the kernel backend the vectorized solvers would use now.

    Resolves the same way a solve does (``backend=`` argument absent):
    process default, then ``REPRO_BACKEND``, then auto-detection — e.g.
    ``"numpy"`` or ``"native (cc)"``.  Surfaced by ``repro --help`` next
    to :func:`available_solvers` so operators can see which kernel tier a
    deployment actually runs; see :mod:`repro.mrf.backends`.
    """
    from repro.mrf.backends import active_backend_name

    return active_backend_name()


def solve(mrf: PairwiseMRF, solver: str = "trws", **options) -> SolverResult:
    """One-shot convenience: instantiate ``solver`` and run it on ``mrf``."""
    return get_solver(solver, **options).solve(mrf)


def _register_builtins() -> None:
    """Populate the registry with the built-in solvers (import-time)."""
    import functools

    from repro.mrf.trws import TRWSSolver
    from repro.mrf.bp import LoopyBPSolver
    from repro.mrf.icm import ICMSolver
    from repro.mrf.exact import ExactSolver
    from repro.mrf.anneal import SimulatedAnnealingSolver
    from repro.mrf.reference import ReferenceBPSolver, ReferenceTRWSSolver
    from repro.mrf.sharded import ShardedSolver
    from repro.mrf.dual import DualDecompositionSolver

    register_solver("trws", TRWSSolver)
    register_solver("bp", LoopyBPSolver)
    register_solver("icm", ICMSolver)
    register_solver("exact", ExactSolver)
    register_solver("anneal", SimulatedAnnealingSolver)
    register_solver("trws-ref", ReferenceTRWSSolver)
    register_solver("bp-ref", ReferenceBPSolver)
    register_solver(
        "trws-sharded", functools.partial(ShardedSolver, solver="trws")
    )
    register_solver(
        "bp-sharded", functools.partial(ShardedSolver, solver="bp")
    )
    register_solver("trws-dual", DualDecompositionSolver)


_register_builtins()
