"""Iterated conditional modes (ICM).

A cheap coordinate-descent baseline: repeatedly set each node to the label
minimising its conditional energy given its neighbours, until a full sweep
changes nothing.  ICM converges to a local optimum only; we ship it (a) as a
comparison point showing why message passing is needed and (b) as an
optional refinement pass over another solver's labelling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import SolverResult

__all__ = ["ICMSolver"]


class ICMSolver:
    """Coordinate-descent MAP search.

    Args:
        max_iterations: full-sweep budget.
        initial: starting labelling; defaults to the unary argmin.
        seed: seeds a random starting labelling when ``initial="random"``.
    """

    name = "icm"

    def __init__(
        self,
        max_iterations: int = 100,
        initial: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations
        self.initial = initial
        self.seed = seed

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        """Run ICM from a deterministic start; see :class:`SolverResult`."""
        n = mrf.node_count
        if n == 0:
            return SolverResult(
                labels=[], energy=0.0, iterations=0, converged=True, solver=self.name
            )

        labels = self._initial_labels(mrf)
        oriented = [[] for _ in range(n)]  # per node: (neighbor, cost rows=self)
        for edge_id in range(mrf.edge_count):
            i, j = mrf.edge(edge_id)
            cost = mrf.edge_cost(edge_id)
            oriented[i].append((j, cost))
            oriented[j].append((i, cost.T))

        energy_trace: List[float] = []
        converged = False
        iterations = 0
        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            changed = False
            for node in range(n):
                conditional = mrf.unary(node).copy()
                for neighbor, cost in oriented[node]:
                    conditional += cost[:, labels[neighbor]]
                best = int(np.argmin(conditional))
                if best != labels[node]:
                    labels[node] = best
                    changed = True
            energy_trace.append(mrf.energy(labels))
            if not changed:
                converged = True
                break

        return SolverResult(
            labels=labels,
            energy=mrf.energy(labels),
            iterations=iterations,
            converged=converged,
            solver=self.name,
            energy_trace=energy_trace,
        )

    def _initial_labels(self, mrf: PairwiseMRF) -> List[int]:
        if isinstance(self.initial, str) and self.initial == "random":
            rng = np.random.default_rng(self.seed)
            return [int(rng.integers(mrf.label_count(i))) for i in range(mrf.node_count)]
        if self.initial is not None:
            labels = list(self.initial)
            if len(labels) != mrf.node_count:
                raise ValueError(
                    f"initial labelling has {len(labels)} entries for "
                    f"{mrf.node_count} nodes"
                )
            return [int(x) for x in labels]
        return [int(np.argmin(mrf.unary(i))) for i in range(mrf.node_count)]
