"""Reference (per-node loop) implementations of TRW-S and loopy BP.

These are the original pure-Python solvers the repository shipped before the
message-passing core was vectorized.  They process one edge at a time with
small NumPy operations, which makes the update rule easy to audit against
Kolmogorov's TRW-S paper — and makes them the ground truth the vectorized
:class:`~repro.mrf.trws.TRWSSolver` / :class:`~repro.mrf.bp.LoopyBPSolver`
are tested against: on every instance the vectorized solvers must return the
same energies and dual bounds (see ``tests/test_vectorized.py``).

They stay registered as ``"trws-ref"`` and ``"bp-ref"`` so benchmarks can
measure the speedup and users can cross-check results, but they should not
be used on large workloads — the vectorized solvers compute identical
updates an order of magnitude faster.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import SolverResult
from repro.mrf.trws import _is_forest, _solve_forest

__all__ = ["ReferenceTRWSSolver", "ReferenceBPSolver"]


def _greedy_labels(mrf: PairwiseMRF) -> List[int]:
    """Degree-descending sequential greedy labelling (MRF-level reference).

    Nodes are labelled from most- to least-connected; each takes the label
    minimising its unary plus the pairwise cost to already-labelled
    neighbours — the weighted-colouring heuristic of O'Donnell & Sethu.
    The production solvers use the identical plan-level implementation
    (:meth:`~repro.mrf.vectorized.MRFArrays.greedy_labels`).
    """
    n = mrf.node_count
    order = sorted(range(n), key=lambda i: (-len(mrf.neighbors(i)), i))
    labels = [0] * n
    assigned = [False] * n
    for node in order:
        vector = mrf.unary(node).copy()
        for neighbor, edge_id in mrf.neighbors(node):
            if not assigned[neighbor]:
                continue
            first, _second = mrf.edge(edge_id)
            cost = mrf.edge_cost(edge_id)
            oriented = cost if first == node else cost.T
            vector = vector + oriented[:, labels[neighbor]]
        labels[node] = int(np.argmin(vector))
        assigned[node] = True
    return labels


class ReferenceTRWSSolver:
    """Sequential TRW-S with per-node Python loops (the pre-vectorization
    implementation; see :class:`~repro.mrf.trws.TRWSSolver` for the
    algorithm documentation — both solvers perform the same updates).
    """

    name = "trws-ref"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-9,
        compute_bound: bool = True,
        refine: bool = True,
        tie_break_noise: float = 1e-4,
        seed: Optional[int] = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tie_break_noise < 0:
            raise ValueError("tie_break_noise must be non-negative")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.compute_bound = compute_bound
        self.refine = refine
        self.tie_break_noise = tie_break_noise
        self.seed = seed if seed is not None else 0

    # ----------------------------------------------------------------- API

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        """Run per-node reference TRW-S; see :class:`SolverResult`."""
        n = mrf.node_count
        if n == 0:
            return SolverResult(
                labels=[], energy=0.0, lower_bound=0.0, iterations=0,
                converged=True, solver=self.name,
            )
        if _is_forest(mrf):
            labels = _solve_forest(mrf)
            energy = mrf.energy(labels)
            return SolverResult(
                labels=labels, energy=energy, lower_bound=energy,
                iterations=1, converged=True, solver=self.name,
                energy_trace=[energy], bound_trace=[energy],
            )

        links = self._build_links(mrf)
        messages = self._init_messages(mrf)
        if self.tie_break_noise > 0:
            rng = np.random.default_rng(self.seed)
            noise = [
                rng.uniform(0.0, self.tie_break_noise, mrf.label_count(i))
                for i in range(n)
            ]
            beliefs = [mrf.unary(i) + noise[i] for i in range(n)]
            bound_slack = float(sum(x.max() for x in noise))
        else:
            beliefs = [mrf.unary(i).copy() for i in range(n)]
            bound_slack = 0.0

        best_labels: Optional[List[int]] = None
        best_energy = float("inf")
        lower_bound = float("-inf")
        energy_trace: List[float] = []
        bound_trace: List[float] = []
        converged = False
        iterations = 0

        stalled = 0
        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            previous_energy = best_energy
            labels = self._forward_sweep(mrf, links, messages, beliefs)
            energy = mrf.energy(labels)
            if energy < best_energy:
                best_energy = energy
                best_labels = labels
            self._backward_sweep(mrf, links, messages, beliefs)

            previous_bound = lower_bound
            if self.compute_bound:
                # The bound holds for the perturbed problem; subtracting the
                # total perturbation makes it valid for the original one.
                lower_bound = max(
                    lower_bound,
                    self._reparametrised_bound(mrf, messages, beliefs)
                    - bound_slack,
                )
            energy_trace.append(best_energy)
            bound_trace.append(lower_bound)

            if self.compute_bound and np.isfinite(lower_bound):
                if best_energy - lower_bound <= self.tolerance:
                    converged = True
                    break
                stall_eps = max(self.tolerance, self.tie_break_noise)
                bound_stalled = (
                    np.isfinite(previous_bound)
                    and abs(lower_bound - previous_bound) <= stall_eps
                )
                energy_stalled = (
                    np.isfinite(previous_energy)
                    and abs(best_energy - previous_energy) <= stall_eps
                )
                stalled = stalled + 1 if (bound_stalled and energy_stalled) else 0
                if stalled >= 3:
                    converged = True
                    break

        assert best_labels is not None
        if self.refine:
            from repro.mrf.icm import ICMSolver

            candidates = [
                best_labels,
                [int(np.argmin(mrf.unary(i))) for i in range(n)],
                _greedy_labels(mrf),
            ]
            for candidate in candidates:
                polished = ICMSolver(initial=candidate).solve(mrf)
                if polished.energy < best_energy:
                    best_labels = polished.labels
                    best_energy = polished.energy
            if self.compute_bound and best_energy - lower_bound <= self.tolerance:
                converged = True
        return SolverResult(
            labels=best_labels,
            energy=best_energy,
            lower_bound=lower_bound,
            iterations=iterations,
            converged=converged,
            solver=self.name,
            energy_trace=energy_trace,
            bound_trace=bound_trace,
        )

    # ------------------------------------------------------------- internals

    @staticmethod
    def _build_links(mrf: PairwiseMRF):
        """Per-node adjacency split into forward/backward neighbours.

        Entries are (neighbor, out_message_index, in_message_index,
        cost oriented with rows = this node's labels).
        """
        links = []
        for i in range(mrf.node_count):
            forward: List[Tuple[int, int, int, np.ndarray]] = []
            backward: List[Tuple[int, int, int, np.ndarray]] = []
            for j, edge_id in mrf.neighbors(i):
                first, _second = mrf.edge(edge_id)
                cost = mrf.edge_cost(edge_id)
                if first == i:
                    oriented = cost
                    out_index, in_index = 2 * edge_id, 2 * edge_id + 1
                else:
                    oriented = cost.T
                    out_index, in_index = 2 * edge_id + 1, 2 * edge_id
                entry = (j, out_index, in_index, oriented)
                if j > i:
                    forward.append(entry)
                else:
                    backward.append(entry)
            chains = max(len(forward), len(backward))
            gamma = 1.0 / chains if chains else 1.0
            links.append((forward, backward, gamma))
        return links

    @staticmethod
    def _init_messages(mrf: PairwiseMRF) -> List[np.ndarray]:
        """Zero messages; slot 2e is first→second of edge e, 2e+1 reverse."""
        messages: List[np.ndarray] = []
        for edge_id in range(mrf.edge_count):
            i, j = mrf.edge(edge_id)
            messages.append(np.zeros(mrf.label_count(j)))
            messages.append(np.zeros(mrf.label_count(i)))
        return messages

    def _forward_sweep(self, mrf, links, messages, beliefs) -> List[int]:
        labels = [0] * mrf.node_count
        for i in range(mrf.node_count):
            forward, backward, gamma = links[i]
            belief = beliefs[i]

            conditioned = belief.copy()
            for j, _out, in_index, oriented in backward:
                conditioned -= messages[in_index]
                conditioned += oriented[:, labels[j]]
            labels[i] = int(np.argmin(conditioned))

            if forward:
                weighted = gamma * belief
                for j, out_index, in_index, oriented in forward:
                    base = weighted - messages[in_index]
                    new_message = (base[:, None] + oriented).min(axis=0)
                    new_message -= new_message.min()
                    beliefs[j] += new_message - messages[out_index]
                    messages[out_index] = new_message
        return labels

    def _backward_sweep(self, mrf, links, messages, beliefs) -> None:
        for i in range(mrf.node_count - 1, -1, -1):
            _forward, backward, gamma = links[i]
            if not backward:
                continue
            weighted = gamma * beliefs[i]
            for j, out_index, in_index, oriented in backward:
                base = weighted - messages[in_index]
                new_message = (base[:, None] + oriented).min(axis=0)
                new_message -= new_message.min()
                beliefs[j] += new_message - messages[out_index]
                messages[out_index] = new_message

    @staticmethod
    def _reparametrised_bound(mrf, messages, beliefs) -> float:
        bound = sum(float(b.min()) for b in beliefs)
        for edge_id in range(mrf.edge_count):
            cost = mrf.edge_cost(edge_id)
            to_second = messages[2 * edge_id]      # M_{i→j}, indexed by x_j
            to_first = messages[2 * edge_id + 1]   # M_{j→i}, indexed by x_i
            reduced = cost - to_first[:, None] - to_second[None, :]
            bound += float(reduced.min())
        return bound


class ReferenceBPSolver:
    """Damped synchronous min-sum loopy BP with per-edge Python loops (the
    pre-vectorization implementation of
    :class:`~repro.mrf.bp.LoopyBPSolver`).
    """

    name = "bp-ref"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        damping: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= damping < 1.0:
            raise ValueError("damping must be in [0, 1)")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.damping = damping

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        """Run per-node reference loopy BP; see :class:`SolverResult`."""
        n = mrf.node_count
        if n == 0:
            return SolverResult(
                labels=[], energy=0.0, iterations=0, converged=True, solver=self.name
            )

        # messages[2e] flows first→second of edge e; messages[2e+1] reverse.
        messages: List[np.ndarray] = []
        for edge_id in range(mrf.edge_count):
            i, j = mrf.edge(edge_id)
            messages.append(np.zeros(mrf.label_count(j)))
            messages.append(np.zeros(mrf.label_count(i)))

        # Per-node incoming message slots: (in_index, out_index, oriented cost).
        incoming = [[] for _ in range(n)]
        for edge_id in range(mrf.edge_count):
            i, j = mrf.edge(edge_id)
            cost = mrf.edge_cost(edge_id)
            incoming[j].append((2 * edge_id, 2 * edge_id + 1, cost.T))
            incoming[i].append((2 * edge_id + 1, 2 * edge_id, cost))

        best_labels: Optional[List[int]] = None
        best_energy = float("inf")
        energy_trace: List[float] = []
        converged = False
        iterations = 0

        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            beliefs = [mrf.unary(i).copy() for i in range(n)]
            for node in range(n):
                for in_index, _out, _cost in incoming[node]:
                    beliefs[node] += messages[in_index]

            # Synchronous update of every directed message.
            new_messages = [None] * len(messages)
            max_change = 0.0
            for node in range(n):
                for in_index, out_index, oriented in incoming[node]:
                    base = beliefs[node] - messages[in_index]
                    updated = (base[:, None] + oriented).min(axis=0)
                    updated -= updated.min()
                    if self.damping > 0.0:
                        updated = (
                            self.damping * messages[out_index]
                            + (1.0 - self.damping) * updated
                        )
                    change = float(np.max(np.abs(updated - messages[out_index])))
                    max_change = max(max_change, change)
                    new_messages[out_index] = updated
            for index, updated in enumerate(new_messages):
                if updated is not None:
                    messages[index] = updated

            labels = self._decode(mrf, incoming, messages, beliefs)
            energy = mrf.energy(labels)
            if energy < best_energy:
                best_energy = energy
                best_labels = labels
            energy_trace.append(best_energy)

            if max_change <= self.tolerance:
                converged = True
                break

        assert best_labels is not None
        return SolverResult(
            labels=best_labels,
            energy=best_energy,
            iterations=iterations,
            converged=converged,
            solver=self.name,
            energy_trace=energy_trace,
        )

    @staticmethod
    def _decode(mrf, incoming, messages, beliefs) -> List[int]:
        """Sequential-conditioning decoding of the current beliefs."""
        labels = [0] * mrf.node_count
        decoded = [False] * mrf.node_count
        for node in range(mrf.node_count):
            vector = beliefs[node].copy()
            for in_index, _out, oriented in incoming[node]:
                i, j = mrf.edge(in_index // 2)
                sender = i if in_index % 2 == 0 else j
                if decoded[sender]:
                    vector -= messages[in_index]
                    vector += oriented[:, labels[sender]]
            labels[node] = int(np.argmin(vector))
            decoded[node] = True
        return labels
