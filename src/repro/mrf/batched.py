"""Batched TRW-S for replicated-service networks (the scalability engine).

The paper's optimizer is multi-threaded C++ with GPU-accelerated matrix
operations (Section VIII).  Our pure-Python equivalent exploits the same
structural property the paper's "multi-level" scheme does: absent
combination constraints, the diversification MRF decomposes into one
independent field per service, and when every host runs the same service
with the same candidate range, those fields are *topologically identical
replicas* over the host graph.  This solver therefore runs TRW-S once over
the host graph with all services stacked into NumPy arrays — messages are
``(services, labels)`` blocks, so the per-node Python loop is paid once per
host instead of once per (host, service) node.  On the paper's scalability
workloads this is an order of magnitude faster than the general solver
while computing exactly the same updates.

By default the remaining per-host loop is batched further with the same
wavefront-level trick as :class:`~repro.mrf.vectorized.MRFArrays`: hosts
whose lower-numbered neighbours all sit in earlier levels update in one
NumPy block operation per level (hosts within a level are never adjacent,
so the block update computes the per-host schedule exactly, up to
floating-point summation order).  ``level_batched=False`` keeps the
original per-host sweeps — the reference the parity tests compare against.

Eligibility (checked by :func:`replicated_problem_from_network`): every
host runs the same services, each service has the same candidate range on
every host, there are no constraints and no per-host preferences.  The
general :class:`~repro.mrf.trws.TRWSSolver` covers everything else.

Similarity-derived cost matrices are symmetric, which this solver relies
on (messages need no transposed orientation); the builder asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mrf.vectorized import SolverScratch, wavefront_schedule
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = [
    "ReplicatedProblem",
    "BatchedResult",
    "BatchedTRWSSolver",
    "replicated_problem_from_network",
]


@dataclass
class ReplicatedProblem:
    """A diversification MRF in replicated-service form.

    Attributes:
        host_count: number of hosts N.
        edges: (E, 2) int array of undirected host links, each row (u, v)
            with u < v.
        services: service names, one per replica field.
        products: per service, the candidate product names (label order);
            all services in one problem must share a label count.
        unary: (N, S, L) unary costs.
        costs: (S, L, L) symmetric pairwise cost matrices (λ · similarity).
    """

    host_count: int
    edges: np.ndarray
    services: List[str]
    products: List[Tuple[str, ...]]
    unary: np.ndarray
    costs: np.ndarray

    def __post_init__(self) -> None:
        if self.edges.ndim != 2 or (len(self.edges) and self.edges.shape[1] != 2):
            raise ValueError("edges must be an (E, 2) array")
        if np.any(self.edges[:, 0] >= self.edges[:, 1]) if len(self.edges) else False:
            raise ValueError("edges rows must satisfy u < v")
        n, s, l = self.unary.shape
        if n != self.host_count or s != len(self.services):
            raise ValueError("unary shape disagrees with hosts/services")
        if self.costs.shape != (s, l, l):
            raise ValueError("costs shape disagrees with unary")
        if not np.allclose(self.costs, self.costs.transpose(0, 2, 1)):
            raise ValueError("batched solver requires symmetric cost matrices")

    @property
    def label_count(self) -> int:
        """Labels per variable (the shared candidate-range size)."""
        return self.unary.shape[2]

    def subproblem(
        self, hosts: np.ndarray, edge_rows: np.ndarray
    ) -> "ReplicatedProblem":
        """The restriction to a host subset (a host-graph component).

        ``hosts`` must be ascending global host positions and ``edge_rows``
        the rows of :attr:`edges` internal to that subset (the shard
        partitioner guarantees both).  Services, products and the cost
        stack are shared by reference — a component restricts the host
        graph, not the label model.
        """
        hosts = np.asarray(hosts, dtype=np.int64)
        position = np.searchsorted(hosts, self.edges[edge_rows])
        return ReplicatedProblem(
            host_count=len(hosts),
            edges=position.reshape(-1, 2),
            services=self.services,
            products=self.products,
            unary=self.unary[hosts],
            costs=self.costs,
        )

    def energy(self, labels: np.ndarray) -> float:
        """E(x) for an (N, S) labelling array."""
        n, s, _ = self.unary.shape
        if labels.shape != (n, s):
            raise ValueError(f"labels must be shape {(n, s)}, got {labels.shape}")
        hosts = np.arange(n)[:, None]
        services = np.arange(s)[None, :]
        total = float(self.unary[hosts, services, labels].sum())
        if len(self.edges):
            u, v = self.edges[:, 0], self.edges[:, 1]
            svc = np.arange(s)[None, :]
            total += float(self.costs[svc, labels[u], labels[v]].sum())
        return total


@dataclass
class BatchedResult:
    """Outcome of the batched solver (mirrors SolverResult's semantics)."""

    labels: np.ndarray  # (N, S) label indices
    energy: float
    lower_bound: float
    iterations: int
    converged: bool


class BatchedTRWSSolver:
    """TRW-S over a :class:`ReplicatedProblem` with service-stacked messages.

    The algorithm is identical to :class:`~repro.mrf.trws.TRWSSolver`
    (same node order, same γ weights, same sequential-conditioning label
    extraction, same reparametrisation lower bound); only the data layout
    differs.  Tests assert energy parity between the two on shared
    instances.
    """

    name = "trws-batched"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-9,
        compute_bound: bool = True,
        refine: bool = True,
        refine_sweeps: int = 30,
        tie_break_noise: float = 1e-4,
        seed: Optional[int] = None,
        level_batched: bool = True,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tie_break_noise < 0:
            raise ValueError("tie_break_noise must be non-negative")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.compute_bound = compute_bound
        self.refine = refine
        self.refine_sweeps = refine_sweeps
        self.tie_break_noise = tie_break_noise
        self.seed = seed if seed is not None else 0
        self.level_batched = level_batched

    def solve(
        self,
        problem: ReplicatedProblem,
        scratch: Optional[SolverScratch] = None,
    ) -> BatchedResult:
        """Run batched TRW-S on a replicated-service problem.

        ``scratch`` holds the level-sweep work buffers (the big one is the
        per-level ``(edges, S, L, L)`` cost broadcast); pass a shared
        :class:`~repro.mrf.vectorized.SolverScratch` so repeated solves
        allocate nothing, exactly like the general solvers.  Results are
        bit-identical with or without one.
        """
        n = problem.host_count
        s = len(problem.services)
        l = problem.label_count
        edges = problem.edges
        costs = problem.costs  # (S, L, L), symmetric

        links = _build_links(n, edges)
        plan = _build_level_plan(n, edges) if self.level_batched else None
        scratch = scratch if scratch is not None else SolverScratch()
        # Directed messages: slot 2e towards edges[e][1], 2e+1 towards [0].
        messages = np.zeros((2 * len(edges), s, l))
        beliefs = problem.unary.copy()
        bound_slack = 0.0
        if self.tie_break_noise > 0:
            # Symmetry-breaking perturbation (see TRWSSolver docs); energies
            # are always evaluated against the original costs and the bound
            # is corrected by the total perturbation.
            rng = np.random.default_rng(self.seed)
            noise = rng.uniform(0.0, self.tie_break_noise, beliefs.shape)
            beliefs += noise
            bound_slack = float(noise.max(axis=2).sum())

        best_labels: Optional[np.ndarray] = None
        best_energy = float("inf")
        lower_bound = float("-inf")
        converged = False
        iterations = 0

        stalled = 0
        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            previous_energy = best_energy
            if plan is not None:
                labels = self._forward_sweep_levels(
                    problem, plan, messages, beliefs, scratch
                )
            else:
                labels = self._forward_sweep(problem, links, messages, beliefs)
            energy = problem.energy(labels)
            if energy < best_energy:
                best_energy = energy
                best_labels = labels
            if plan is not None:
                self._backward_sweep_levels(
                    problem, plan, messages, beliefs, scratch
                )
            else:
                self._backward_sweep(problem, links, messages, beliefs)

            previous = lower_bound
            if self.compute_bound:
                lower_bound = max(
                    lower_bound,
                    _bound(problem, messages, beliefs) - bound_slack,
                )
                if best_energy - lower_bound <= self.tolerance:
                    converged = True
                    break
                stall_eps = max(self.tolerance, self.tie_break_noise)
                bound_stalled = (
                    np.isfinite(previous)
                    and abs(lower_bound - previous) <= stall_eps
                )
                energy_stalled = (
                    np.isfinite(previous_energy)
                    and abs(best_energy - previous_energy) <= stall_eps
                )
                stalled = stalled + 1 if (bound_stalled and energy_stalled) else 0
                if stalled >= 3:
                    converged = True
                    break

        assert best_labels is not None
        if self.refine:
            # Multiple primal inits, mirroring TRWSSolver: the extraction,
            # the unary argmin, and a degree-ordered sequential greedy.
            candidates = [
                best_labels,
                np.argmin(problem.unary, axis=2),
                _greedy_labels(problem, links),
            ]
            for candidate in candidates:
                if plan is not None:
                    refined = _icm_refine_levels(
                        problem, plan, candidate, self.refine_sweeps
                    )
                else:
                    refined = _icm_refine(problem, links, candidate, self.refine_sweeps)
                refined_energy = problem.energy(refined)
                if refined_energy < best_energy:
                    best_labels = refined
                    best_energy = refined_energy
            if self.compute_bound and best_energy - lower_bound <= self.tolerance:
                converged = True
        return BatchedResult(
            labels=best_labels,
            energy=best_energy,
            lower_bound=lower_bound,
            iterations=iterations,
            converged=converged,
        )

    # ------------------------------------------------------------ internals

    def _forward_sweep(self, problem, links, messages, beliefs) -> np.ndarray:
        costs = problem.costs
        n = problem.host_count
        labels = np.zeros((n, len(problem.services)), dtype=np.int64)
        for i in range(n):
            node = links[i]
            belief = beliefs[i]  # (S, L)

            # Label extraction by sequential conditioning on earlier hosts.
            if len(node.bwd_nbr):
                conditioned = belief - messages[node.bwd_in].sum(axis=0)
                conditioned = conditioned + _conditioned_costs(
                    costs, labels[node.bwd_nbr]
                )
                labels[i] = np.argmin(conditioned, axis=1)
            else:
                labels[i] = np.argmin(belief, axis=1)

            if len(node.fwd_nbr):
                base = node.gamma * belief[None, :, :] - messages[node.fwd_in]
                new = (base[:, :, :, None] + costs[None, :, :, :]).min(axis=2)
                new -= new.min(axis=2, keepdims=True)
                beliefs[node.fwd_nbr] += new - messages[node.fwd_out]
                messages[node.fwd_out] = new
        return labels

    def _backward_sweep(self, problem, links, messages, beliefs) -> None:
        costs = problem.costs
        for i in range(problem.host_count - 1, -1, -1):
            node = links[i]
            if not len(node.bwd_nbr):
                continue
            base = node.gamma * beliefs[i][None, :, :] - messages[node.bwd_in]
            new = (base[:, :, :, None] + costs[None, :, :, :]).min(axis=2)
            new -= new.min(axis=2, keepdims=True)
            beliefs[node.bwd_nbr] += new - messages[node.bwd_out]
            messages[node.bwd_out] = new

    # --------------------------------------------- level-batched internals

    def _forward_sweep_levels(
        self, problem, plan, messages, beliefs, scratch
    ) -> np.ndarray:
        """Forward sweep over wavefront levels (one block per level).

        Per level: extract labels by sequential conditioning on earlier
        hosts, then send messages to later hosts — the same schedule as
        :meth:`_forward_sweep` because hosts in one level are never
        adjacent.  All level temporaries live in ``scratch`` (same
        operations in the same order as the allocating form, so results
        are bit-identical).
        """
        costs = problem.costs
        s, l = costs.shape[0], costs.shape[1]
        svc = np.arange(len(problem.services))
        labels = np.zeros(
            (problem.host_count, len(problem.services)), dtype=np.int64
        )
        for level in plan.fwd:
            cond = scratch.array("batched_cond", (len(level.nodes), s, l))
            beliefs.take(level.nodes, axis=0, out=cond, mode="clip")
            t = len(level.ext_nbr)
            if t:
                contrib = scratch.array("batched_contrib", (t, s, l))
                # Gather costs[sid, label, :] rows via one flat take — the
                # same elements the fancy index costs[svc, labels] yields.
                costs.reshape(s * l, l).take(
                    svc[None, :] * l + labels[level.ext_nbr],
                    axis=0,
                    out=contrib,
                    mode="clip",
                )
                tmp = scratch.array("batched_ext_tmp", (t, s, l))
                messages.take(level.ext_in, axis=0, out=tmp, mode="clip")
                np.subtract(contrib, tmp, out=contrib)
                reduced = scratch.array(
                    "batched_reduced", (len(level.ext_starts), s, l)
                )
                np.add.reduceat(
                    contrib, level.ext_starts, axis=0, out=reduced
                )
                cond[level.ext_rows] += reduced
            labels[level.nodes] = np.argmin(cond, axis=2)
            self._send_level(plan, level, costs, messages, beliefs, scratch)
        return labels

    def _backward_sweep_levels(
        self, problem, plan, messages, beliefs, scratch
    ) -> None:
        for level in plan.bwd:
            self._send_level(
                plan, level, problem.costs, messages, beliefs, scratch
            )

    @staticmethod
    def _send_level(plan, block, costs, messages, beliefs, scratch) -> None:
        """Block message update over one level's flattened directed edges
        (cost matrices are symmetric, so one orientation serves both).
        Belief deltas aggregate by receiver segment (edges are sorted by
        receiver) — a reduceat plus one fancy ``+=`` on unique receivers.
        Every temporary — the (edges, S, L, L) cost broadcast included —
        lives in ``scratch``, so sweeps allocate nothing once warm."""
        k = len(block.snd)
        if not k:
            return
        s, l = costs.shape[0], costs.shape[1]
        base = scratch.array("batched_base", (k, s, l))
        tmp = scratch.array("batched_tmp", (k, s, l))
        beliefs.take(block.snd, axis=0, out=base, mode="clip")
        np.multiply(plan.gamma[block.snd][:, None, None], base, out=base)
        messages.take(block.inn, axis=0, out=tmp, mode="clip")
        np.subtract(base, tmp, out=base)
        cost = scratch.array("batched_cost", (k, s, l, l))
        np.add(base[:, :, :, None], costs[None, :, :, :], out=cost)
        new = scratch.array("batched_new", (k, s, l))
        cost.min(axis=2, out=new)
        rowmin = scratch.array("batched_rowmin", (k, s, 1))
        new.min(axis=2, keepdims=True, out=rowmin)
        np.subtract(new, rowmin, out=new)
        messages.take(block.out, axis=0, out=tmp, mode="clip")
        np.subtract(new, tmp, out=tmp)
        reduced = scratch.array(
            "batched_send_reduced", (len(block.rcv_starts), s, l)
        )
        np.add.reduceat(tmp, block.rcv_starts, axis=0, out=reduced)
        beliefs[block.rcv_unique] += reduced
        messages[block.out] = new


def _conditioned_costs(costs: np.ndarray, nbr_labels: np.ndarray) -> np.ndarray:
    """Σ_b costs[s, x_b(s), :] over backward neighbours b → (S, L).

    ``nbr_labels`` is (B, S); advanced indexing with the broadcast pair
    ((S,), (B, S)) yields (B, S, L), summed over the neighbour axis.
    ``costs`` is symmetric, so the row slice equals the column slice.
    """
    svc = np.arange(costs.shape[0])
    return costs[svc[None, :], nbr_labels, :].sum(axis=0)


@dataclass
class _HostLinks:
    fwd_nbr: np.ndarray
    fwd_out: np.ndarray
    fwd_in: np.ndarray
    bwd_nbr: np.ndarray
    bwd_out: np.ndarray
    bwd_in: np.ndarray
    gamma: float


def _build_links(n: int, edges: np.ndarray) -> List[_HostLinks]:
    fwd: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
    bwd: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
    for e, (u, v) in enumerate(edges):
        # u < v: edge is forward for u (to later node v), backward for v.
        fwd[u].append((v, 2 * e, 2 * e + 1))
        bwd[v].append((u, 2 * e + 1, 2 * e))
    links = []
    for i in range(n):
        chains = max(len(fwd[i]), len(bwd[i]))
        links.append(
            _HostLinks(
                fwd_nbr=np.array([t[0] for t in fwd[i]], dtype=np.int64),
                fwd_out=np.array([t[1] for t in fwd[i]], dtype=np.int64),
                fwd_in=np.array([t[2] for t in fwd[i]], dtype=np.int64),
                bwd_nbr=np.array([t[0] for t in bwd[i]], dtype=np.int64),
                bwd_out=np.array([t[1] for t in bwd[i]], dtype=np.int64),
                bwd_in=np.array([t[2] for t in bwd[i]], dtype=np.int64),
                gamma=1.0 / chains if chains else 1.0,
            )
        )
    return links


@dataclass
class _ServiceSendBlock:
    """Flattened directed host-graph edges whose senders share one level.

    Edges are stored sorted by receiver, so the belief updates of a block
    aggregate with ``np.add.reduceat`` over contiguous segments followed by
    one fancy ``+=`` on the unique receivers — ``np.ufunc.at``'s per-element
    scatter is an order of magnitude slower and used to dominate dense
    levels.
    """

    snd: np.ndarray         # sender host per edge
    rcv: np.ndarray         # receiver host per edge (non-decreasing)
    out: np.ndarray         # message slot written (sender → receiver)
    inn: np.ndarray         # opposite slot on the same edge
    rcv_starts: np.ndarray  # segment starts of equal-receiver runs
    rcv_unique: np.ndarray  # the receiver of each segment


@dataclass
class _ServiceWavefront(_ServiceSendBlock):
    """One forward level: its hosts, conditioning edges to earlier levels,
    all-neighbour edges (for ICM) and forward sends.  The ``ext``/``all``
    edge lists are sorted by their in-level host, so their contributions
    aggregate with reduceat too (``*_starts`` / ``*_rows``)."""

    nodes: np.ndarray       # hosts in this level, ascending
    ext_seg: np.ndarray     # per backward edge: position of its host in `nodes`
    ext_nbr: np.ndarray     # per backward edge: the earlier neighbour
    ext_in: np.ndarray      # per backward edge: slot of the incoming message
    ext_starts: np.ndarray  # segment starts of equal-ext_seg runs
    ext_rows: np.ndarray    # the in-level row of each segment
    all_seg: np.ndarray     # full-adjacency versions (ICM conditions on all)
    all_nbr: np.ndarray
    all_starts: np.ndarray
    all_rows: np.ndarray


def _segments(sorted_index: np.ndarray):
    """(starts, unique) of the equal-value runs of a non-decreasing array."""
    if not len(sorted_index):
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    change = np.flatnonzero(np.diff(sorted_index)) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
    return starts, sorted_index[starts]


@dataclass
class _LevelPlan:
    """Wavefront-level schedule of the host graph (cf. MRFArrays)."""

    gamma: np.ndarray  # (n,) monotonic chain weights
    fwd: List[_ServiceWavefront]
    bwd: List[_ServiceSendBlock]


def _build_level_plan(n: int, edges: np.ndarray) -> _LevelPlan:
    """Topological wavefront levels of the host graph, flattened level-major.

    Mirrors the schedule of :class:`~repro.mrf.vectorized.MRFArrays` on the
    service-stacked layout: slot ``2e`` carries lo→hi of edge ``e``, slot
    ``2e+1`` the reverse (edge rows satisfy u < v), and hosts in one level
    are never adjacent, so block updates reproduce the per-host order.
    """
    m = len(edges)
    lo = edges[:, 0] if m else np.zeros(0, dtype=np.int64)
    hi = edges[:, 1] if m else np.zeros(0, dtype=np.int64)
    e_ids = np.arange(m, dtype=np.int64)
    slot_lo2hi = 2 * e_ids
    slot_hi2lo = 2 * e_ids + 1

    gamma, flevel, blevel = wavefront_schedule(n, lo, hi)

    def _bounds(levels_sorted: np.ndarray, count: int) -> np.ndarray:
        return np.searchsorted(levels_sorted, np.arange(count + 1))

    n_flevels = int(flevel.max()) + 1 if n else 0
    node_order = np.lexsort((np.arange(n, dtype=np.int64), flevel))
    node_bounds = _bounds(flevel[node_order], n_flevels)
    # Sends sorted by receiver within each level → reduceat-aggregatable.
    send_order = np.lexsort((e_ids, hi, flevel[lo]))
    send_bounds = _bounds(flevel[lo][send_order], n_flevels)
    ext_order = np.lexsort((e_ids, hi, flevel[hi]))
    ext_bounds = _bounds(flevel[hi][ext_order], n_flevels)
    a_node = np.concatenate([lo, hi])
    a_nbr = np.concatenate([hi, lo])
    a_eid = np.concatenate([e_ids, e_ids])
    all_order = np.lexsort((a_eid, a_node, flevel[a_node]))
    all_bounds = _bounds(flevel[a_node][all_order], n_flevels)

    fwd: List[_ServiceWavefront] = []
    for level in range(n_flevels):
        nodes = node_order[node_bounds[level] : node_bounds[level + 1]]
        ext = ext_order[ext_bounds[level] : ext_bounds[level + 1]]
        send = send_order[send_bounds[level] : send_bounds[level + 1]]
        full = all_order[all_bounds[level] : all_bounds[level + 1]]
        ext_seg = np.searchsorted(nodes, hi[ext])
        ext_starts, ext_rows = _segments(ext_seg)
        all_seg = np.searchsorted(nodes, a_node[full])
        all_starts, all_rows = _segments(all_seg)
        rcv_starts, rcv_unique = _segments(hi[send])
        fwd.append(
            _ServiceWavefront(
                nodes=nodes,
                ext_seg=ext_seg,
                ext_nbr=lo[ext],
                ext_in=slot_lo2hi[ext],
                ext_starts=ext_starts,
                ext_rows=ext_rows,
                snd=lo[send],
                rcv=hi[send],
                out=slot_lo2hi[send],
                inn=slot_hi2lo[send],
                rcv_starts=rcv_starts,
                rcv_unique=rcv_unique,
                all_seg=all_seg,
                all_nbr=a_nbr[full],
                all_starts=all_starts,
                all_rows=all_rows,
            )
        )

    bwd: List[_ServiceSendBlock] = []
    n_blevels = int(blevel.max()) + 1 if m else 0
    bsend_order = np.lexsort((e_ids, lo, blevel[hi]))
    bsend_bounds = _bounds(blevel[hi][bsend_order], n_blevels)
    for level in range(n_blevels):
        send = bsend_order[bsend_bounds[level] : bsend_bounds[level + 1]]
        if not len(send):
            continue
        rcv_starts, rcv_unique = _segments(lo[send])
        bwd.append(
            _ServiceSendBlock(
                snd=hi[send],
                rcv=lo[send],
                out=slot_hi2lo[send],
                inn=slot_lo2hi[send],
                rcv_starts=rcv_starts,
                rcv_unique=rcv_unique,
            )
        )
    return _LevelPlan(gamma=gamma, fwd=fwd, bwd=bwd)


def _icm_refine_levels(
    problem: ReplicatedProblem,
    plan: _LevelPlan,
    labels: np.ndarray,
    max_sweeps: int,
) -> np.ndarray:
    """Level-batched ICM coordinate descent (same sweep as _icm_refine:
    hosts ascending, conditioning on all neighbours' current labels)."""
    current = labels.copy()
    costs = problem.costs
    svc = np.arange(len(problem.services))
    for _ in range(max_sweeps):
        changed = False
        for level in plan.fwd:
            cond = problem.unary[level.nodes].copy()
            if len(level.all_nbr):
                cond[level.all_rows] += np.add.reduceat(
                    costs[svc[None, :], current[level.all_nbr]],
                    level.all_starts,
                    axis=0,
                )
            best = np.argmin(cond, axis=2)
            if not np.array_equal(best, current[level.nodes]):
                changed = True
            current[level.nodes] = best
        if not changed:
            break
    return current


def _greedy_labels(
    problem: ReplicatedProblem, links: List["_HostLinks"]
) -> np.ndarray:
    """Degree-descending sequential greedy labelling (all services at once)."""
    n = problem.host_count
    degree = [len(node.fwd_nbr) + len(node.bwd_nbr) for node in links]
    order = sorted(range(n), key=lambda i: (-degree[i], i))
    labels = np.zeros((n, len(problem.services)), dtype=np.int64)
    assigned = np.zeros(n, dtype=bool)
    costs = problem.costs
    for i in order:
        node = links[i]
        neighbors = np.concatenate([node.fwd_nbr, node.bwd_nbr])
        conditional = problem.unary[i].copy()
        if len(neighbors):
            done = neighbors[assigned[neighbors]]
            if len(done):
                conditional += _conditioned_costs(costs, labels[done])
        labels[i] = np.argmin(conditional, axis=1)
        assigned[i] = True
    return labels


def _icm_refine(
    problem: ReplicatedProblem,
    links: List["_HostLinks"],
    labels: np.ndarray,
    max_sweeps: int,
) -> np.ndarray:
    """ICM coordinate descent over hosts (all services vectorised).

    Same role as the general solver's ICM post-pass: escape the symmetric
    message fixed point on flat-unary instances by greedy per-host
    improvement until a full sweep changes nothing.
    """
    current = labels.copy()
    costs = problem.costs
    neighbor_lists = [
        np.concatenate([node.fwd_nbr, node.bwd_nbr]) for node in links
    ]
    for _ in range(max_sweeps):
        changed = False
        for i in range(problem.host_count):
            neighbors = neighbor_lists[i]
            conditional = problem.unary[i].copy()
            if len(neighbors):
                conditional += _conditioned_costs(costs, current[neighbors])
            best = np.argmin(conditional, axis=1)
            if not np.array_equal(best, current[i]):
                current[i] = best
                changed = True
        if not changed:
            break
    return current


def _bound(
    problem: ReplicatedProblem,
    messages: np.ndarray,
    beliefs: np.ndarray,
    chunk: int = 4096,
) -> float:
    """Reparametrisation lower bound (chunked to cap peak memory)."""
    bound = float(beliefs.min(axis=2).sum())
    costs = problem.costs  # (S, L, L)
    for start in range(0, len(problem.edges), chunk):
        stop = min(start + chunk, len(problem.edges))
        to_second = messages[2 * start : 2 * stop : 2]      # (C, S, L_v)
        to_first = messages[2 * start + 1 : 2 * stop : 2]   # (C, S, L_u)
        reduced = (
            costs[None, :, :, :]
            - to_first[:, :, :, None]
            - to_second[:, :, None, :]
        )
        bound += float(reduced.min(axis=(2, 3)).sum())
    return bound


def replicated_problem_from_network(
    network: Network,
    similarity: SimilarityTable,
    unary_constant: float = 0.01,
    pairwise_weight: float = 1.0,
) -> Optional[ReplicatedProblem]:
    """Build a :class:`ReplicatedProblem`, or None when the network is not
    service-replicated (heterogeneous services/ranges → use the general
    MRF path).

    Services whose candidate ranges differ in size across the network are
    grouped by padding — no: eligibility requires *identical* ranges, the
    common case for the scalability workloads.  All services must share one
    label count so they stack into one array.

    Assembly follows the interning idiom of :mod:`repro.core.compile`:
    eligibility compares each host's ``service_ranges`` profile against
    the first host's in one pass, the link endpoints intern to host ids
    and sort as arrays, and the cost stack is sliced out of one dense
    similarity matrix over the interned products (``np.ix_``) instead of
    an O(services·labels²) ``similarity.get`` loop — same arrays
    bit-for-bit, an order of magnitude faster at 10k+ hosts.
    """
    hosts = network.hosts
    if not hosts:
        return None
    reference = network.service_ranges(hosts[0])
    if not reference:
        return None
    services = [service for service, _range in reference]
    ranges: List[Tuple[str, ...]] = [range_ for _service, range_ in reference]
    label_count = len(ranges[0])
    if any(len(r) != label_count for r in ranges):
        return None
    for host in hosts[1:]:
        # One profile comparison per host — (service, range) pairs in
        # declaration order, exactly the services_of/candidates contract.
        if network.service_ranges(host) != reference:
            return None

    index = {host: position for position, host in enumerate(hosts)}
    links = network.links
    if links:
        first = np.fromiter(
            (index[a] for a, _b in links), np.int64, len(links)
        )
        second = np.fromiter(
            (index[b] for _a, b in links), np.int64, len(links)
        )
        lo = np.minimum(first, second)
        hi = np.maximum(first, second)
        order = np.lexsort((hi, lo))
        edges = np.stack((lo[order], hi[order]), axis=1)
    else:
        edges = np.zeros((0, 2), dtype=np.int64)

    # Intern products across ranges, score each distinct pair once, then
    # slice every service's cost matrix out of the shared dense matrix.
    product_ids: Dict[str, int] = {}
    range_pids: List[np.ndarray] = []
    for products in ranges:
        pids = [
            product_ids.setdefault(product, len(product_ids))
            for product in products
        ]
        range_pids.append(np.asarray(pids, dtype=np.int64))
    matrix = similarity.matrix(product_ids)

    s = len(services)
    unary = np.full((len(hosts), s, label_count), float(unary_constant))
    costs = np.empty((s, label_count, label_count))
    for k, pids in enumerate(range_pids):
        costs[k] = pairwise_weight * matrix[np.ix_(pids, pids)]
    return ReplicatedProblem(
        host_count=len(hosts),
        edges=edges,
        services=list(services),
        products=ranges,
        unary=unary,
        costs=costs,
    )
