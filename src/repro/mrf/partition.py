"""Component/zone partitioning of MRF plans — the shard layer.

The diversification MRF of a segmented network factors: products of
different services never share a pairwise cost, and zones with no
firewall-permitted path between them share no edges at all, so the field
decomposes into independent connected components.  Solving each component
separately is *exact* — energies, bounds and optima add — which makes
shards a free scaling axis: shard solves parallelise, converge on their own
schedules, and (in :mod:`repro.stream`) re-solve independently when churn
only touches one of them.

This module turns that decomposition into first-class objects:

* :func:`split_parts` / :func:`split_components` — partition raw plan parts
  (or a finished :class:`~repro.mrf.vectorized.MRFArrays`) into per-component
  :class:`Shard` sub-plans with node/edge/message-slot index maps;
* :class:`PlanPartition` — the shard list plus :meth:`~PlanPartition.stitch`
  (per-shard labels → global labelling) and message split/scatter helpers;
* :func:`zone_groups` — the optional zone-guided grouping: nodes of hosts in
  the same :class:`~repro.network.zones.ZonedNetwork` zone are pinned to one
  shard, so the many tiny per-service components of a zone solve as one
  scheduling unit instead of thousands of micro-tasks;
* :func:`split_replicated` — the same partition for the batched
  replicated-service form (:class:`~repro.mrf.batched.ReplicatedProblem`);
* :func:`cut_parts` / :func:`balanced_blocks` — the *edge-cut* partition
  behind dual decomposition (:mod:`repro.mrf.dual`): nodes are grouped into
  balanced blocks along a BFS order, every edge is owned by the block of its
  first endpoint, and the off-block endpoint of each cut edge is duplicated
  into the owning shard as a *ghost copy*.  Unlike component shards, cut
  shards are **not** independent — copies of a boundary node must agree for
  the stitched labelling to be feasible, which is exactly the consensus the
  dual solver's multiplier loop enforces.

Every shard sub-plan is built with the parent's label padding (``lmax``), so
the parent's directed-message array slices straight into shard message
arrays (rows ``2e``/``2e+1`` of edge ``e`` map through :attr:`Shard.slots`)
— the property the warm-started sharded streaming path relies on.  Shard
node/edge lists preserve ascending global order, hence the wavefront
schedule of a shard is the restriction of the monolithic schedule and a
shard solve continues a monolithic solve's message state exactly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.mrf.batched import ReplicatedProblem
from repro.mrf.vectorized import MRFArrays

__all__ = [
    "Shard",
    "PlanPartition",
    "MergedSolve",
    "merge_shard_results",
    "split_parts",
    "split_components",
    "zone_groups",
    "balanced_blocks",
    "BoundaryNode",
    "CutShard",
    "CutPartition",
    "cut_parts",
    "ReplicatedShard",
    "ReplicatedPartition",
    "split_replicated",
]


@dataclass(frozen=True)
class MergedSolve:
    """Summary reduction of independent shard solves.

    Components share no edges, so energies and dual bounds add; one
    non-finite bound (BP has none) poisons the total, the slowest shard
    sets the iteration count, and the merge converged iff every shard did.
    """

    energy: float
    lower_bound: float
    iterations: int
    converged: bool


def merge_shard_results(
    energies: Sequence[float],
    bounds: Sequence[float],
    iterations: Sequence[int],
    converged: Sequence[bool],
) -> MergedSolve:
    """The one shard-merge rule every consumer shares (see MergedSolve)."""
    return MergedSolve(
        energy=float(sum(energies)),
        lower_bound=(
            float("-inf")
            if any(not np.isfinite(b) for b in bounds)
            else float(sum(bounds))
        ),
        iterations=max(iterations, default=0),
        converged=all(converged),
    )


def _component_of(
    n: int,
    edge_first: Sequence[int],
    edge_second: Sequence[int],
    groups: Optional[Sequence[Optional[int]]] = None,
) -> np.ndarray:
    """Dense component ids per node (first-appearance order).

    Union-find with path halving over the edge list; ``groups`` optionally
    pins nodes sharing a group id (e.g. a zone) into one component even
    without connecting edges.
    """
    parent = list(range(n))

    def find(x: int) -> int:
        """Root of ``x``, with path halving."""
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        """Merge the components of ``a`` and ``b`` (smaller root wins)."""
        ra, rb = find(a), find(b)
        if ra != rb:
            # Smaller index wins the root, keeping ids in node order.
            parent[max(ra, rb)] = min(ra, rb)

    for a, b in zip(edge_first, edge_second):
        union(int(a), int(b))
    if groups is not None:
        anchor: Dict[int, int] = {}
        for node, gid in enumerate(groups):
            if gid is None:
                continue
            first = anchor.setdefault(int(gid), node)
            if first != node:
                union(first, node)

    component = np.empty(n, dtype=np.int64)
    ids: Dict[int, int] = {}
    for node in range(n):
        component[node] = ids.setdefault(find(node), len(ids))
    return component


def _pack_components(component: np.ndarray, min_size: int) -> np.ndarray:
    """Component id → shard id, packing small components greedily.

    Components are consumed in id order (= smallest-node order); a shard
    closes once it has accumulated ``min_size`` members.  ``min_size=1``
    is the identity mapping.
    """
    n_components = int(component.max()) + 1 if len(component) else 0
    if min_size <= 1:
        return np.arange(n_components, dtype=np.int64)
    sizes = np.bincount(component, minlength=n_components)
    shard_id = np.empty(n_components, dtype=np.int64)
    current, filled = 0, 0
    for c in range(n_components):
        shard_id[c] = current
        filled += int(sizes[c])
        if filled >= min_size:
            current += 1
            filled = 0
    return shard_id


class Shard:
    """One sub-plan of a partition, with its global index maps.

    Attributes:
        index: position in the partition (deterministic: shards are ordered
            by their smallest global node).
        nodes: global node ids of this shard, ascending.
        edges: global edge ids, ascending.
        slots: global directed-message rows in local slot order — local slot
            ``2j``/``2j+1`` of local edge ``j`` maps to global rows
            ``2·edges[j]``/``2·edges[j]+1``, so ``messages[slots]`` is the
            shard's message array.
        cids: global cost-matrix ids backing the shard's local cost stack
            (local cid ``k`` is global matrix ``cids[k]``).
        local_first / local_second / local_cid: the shard's edge arrays in
            local coordinates — exactly what :meth:`MRFArrays.from_parts`
            takes, so a process-pool worker can rebuild the shard plan
            from raw parts without the parent ever materialising it.
        plan: the shard's own :class:`MRFArrays`, padded to the parent's
            ``lmax`` so message widths line up.  Built lazily on first
            access — the sharded streaming engine partitions on every
            solve but only materialises the *dirty* shards' plans, which
            is what keeps churn cost proportional to the touched component.
    """

    def __init__(
        self,
        index: int,
        nodes: np.ndarray,
        edges: np.ndarray,
        slots: np.ndarray,
        cids: np.ndarray,
        local_first: np.ndarray,
        local_second: np.ndarray,
        local_cid: np.ndarray,
        plan_factory,
    ) -> None:
        self.index = index
        self.nodes = nodes
        self.edges = edges
        self.slots = slots
        self.cids = cids
        self.local_first = local_first
        self.local_second = local_second
        self.local_cid = local_cid
        self._plan_factory = plan_factory
        self._plan: Optional[MRFArrays] = None

    @property
    def plan(self) -> MRFArrays:
        """The shard's :class:`MRFArrays` sub-plan (built lazily, cached)."""
        if self._plan is None:
            self._plan = self._plan_factory()
        return self._plan


class PlanPartition:
    """A node/edge partition of one plan into independent shards."""

    def __init__(
        self, shards: List[Shard], node_count: int, edge_count: int,
        shard_of: np.ndarray,
    ) -> None:
        self.shards = shards
        self.node_count = node_count
        self.edge_count = edge_count
        #: (node_count,) shard index per global node.
        self.shard_of = shard_of

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def stitch(self, labels_by_shard: Sequence[Sequence[int]]) -> np.ndarray:
        """Merge per-shard labellings into one global label array.

        The inverse of the node maps: entry ``i`` of shard ``s``'s labels
        lands at global node ``shards[s].nodes[i]``.  Solving shards
        independently is exact, so the stitched labelling's energy equals
        the sum of the shard energies.

        Raises:
            ValueError: when ``labels_by_shard`` does not line up with the
                partition — a missing/extra shard entry or a labelling of
                the wrong length.  (``zip`` used to truncate silently,
                which turned a dropped single-node shard — the degenerate
                product of an edge cut — into zeros in the stitched
                labelling.)  A bare scalar is accepted for a single-node
                shard: exact solvers naturally collapse those.
        """
        if len(labels_by_shard) != len(self.shards):
            raise ValueError(
                f"expected {len(self.shards)} shard labellings, "
                f"got {len(labels_by_shard)}"
            )
        labels = np.zeros(self.node_count, dtype=np.int64)
        for shard, sub in zip(self.shards, labels_by_shard):
            arr = np.asarray(sub, dtype=np.int64)
            if arr.ndim == 0:
                arr = arr.reshape(1)
            if arr.shape != (len(shard.nodes),):
                raise ValueError(
                    f"shard {shard.index} has {len(shard.nodes)} node(s), "
                    f"got a labelling of shape {arr.shape}"
                )
            labels[shard.nodes] = arr
        return labels

    def split_messages(self, messages: np.ndarray) -> List[np.ndarray]:
        """Per-shard copies of a global directed-message array."""
        return [messages[shard.slots] for shard in self.shards]

    def scatter_messages(
        self, shard_messages: Sequence[np.ndarray], messages: np.ndarray
    ) -> None:
        """Write per-shard message arrays back into the global array."""
        for shard, sub in zip(self.shards, shard_messages):
            messages[shard.slots] = sub


def split_parts(
    unaries: Sequence[np.ndarray],
    edge_first: np.ndarray,
    edge_second: np.ndarray,
    edge_cid: np.ndarray,
    matrices: Sequence[np.ndarray],
    lmax: Optional[int] = None,
    groups: Optional[Sequence[Optional[int]]] = None,
    min_nodes: int = 1,
) -> PlanPartition:
    """Partition raw plan parts into per-connected-component sub-plans.

    Args:
        unaries / edge_first / edge_second / edge_cid / matrices: the plan
            parts, exactly as :meth:`MRFArrays.from_parts` takes them.
        lmax: label padding forced onto every shard (defaults to the widest
            unary) — pass the parent plan's ``lmax`` so message arrays
            slice across.
        groups: optional per-node group ids; nodes sharing a group id are
            pinned into one shard (see :func:`zone_groups`).  ``None``
            entries are unconstrained.
        min_nodes: pack components smaller than this into combined shards
            (in smallest-node order).  Multi-component shards are still
            solved exactly — grouping only coarsens scheduling granularity.

    Returns:
        A :class:`PlanPartition`; shards are ordered by smallest global
        node, nodes/edges ascending within each shard.

    Two disconnected anti-ferromagnetic pairs split into two shards, and
    :meth:`PlanPartition.stitch` maps the per-shard labellings back:

    >>> import numpy as np
    >>> unaries = [np.zeros(2) for _ in range(4)]
    >>> repel = np.array([[1.0, 0.0], [0.0, 1.0]])
    >>> partition = split_parts(
    ...     unaries, np.array([0, 2]), np.array([1, 3]),
    ...     np.array([0, 0]), [repel],
    ... )
    >>> len(partition)
    2
    >>> partition.stitch([[0, 1], [1, 0]]).tolist()
    [0, 1, 1, 0]
    """
    if min_nodes < 1:
        raise ValueError("min_nodes must be >= 1")
    n = len(unaries)
    edge_first = np.asarray(edge_first, dtype=np.int64)
    edge_second = np.asarray(edge_second, dtype=np.int64)
    edge_cid = np.asarray(edge_cid, dtype=np.int64)
    if n == 0:
        return PlanPartition([], 0, 0, np.zeros(0, dtype=np.int64))

    component = _component_of(n, edge_first, edge_second, groups)
    shard_id = _pack_components(component, min_nodes)
    shard_of = shard_id[component]
    n_shards = int(shard_id.max()) + 1

    if lmax is None:
        lmax = max((len(u) for u in unaries), default=0)

    node_order = np.argsort(shard_of, kind="stable")
    node_bounds = np.searchsorted(
        shard_of[node_order], np.arange(n_shards + 1)
    )
    e_shard = shard_of[edge_first] if len(edge_first) else np.zeros(
        0, dtype=np.int64
    )
    edge_order = np.argsort(e_shard, kind="stable")
    edge_bounds = np.searchsorted(
        e_shard[edge_order], np.arange(n_shards + 1)
    )

    def plan_factory(nodes, local_first, local_second, local_cid, used):
        """Deferred shard-plan builder bound to one component's arrays."""
        def build() -> MRFArrays:
            """Materialise the shard's :class:`MRFArrays` sub-plan."""
            return MRFArrays.from_parts(
                [unaries[int(i)] for i in nodes],
                local_first,
                local_second,
                local_cid,
                [matrices[int(k)] for k in used],
                lmax=lmax,
            )

        return build

    shards: List[Shard] = []
    for s in range(n_shards):
        nodes = node_order[node_bounds[s] : node_bounds[s + 1]]
        edges = edge_order[edge_bounds[s] : edge_bounds[s + 1]]
        local_first = np.searchsorted(nodes, edge_first[edges])
        local_second = np.searchsorted(nodes, edge_second[edges])
        cids = edge_cid[edges]
        used = np.unique(cids)
        local_cid = np.searchsorted(used, cids)
        slots = np.empty(2 * len(edges), dtype=np.int64)
        slots[0::2] = 2 * edges
        slots[1::2] = 2 * edges + 1
        shards.append(
            Shard(
                index=s, nodes=nodes, edges=edges, slots=slots, cids=used,
                local_first=local_first, local_second=local_second,
                local_cid=local_cid,
                plan_factory=plan_factory(
                    nodes, local_first, local_second, local_cid, used
                ),
            )
        )
    return PlanPartition(shards, n, len(edge_first), shard_of)


def split_components(
    plan: MRFArrays,
    groups: Optional[Sequence[Optional[int]]] = None,
    min_nodes: int = 1,
) -> PlanPartition:
    """Partition a finished :class:`MRFArrays` plan (see :func:`split_parts`).

    The shard matrices are the parent's padded forward-orientation stack
    entries; padding rows/columns are ``+inf`` in both, so re-padding them
    into the shard stacks is exact.
    """
    return split_parts(
        plan.unary_vectors(),
        plan.edge_first,
        plan.edge_second,
        plan.edge_cid,
        plan.matrix_stack(),
        lmax=plan.lmax,
        groups=groups,
        min_nodes=min_nodes,
    )


def zone_groups(
    variables: Sequence[Tuple[str, str]], zoned
) -> List[Optional[int]]:
    """Per-node group ids from a :class:`~repro.network.zones.ZonedNetwork`.

    Maps every (host, service) variable to its host's zone index; hosts
    outside the zone model stay unconstrained (``None``).  Feeding this to
    :func:`split_parts`/:func:`split_components` merges each zone's many
    per-service micro-components into one shard — the right granularity
    when zones are the churn/failure domain.
    """
    ids = {zone.name: k for k, zone in enumerate(zoned.zones)}
    out: List[Optional[int]] = []
    for host, _service in variables:
        try:
            out.append(ids[zoned.zone_of(host)])
        except KeyError:
            out.append(None)
    return out


# ------------------------------------------------------ edge-cut partition


def balanced_blocks(
    n: int,
    edge_first: Sequence[int],
    edge_second: Sequence[int],
    parts: int,
) -> np.ndarray:
    """Balanced node→block assignment along a BFS order (edge-cut heuristic).

    Nodes are visited breadth-first from the smallest unvisited node and the
    visit order is chopped into ``parts`` near-equal contiguous chunks, so
    blocks are locality-preserving (BFS keeps neighbours close in the order,
    which keeps the cut small) and balanced within one node.  ``parts`` is
    clamped to ``[1, n]``; every block is non-empty.

    >>> balanced_blocks(4, [0, 1, 2], [1, 2, 3], 2).tolist()
    [0, 0, 1, 1]
    """
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    parts = max(1, min(int(parts), n))
    block = np.zeros(n, dtype=np.int64)
    if parts == 1:
        return block
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for a, b in zip(edge_first, edge_second):
        adjacency[int(a)].append(int(b))
        adjacency[int(b)].append(int(a))
    order = np.empty(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    position = 0
    for seed in range(n):
        if visited[seed]:
            continue
        visited[seed] = True
        queue = deque([seed])
        while queue:
            node = queue.popleft()
            order[position] = node
            position += 1
            for neighbor in adjacency[node]:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    queue.append(neighbor)
    block[order] = np.minimum(
        np.arange(n, dtype=np.int64) * parts // n, parts - 1
    )
    return block


@dataclass(frozen=True)
class BoundaryNode:
    """One node duplicated across cut shards, with all its copy addresses.

    Attributes:
        node: the global node id.
        labels: the node's label count (copies share it — the consensus
            constraint and the Lagrange multipliers live in this space).
        copies: ``(shard index, local node index)`` of every copy, home
            shard first.  All copies must take the same label for a
            stitched labelling to be feasible.
    """

    node: int
    labels: int
    copies: Tuple[Tuple[int, int], ...]


class CutShard(Shard):
    """One shard of an edge-cut partition (see :func:`cut_parts`).

    Extends :class:`Shard` with the home/ghost distinction:

    Attributes:
        home: boolean mask aligned with :attr:`Shard.nodes` — True where
            the node's block is this shard (its unary's "home"), False for
            ghost copies duplicated in by a cut edge.  :meth:`CutPartition.
            stitch` reads labels from home copies only.
    """

    def __init__(self, home: np.ndarray, **kwargs) -> None:
        super().__init__(**kwargs)
        self.home = home


class CutPartition:
    """An edge-cut partition: balanced shards coupled on boundary nodes.

    Unlike :class:`PlanPartition`, shards share *nodes* (boundary copies)
    but never edges: every global edge lives in exactly one shard, and the
    home unary of a boundary node is split evenly across its copies — so
    for any labelling on which all copies agree, shard energies sum exactly
    to the global energy, and for *any* per-copy multipliers summing to
    zero the shard optima sum to a valid global lower bound.  That is the
    decomposition :class:`~repro.mrf.dual.DualDecompositionSolver` runs its
    subgradient loop over.
    """

    def __init__(
        self,
        shards: List[CutShard],
        node_count: int,
        edge_count: int,
        block: np.ndarray,
        cut_edges: np.ndarray,
        boundary: List[BoundaryNode],
    ) -> None:
        self.shards = shards
        self.node_count = node_count
        self.edge_count = edge_count
        #: (node_count,) block id per global node (= home shard index).
        self.block = block
        #: global edge ids whose endpoints live in different blocks.
        self.cut_edges = cut_edges
        #: the duplicated nodes, with every copy's (shard, local) address.
        self.boundary = boundary

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[CutShard]:
        return iter(self.shards)

    def stitch(self, labels_by_shard: Sequence[Sequence[int]]) -> np.ndarray:
        """Merge per-shard labellings, reading each node's *home* copy.

        Ghost copies are ignored: before consensus they may disagree with
        the home copy, and the home block is the deterministic tie-break.
        Length mismatches raise (see :meth:`PlanPartition.stitch`).
        """
        if len(labels_by_shard) != len(self.shards):
            raise ValueError(
                f"expected {len(self.shards)} shard labellings, "
                f"got {len(labels_by_shard)}"
            )
        labels = np.zeros(self.node_count, dtype=np.int64)
        for shard, sub in zip(self.shards, labels_by_shard):
            arr = np.asarray(sub, dtype=np.int64)
            if arr.ndim == 0:
                arr = arr.reshape(1)
            if arr.shape != (len(shard.nodes),):
                raise ValueError(
                    f"shard {shard.index} has {len(shard.nodes)} node(s), "
                    f"got a labelling of shape {arr.shape}"
                )
            labels[shard.nodes[shard.home]] = arr[shard.home]
        return labels

    def disagreements(
        self, labels_by_shard: Sequence[Sequence[int]]
    ) -> List[BoundaryNode]:
        """Boundary nodes whose copies currently take different labels."""
        out = []
        for entry in self.boundary:
            seen = {
                int(labels_by_shard[s][i]) for s, i in entry.copies
            }
            if len(seen) > 1:
                out.append(entry)
        return out


def cut_parts(
    unaries: Sequence[np.ndarray],
    edge_first: np.ndarray,
    edge_second: np.ndarray,
    edge_cid: np.ndarray,
    matrices: Sequence[np.ndarray],
    lmax: Optional[int] = None,
    parts: int = 2,
    blocks: Optional[Sequence[int]] = None,
) -> CutPartition:
    """Partition raw plan parts along a balanced edge cut.

    Nodes are grouped into ``parts`` balanced blocks (BFS chunking, see
    :func:`balanced_blocks`, or caller-supplied ``blocks``); each edge is
    owned by the block of its **first** endpoint, and for every cut edge
    the off-block second endpoint is duplicated into the owning shard as a
    ghost copy.  Each copy of a duplicated node carries ``1/k`` of the
    node's unary (``k`` copies), so consistent labellings preserve the
    global energy exactly and shard dual bounds sum to a valid global
    bound for any zero-sum multipliers — the invariants
    :class:`~repro.mrf.dual.DualDecompositionSolver` relies on.

    A degenerate cut (``parts`` close to the node count) can produce
    single-node shards with zero edges; they round-trip through shard
    plans and :meth:`CutPartition.stitch` like any other shard.

    Splitting a 4-node path into two blocks cuts one edge and ghosts its
    far endpoint into the first shard:

    >>> import numpy as np
    >>> unaries = [np.zeros(2) for _ in range(4)]
    >>> repel = np.array([[1.0, 0.0], [0.0, 1.0]])
    >>> partition = cut_parts(
    ...     unaries, np.array([0, 1, 2]), np.array([1, 2, 3]),
    ...     np.array([0, 0, 0]), [repel], parts=2,
    ... )
    >>> [shard.nodes.tolist() for shard in partition]
    [[0, 1, 2], [2, 3]]
    >>> partition.cut_edges.tolist()
    [1]
    >>> [entry.node for entry in partition.boundary]
    [2]
    """
    n = len(unaries)
    edge_first = np.asarray(edge_first, dtype=np.int64)
    edge_second = np.asarray(edge_second, dtype=np.int64)
    edge_cid = np.asarray(edge_cid, dtype=np.int64)
    m = len(edge_first)
    if n == 0:
        return CutPartition(
            [], 0, 0, np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64), [],
        )
    if blocks is None:
        block = balanced_blocks(n, edge_first, edge_second, parts)
    else:
        block = np.asarray(blocks, dtype=np.int64)
        if block.shape != (n,):
            raise ValueError(
                f"blocks must assign all {n} nodes, got shape {block.shape}"
            )
        # Re-label densely so empty block ids cannot yield empty shards.
        block = np.unique(block, return_inverse=True)[1].astype(np.int64)
    n_shards = int(block.max()) + 1
    if lmax is None:
        lmax = max((len(u) for u in unaries), default=0)

    owner = block[edge_first] if m else np.zeros(0, dtype=np.int64)
    cut_mask = (
        block[edge_first] != block[edge_second]
        if m
        else np.zeros(0, dtype=bool)
    )
    cut_edges = np.nonzero(cut_mask)[0]

    # Distinct (shard, ghost node) pairs, and per-node copy counts.
    copies = np.ones(n, dtype=np.int64)
    if len(cut_edges):
        pairs = np.unique(
            np.stack(
                [owner[cut_edges], edge_second[cut_edges]], axis=1
            ),
            axis=0,
        )
        np.add.at(copies, pairs[:, 1], 1)
    else:
        pairs = np.zeros((0, 2), dtype=np.int64)

    def plan_factory(members, local_first, local_second, local_cid, used):
        """Deferred shard-plan builder bound to one block's arrays."""
        def build() -> MRFArrays:
            """Materialise the cut shard's sub-plan (split unaries)."""
            return MRFArrays.from_parts(
                [
                    np.asarray(unaries[int(v)], dtype=float)
                    / copies[int(v)]
                    for v in members
                ],
                local_first,
                local_second,
                local_cid,
                [matrices[int(k)] for k in used],
                lmax=lmax,
            )

        return build

    shards: List[CutShard] = []
    for s in range(n_shards):
        home_nodes = np.nonzero(block == s)[0]
        ghosts = pairs[pairs[:, 0] == s, 1]
        nodes = np.union1d(home_nodes, ghosts)
        home = block[nodes] == s
        edges = np.nonzero(owner == s)[0]
        local_first = np.searchsorted(nodes, edge_first[edges])
        local_second = np.searchsorted(nodes, edge_second[edges])
        cids = edge_cid[edges]
        used = np.unique(cids)
        local_cid = np.searchsorted(used, cids)
        slots = np.empty(2 * len(edges), dtype=np.int64)
        slots[0::2] = 2 * edges
        slots[1::2] = 2 * edges + 1
        shards.append(
            CutShard(
                home=home,
                index=s, nodes=nodes, edges=edges, slots=slots, cids=used,
                local_first=local_first, local_second=local_second,
                local_cid=local_cid,
                plan_factory=plan_factory(
                    nodes, local_first, local_second, local_cid, used
                ),
            )
        )

    boundary: List[BoundaryNode] = []
    ghosted: Dict[int, List[int]] = {}
    for s, v in pairs:
        ghosted.setdefault(int(v), []).append(int(s))
    for v in sorted(ghosted):
        home_shard = int(block[v])
        addresses = [
            (home_shard, int(np.searchsorted(shards[home_shard].nodes, v)))
        ]
        for s in ghosted[v]:
            addresses.append(
                (s, int(np.searchsorted(shards[s].nodes, v)))
            )
        boundary.append(
            BoundaryNode(
                node=int(v),
                labels=len(unaries[v]),
                copies=tuple(addresses),
            )
        )
    return CutPartition(shards, n, m, block, cut_edges, boundary)


# ------------------------------------------------- replicated-service form


@dataclass
class ReplicatedShard:
    """One host-graph component of a :class:`ReplicatedProblem`."""

    index: int
    hosts: np.ndarray   # global host positions, ascending
    edges: np.ndarray   # global edge rows, ascending
    problem: ReplicatedProblem


class ReplicatedPartition:
    """Host-graph partition of a replicated-service problem."""

    def __init__(
        self, shards: List[ReplicatedShard], host_count: int
    ) -> None:
        self.shards = shards
        self.host_count = host_count

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[ReplicatedShard]:
        return iter(self.shards)

    def stitch(self, labels_by_shard: Sequence[np.ndarray]) -> np.ndarray:
        """Merge per-shard (hosts, services) labellings into the global one."""
        if not self.shards:
            return np.zeros((0, 0), dtype=np.int64)
        services = labels_by_shard[0].shape[1]
        labels = np.zeros((self.host_count, services), dtype=np.int64)
        for shard, sub in zip(self.shards, labels_by_shard):
            labels[shard.hosts] = np.asarray(sub, dtype=np.int64)
        return labels


def split_replicated(
    problem: ReplicatedProblem, min_hosts: int = 1
) -> ReplicatedPartition:
    """Partition a replicated-service problem by host-graph components.

    Every shard shares the parent's (services, L, L) cost stack by
    reference — components only restrict the host set, not the per-service
    label model — so splitting costs O(hosts + edges), not O(S·L²).
    """
    if min_hosts < 1:
        raise ValueError("min_hosts must be >= 1")
    n = problem.host_count
    edges = problem.edges
    lo = edges[:, 0] if len(edges) else np.zeros(0, dtype=np.int64)
    hi = edges[:, 1] if len(edges) else np.zeros(0, dtype=np.int64)
    component = _component_of(n, lo, hi)
    shard_id = _pack_components(component, min_hosts)
    shard_of = shard_id[component] if n else np.zeros(0, dtype=np.int64)
    n_shards = int(shard_id.max()) + 1 if len(shard_id) else 0

    host_order = np.argsort(shard_of, kind="stable")
    host_bounds = np.searchsorted(
        shard_of[host_order], np.arange(n_shards + 1)
    )
    e_shard = shard_of[lo] if len(lo) else np.zeros(0, dtype=np.int64)
    edge_order = np.argsort(e_shard, kind="stable")
    edge_bounds = np.searchsorted(
        e_shard[edge_order], np.arange(n_shards + 1)
    )

    shards: List[ReplicatedShard] = []
    for s in range(n_shards):
        hosts = host_order[host_bounds[s] : host_bounds[s + 1]]
        rows = edge_order[edge_bounds[s] : edge_bounds[s + 1]]
        shards.append(
            ReplicatedShard(
                index=s,
                hosts=hosts,
                edges=rows,
                problem=problem.subproblem(hosts, rows),
            )
        )
    return ReplicatedPartition(shards, n)
