"""Concurrent per-shard MAP solving over partitioned plans.

:class:`ShardedSolver` routes the message-passing solvers
(:class:`~repro.mrf.trws.TRWSSolver`, :class:`~repro.mrf.bp.LoopyBPSolver`
and, through :meth:`ShardedSolver.solve_replicated`, the batched
:class:`~repro.mrf.batched.BatchedTRWSSolver`) through the component
partition of :mod:`repro.mrf.partition` and solves the shards concurrently.
Components share no edges, so the decomposition is exact: shard energies,
dual bounds and optima simply add, and the stitched labelling of per-shard
optima is a global optimum.

Beyond parallelism, sharding wins even on one core: every shard runs its
*own* convergence schedule.  The monolithic solver sweeps the whole network
until its slowest component stalls — easy components pay the hard one's
iteration count — while shard solves stop individually, and the ICM refine
stage confines its sweeps to the component it is polishing.  Forest shards
skip message passing entirely: TRW-S is exact on trees, and the per-shard
dispatch realises that guarantee with one min-sum dynamic program over the
shard arrays (the plan-level analogue of ``TRWSSolver.solve``'s forest
path, which a monolithic ``solve_arrays`` over a mixed plan cannot take).

Execution backends (``executor=``):

* ``"threads"`` (default) — a thread pool; the hot loops are NumPy block
  operations that release the GIL, and shard plans are shared by
  reference.
* ``"processes"`` — :func:`repro.runner.run_jobs` process jobs for huge
  shards.  The shard *cost stacks* travel via a
  :class:`~repro.runner.shared.SharedArrayBlock` (one shared-memory
  segment holding the parent plan's deduplicated matrix stack) instead of
  being pickled per job; when shared memory is unavailable the matrices
  fall back to inline pickling, and when process pools are unavailable
  :func:`run_jobs` itself degrades to serial.
* ``"serial"`` — in-process loop (also used for single-shard partitions).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.mrf.batched import BatchedResult, BatchedTRWSSolver
from repro.mrf.bp import LoopyBPSolver
from repro.mrf.graph import PairwiseMRF
from repro.mrf.partition import (
    PlanPartition,
    Shard,
    _component_of,
    merge_shard_results,
    split_components,
    split_replicated,
)
from repro.mrf.solvers import SolverResult, SolveStats
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import MRFArrays, SolverScratch, SolverScratchPool
from repro.runner import Job, resolve_workers, run_jobs
from repro.runner.shared import SharedArrayBlock

__all__ = ["ShardedSolver", "solve_plan"]

_FACTORIES = {"trws": TRWSSolver, "bp": LoopyBPSolver}
_EXECUTORS = ("threads", "processes", "serial")

#: Per-process workspace of :func:`_solve_shard_job` — pool workers are
#: single-threaded, so one scratch per worker process is reused across all
#: the shard jobs it executes.
_JOB_SCRATCH: Optional[SolverScratch] = None


class ShardedSolver:
    """Solve a plan as independent shards, concurrently.

    Args:
        solver: base message-passing solver, ``"trws"`` or ``"bp"``.
        workers: concurrent shard solves (semantics of
            :func:`repro.runner.resolve_workers`; default ``-1`` = one per
            CPU).  Determinism never depends on the worker count — shard
            seeds derive from shard identity, results merge in shard order.
        executor: ``"threads"`` / ``"processes"`` / ``"serial"`` (see the
            module docstring).
        min_shard_nodes: pack components smaller than this into combined
            shards — the scheduling-granularity knob (still exact).
        seed: base tie-breaking seed; shard ``i`` solves with ``seed + i``
            so replicated components do not tie-break in lockstep.
        **solver_options: forwarded to every per-shard solver constructor.
    """

    name = "sharded"

    def __init__(
        self,
        solver: str = "trws",
        workers: Optional[int] = -1,
        executor: str = "threads",
        min_shard_nodes: int = 1,
        seed: Optional[int] = None,
        **solver_options: Any,
    ) -> None:
        if solver not in _FACTORIES:
            raise ValueError(
                f"sharded solving supports {sorted(_FACTORIES)}, got {solver!r}"
            )
        if executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        if min_shard_nodes < 1:
            raise ValueError("min_shard_nodes must be >= 1")
        self.solver_name = solver
        self.workers = workers
        self.executor = executor
        self.min_shard_nodes = min_shard_nodes
        self.seed = 0 if seed is None else int(seed)
        self.solver_options = dict(solver_options)
        self.name = f"{solver}-sharded"
        # Leased solver workspaces: concurrent shard solves each hold a
        # private SolverScratch for the duration of one shard (the
        # single-thread contract), and returned scratches are reused by
        # later shards — including across solve_arrays calls, which spawn
        # fresh thread pools whose threads would defeat thread-local reuse.
        self._workspaces = SolverScratchPool()

    # ----------------------------------------------------------------- API

    def solve(self, mrf: PairwiseMRF) -> SolverResult:
        """Partition + solve a :class:`PairwiseMRF` (registry protocol)."""
        if mrf.node_count == 0:
            return SolverResult(
                labels=[], energy=0.0, lower_bound=0.0, iterations=0,
                converged=True, solver=self.name,
            )
        return self.solve_arrays(MRFArrays(mrf))

    def solve_arrays(
        self,
        plan: MRFArrays,
        messages: Optional[np.ndarray] = None,
        extra_inits: Sequence[np.ndarray] = (),
        default_inits: bool = True,
        partition: Optional[PlanPartition] = None,
    ) -> SolverResult:
        """Solve a prebuilt plan shard-by-shard.

        Mirrors the monolithic ``solve_arrays`` contract: ``messages`` is
        the caller-owned global directed-message array (updated in place —
        shard slices are scattered back), ``extra_inits`` are global
        labellings sliced per shard for the TRW-S refine stage.  Pass a
        prebuilt ``partition`` (e.g. zone-grouped via
        :func:`~repro.mrf.partition.zone_groups`) to skip the component
        scan; it must partition exactly this plan.
        """
        if plan.node_count == 0:
            return SolverResult(
                labels=[], energy=0.0, lower_bound=0.0, iterations=0,
                converged=True, solver=self.name,
            )
        if partition is None:
            partition = split_components(plan, min_nodes=self.min_shard_nodes)
        greedy = (
            self.solver_name == "trws"
            and messages is None
            and self.solver_options.get("refine", True)
        )
        tasks = []
        for shard in partition:
            tasks.append(
                (
                    shard,
                    messages[shard.slots] if messages is not None else None,
                    tuple(
                        np.asarray(init, dtype=np.int64)[shard.nodes]
                        for init in extra_inits
                    ),
                )
            )
        batch_span = obs.span(
            "shard.batch", cat="shard",
            shards=len(partition), executor=self.executor,
        )
        with batch_span:
            results = self._run(plan, tasks, default_inits, greedy)
            if obs.enabled():
                # Per-shard skew: every shard result carries SolveStats
                # while tracing is on (process workers collect under the
                # runner's span capture and ship them back pickled).
                seconds = [
                    r.stats.total_seconds
                    for r, _msg in results
                    if r.stats is not None
                ]
                if seconds:
                    batch_span.add(
                        shard_seconds_max=max(seconds),
                        shard_seconds_min=min(seconds),
                        shard_seconds_mean=sum(seconds) / len(seconds),
                    )
        if messages is not None:
            partition.scatter_messages([msg for _result, msg in results], messages)
        return self._merge(partition, [result for result, _msg in results])

    def solve_replicated(self, problem) -> BatchedResult:
        """Shard-solve a replicated-service problem (TRW-S only).

        Partitions the host graph into components and runs one
        :class:`BatchedTRWSSolver` per shard.  Shards always solve on a
        thread pool (or serially): the replicated form's per-service cost
        stacks are shared by reference across every shard, which a
        process pool would forfeit by copying them per worker — so
        ``executor="processes"`` applies to :meth:`solve_arrays` only.
        """
        if self.solver_name != "trws":
            raise ValueError("solve_replicated requires solver='trws'")
        partition = split_replicated(problem, min_hosts=self.min_shard_nodes)
        if len(partition) <= 1:
            solver = BatchedTRWSSolver(seed=self.seed, **self.solver_options)
            return solver.solve(problem)

        def solve_one(shard) -> BatchedResult:
            """Solve one replicated shard on its own convergence schedule."""
            solver = BatchedTRWSSolver(
                seed=self.seed + shard.index, **self.solver_options
            )
            return solver.solve(shard.problem)

        count = min(resolve_workers(self.workers), len(partition))
        if count <= 1 or self.executor == "serial":
            results = [solve_one(shard) for shard in partition]
        else:
            with ThreadPoolExecutor(max_workers=count) as pool:
                results = list(pool.map(solve_one, partition.shards))
        merged = merge_shard_results(
            [r.energy for r in results],
            [r.lower_bound for r in results],
            [r.iterations for r in results],
            [r.converged for r in results],
        )
        return BatchedResult(
            labels=partition.stitch([r.labels for r in results]),
            energy=merged.energy,
            lower_bound=merged.lower_bound,
            iterations=merged.iterations,
            converged=merged.converged,
        )

    # ------------------------------------------------------------ execution

    def _solve_one(
        self,
        shard: Shard,
        messages: Optional[np.ndarray],
        inits: Tuple[np.ndarray, ...],
        default_inits: bool,
        greedy: bool,
    ) -> Tuple[SolverResult, Optional[np.ndarray]]:
        scratch = self._workspaces.acquire()
        try:
            with obs.span(
                "shard.solve", cat="shard",
                shard=int(shard.index), nodes=len(shard.nodes),
            ) as shard_span:
                result = _solve_plan(
                    shard.plan,
                    self.solver_name,
                    self.solver_options,
                    self.seed + shard.index,
                    messages,
                    inits,
                    default_inits,
                    greedy,
                    scratch=scratch,
                )
                shard_span.add(
                    energy=result.energy, iterations=result.iterations
                )
        finally:
            self._workspaces.release(scratch)
        return result, messages

    def _run(
        self,
        plan: MRFArrays,
        tasks: List[Tuple[Shard, Optional[np.ndarray], Tuple[np.ndarray, ...]]],
        default_inits: bool,
        greedy: bool,
    ) -> List[Tuple[SolverResult, Optional[np.ndarray]]]:
        count = min(resolve_workers(self.workers), len(tasks))
        if self.executor == "processes" and count > 1:
            return self._run_processes(plan, tasks, default_inits, greedy, count)
        if self.executor == "threads" and count > 1:
            with ThreadPoolExecutor(max_workers=count) as pool:
                return list(
                    pool.map(
                        lambda task: self._solve_one(
                            task[0], task[1], task[2], default_inits, greedy
                        ),
                        tasks,
                    )
                )
        return [
            self._solve_one(shard, msg, inits, default_inits, greedy)
            for shard, msg, inits in tasks
        ]

    def _run_processes(
        self,
        plan: MRFArrays,
        tasks: List[Tuple[Shard, Optional[np.ndarray], Tuple[np.ndarray, ...]]],
        default_inits: bool,
        greedy: bool,
        count: int,
    ) -> List[Tuple[SolverResult, Optional[np.ndarray]]]:
        """Dispatch shard solves as runner jobs, cost stacks via shm.

        Each job rebuilds its shard plan from raw parts in the worker; the
        parent plan's deduplicated cost stack crosses the process boundary
        once, as one shared-memory segment, instead of once per job over a
        pipe (shards index into it through their global ``cids``).
        """
        lmax = plan.lmax
        block: Optional[SharedArrayBlock] = None
        if plan.stacked:
            try:
                block = SharedArrayBlock.create(plan.cost[: plan.stacked])
            except OSError:
                block = None  # fall back to inline matrices
        try:
            jobs = []
            for shard, msg, inits in tasks:
                # Raw parts only — the worker rebuilds the shard plan, so
                # the parent never pays the slot/level derivation itself.
                kwargs: Dict[str, Any] = dict(
                    unaries=[
                        plan.unary[int(i), : plan.label_counts[int(i)]]
                        for i in shard.nodes
                    ],
                    edge_first=shard.local_first,
                    edge_second=shard.local_second,
                    edge_cid=shard.local_cid,
                    lmax=lmax,
                    solver_name=self.solver_name,
                    options=self.solver_options,
                    seed=self.seed + shard.index,
                    messages=msg,
                    inits=inits,
                    default_inits=default_inits,
                    greedy=greedy,
                    shard_index=shard.index,
                )
                if block is not None:
                    kwargs["cost_spec"] = block.spec
                    kwargs["cost_ids"] = shard.cids
                else:
                    kwargs["matrices"] = [plan.cost[int(k)] for k in shard.cids]
                jobs.append(Job(key=shard.index, fn=_solve_shard_job, kwargs=kwargs))
            outcome = run_jobs(jobs, workers=count)
        finally:
            if block is not None:
                block.unlink()
        return [outcome[shard.index] for shard, _msg, _inits in tasks]

    # -------------------------------------------------------------- merging

    def _merge(
        self, partition: PlanPartition, results: List[SolverResult]
    ) -> SolverResult:
        labels = partition.stitch([r.labels for r in results])
        merged = merge_shard_results(
            [r.energy for r in results],
            [r.lower_bound for r in results],
            [r.iterations for r in results],
            [r.converged for r in results],
        )
        return SolverResult(
            labels=[int(x) for x in labels],
            energy=merged.energy,
            lower_bound=merged.lower_bound,
            iterations=merged.iterations,
            converged=merged.converged,
            solver=self.name,
        )


def solve_plan(
    plan: MRFArrays,
    solver: str = "trws",
    seed: Optional[int] = None,
    scratch: Optional[SolverScratch] = None,
    **solver_options: Any,
) -> SolverResult:
    """Cold-solve one array plan with the standard dispatch.

    The public plan-level entry point (used by the compiled
    :func:`~repro.core.diversify.diversify` path): forest plans take the
    exact min-sum DP, loopy plans run the configured message-passing
    solver with the degree-descending greedy refine init — exactly the
    dispatch of ``TRWSSolver.solve`` on the equivalent ``PairwiseMRF``.

    A two-node plan with an agreement penalty solves to disagreeing
    labels at zero energy (one edge, no cycle — the exact forest DP):

    >>> import numpy as np
    >>> from repro.mrf.vectorized import MRFArrays
    >>> agree = np.array([[1.0, 0.0], [0.0, 1.0]])
    >>> plan = MRFArrays.from_parts(
    ...     [np.zeros(2), np.zeros(2)],
    ...     np.array([0]), np.array([1]), np.array([0]), [agree],
    ... )
    >>> result = solve_plan(plan)
    >>> result.energy
    0.0
    >>> result.labels[0] != result.labels[1]
    True
    """
    options = dict(solver_options)
    greedy = solver == "trws" and options.get("refine", True)
    return _solve_plan(
        plan,
        solver,
        options,
        0 if seed is None else int(seed),
        None,
        (),
        True,
        greedy,
        scratch=scratch,
    )


def _solve_plan(
    plan: MRFArrays,
    solver_name: str,
    options: Dict[str, Any],
    seed: int,
    messages: Optional[np.ndarray],
    inits: Tuple[np.ndarray, ...],
    default_inits: bool,
    greedy: bool,
    scratch: Optional[SolverScratch] = None,
) -> SolverResult:
    """Solve one shard plan — the shared core of every execution backend.

    Cold TRW-S shards whose graph is a forest dispatch to the exact
    min-sum DP (deterministic, certified, non-iterative); everything else
    runs the configured message-passing solver.  Warm starts (``messages``
    given) always take the message-passing path so the caller keeps a
    reusable fixed-point state.
    """
    if (
        solver_name == "trws"
        and messages is None
        and _is_forest_plan(plan)
    ):
        collect = obs.enabled()
        start = time.perf_counter() if collect else 0.0
        with obs.span("trws.forest", cat="solve", nodes=plan.node_count):
            labels = _solve_forest_arrays(plan)
            energy = plan.energy(labels)
        stats = (
            SolveStats(total_seconds=time.perf_counter() - start)
            if collect
            else None
        )
        return SolverResult(
            labels=[int(x) for x in labels],
            energy=energy,
            lower_bound=energy,
            iterations=1,
            converged=True,
            solver="trws",
            energy_trace=[energy],
            bound_trace=[energy],
            stats=stats,
        )
    solver = _FACTORIES[solver_name](**{**options, "seed": seed})
    if solver_name == "trws":
        if greedy:
            inits = tuple(inits) + (plan.greedy_labels(),)
        return solver.solve_arrays(
            plan, messages=messages, extra_inits=inits,
            default_inits=default_inits, scratch=scratch,
        )
    return solver.solve_arrays(plan, messages=messages, scratch=scratch)


def _is_forest_plan(plan: MRFArrays) -> bool:
    """True when the plan's graph is cycle-free.

    A graph is a forest iff ``edges == nodes - components`` (every edge
    joins two previously-unconnected nodes); the component labelling is
    the partitioner's own union-find.
    """
    if plan.edge_count == 0:
        return True
    component = _component_of(
        plan.node_count, plan.edge_first, plan.edge_second
    )
    return plan.edge_count == plan.node_count - (int(component.max()) + 1)


def _solve_forest_arrays(plan: MRFArrays) -> np.ndarray:
    """Exact min-sum dynamic programming on a forest plan.

    The array-level analogue of the forest dispatch in
    ``TRWSSolver.solve``: each component is rooted at its smallest node,
    min-marginal messages flow leaves → root, and an argmin backtrack
    assigns labels.  The ``+inf`` padding convention keeps every reduction
    exact (padded labels never win an argmin).
    """
    n = plan.node_count
    adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for e in range(plan.edge_count):
        i = int(plan.edge_first[e])
        j = int(plan.edge_second[e])
        cid = int(plan.edge_cid[e])
        adjacency[i].append((j, cid))                 # rows = i's labels
        adjacency[j].append((i, plan.stacked + cid))  # rows = j's labels
    labels = np.zeros(n, dtype=np.int64)
    visited = [False] * n
    for root in range(n):
        if visited[root]:
            continue
        order: List[Tuple[int, int, int]] = []  # (node, parent, cid rows=parent)
        stack = [(root, -1, -1)]
        visited[root] = True
        while stack:
            node, up_parent, up_cid = stack.pop()
            order.append((node, up_parent, up_cid))
            for neighbor, cid in adjacency[node]:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    # cid rows = node's labels; the parent→child orientation.
                    stack.append((neighbor, node, cid))
        accumulated = {node: plan.unary_inf[node].copy() for node, _p, _c in order}
        choice: Dict[int, np.ndarray] = {}
        for node, up_parent, up_cid in reversed(order):
            if up_parent < 0:
                continue
            totals = plan.cost[up_cid] + accumulated[node][None, :]
            choice[node] = np.argmin(totals, axis=1)
            accumulated[up_parent] += totals.min(axis=1)
        labels[root] = int(np.argmin(accumulated[root]))
        for node, up_parent, _up_cid in order:
            if up_parent >= 0:
                labels[node] = int(choice[node][labels[up_parent]])
    return labels


def _solve_shard_job(
    unaries,
    edge_first,
    edge_second,
    edge_cid,
    lmax,
    solver_name,
    options,
    seed,
    messages,
    inits,
    default_inits,
    greedy,
    cost_spec=None,
    cost_ids=None,
    matrices=None,
    shard_index=0,
) -> Tuple[SolverResult, Optional[np.ndarray]]:
    """Top-level shard solve for the process pool (picklable).

    Rebuilds the shard plan in the worker — from the shared-memory cost
    stack when a spec is given, from inline matrices otherwise — and
    returns ``(result, messages)`` so the parent can scatter the final
    message state back into its global array.  Under the runner's span
    capture the worker's ``shard.solve`` span (and the solver spans inside
    it) ride back to the parent trace with the job result.
    """
    global _JOB_SCRATCH
    if _JOB_SCRATCH is None:
        _JOB_SCRATCH = SolverScratch()
    with obs.span(
        "shard.solve", cat="shard", shard=int(shard_index), nodes=len(unaries)
    ) as shard_span:
        if cost_spec is not None:
            block = SharedArrayBlock.attach(cost_spec)
            try:
                stack = block.array()
                matrices = [np.array(stack[int(k)]) for k in cost_ids]
            finally:
                block.close()
        plan = MRFArrays.from_parts(
            unaries, edge_first, edge_second, edge_cid, matrices or [], lmax=lmax
        )
        result = _solve_plan(
            plan, solver_name, options, seed, messages, tuple(inits),
            default_inits, greedy, scratch=_JOB_SCRATCH,
        )
        shard_span.add(energy=result.energy, iterations=result.iterations)
    return result, messages
