"""Lagrangian dual decomposition across an edge-cut of one component.

:class:`~repro.mrf.sharded.ShardedSolver` (PR 3) is exact only because
connected components share no edges — on a real estate's giant connected
component it degenerates to a single shard and the monolithic solver.
This module lifts the shard tier to *arbitrary* connected plans with the
classic dual-decomposition construction over the edge cut of
:func:`repro.mrf.partition.cut_parts`:

* the plan's nodes are split into balanced blocks and every cut edge
  drags a **ghost copy** of its far endpoint into the owning shard, the
  home unary split evenly across the copies — so shard energies sum
  exactly to the global energy on any labelling where all copies agree;
* each copy ``c`` of a duplicated node carries a Lagrange multiplier
  vector ``λ_c`` added to its (split) unary.  The multipliers always sum
  to zero across a node's copies, so for **any** such λ the sum of the
  shard minima is a valid lower bound on the global optimum — each shard
  solve is certified by its own TRW-S dual (forest shards by the exact
  min-sum DP), and the certificates add;
* a projected-subgradient outer loop solves the shards concurrently each
  round (threads, or :class:`repro.runner.JobPool` worker processes with
  the cost stack crossing once via
  :class:`~repro.runner.shared.SharedArrayBlock`), stitches the home
  labels into a primal candidate (polished by plan-level ICM), and moves
  the multipliers of disagreeing copies toward consensus with a Polyak
  step — ``λ_c += α·(onehot(x_c) − mean-onehot)``, which preserves the
  zero-sum invariant and vanishes exactly at consensus.

The loop terminates on copy consensus, on a relative duality gap below
``gap_tolerance`` (the gap between the best primal energy and the best
certified bound — the quantity :attr:`DualSolveResult.duality_gap`
reports), or after ``max_rounds``.  Because the bound is certified every
round, the final result is *self-validating*: ``energy − lower_bound``
brackets how far from optimal the returned labelling can possibly be.
"""

from __future__ import annotations

import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.mrf.graph import PairwiseMRF
from repro.mrf.partition import CutPartition, _component_of, cut_parts
from repro.mrf.sharded import _solve_plan, solve_plan
from repro.mrf.solvers import SolverResult
from repro.mrf.vectorized import MRFArrays, SolverScratch, SolverScratchPool
from repro.runner import Job, JobPool, resolve_workers
from repro.runner.shared import SharedArrayBlock

__all__ = ["DualSolveResult", "DualDecompositionSolver"]

_EXECUTORS = ("threads", "processes", "serial")

#: Worker-process plan cache of :func:`_dual_shard_job`: one rebuilt shard
#: plan per (solve token, shard index), reused across outer rounds so a
#: round's job only patches boundary unaries.  Entries from older solves
#: (different token) are dropped lazily on first touch.
_WORKER_PLANS: Dict[Tuple[str, int], MRFArrays] = {}

#: Per-process solver workspace for pool workers (single-threaded, so one
#: scratch is safely reused by every shard job the worker executes).
_WORKER_SCRATCH: Optional[SolverScratch] = None


@dataclass
class DualSolveResult(SolverResult):
    """A :class:`~repro.mrf.solvers.SolverResult` plus the dual-loop story.

    Attributes:
        rounds: outer subgradient rounds executed (0 = monolithic
            fallback, e.g. a plan with no cut edges).
        duality_gap: ``energy − lower_bound`` of the returned labelling
            vs the best certified dual bound — the optimality bracket.
        consensus: True when every boundary copy agreed in some round
            (the decomposition reached a globally consistent labelling
            on its own, without the gap tolerance).
        parts: shard count of the cut partition actually used.
        cut_edge_count: edges crossing the cut (0 = fallback path).
    """

    rounds: int = 0
    duality_gap: float = float("inf")
    consensus: bool = False
    parts: int = 1
    cut_edge_count: int = 0


class DualDecompositionSolver:
    """TRW-S over a balanced edge cut, coupled by Lagrange multipliers.

    Registered as ``"trws-dual"``.  The construction requires certified
    per-shard lower bounds, so the base solver is fixed to TRW-S (forest
    shards dispatch to the exact min-sum DP every round — their subproblem
    bound is the subproblem optimum).

    Args:
        parts: target shard count for the balanced edge cut (clamped to
            the node count; 1 falls back to the monolithic solver).
        workers: concurrent shard solves per round (semantics of
            :func:`repro.runner.resolve_workers`).
        executor: ``"threads"`` (default), ``"processes"`` (a persistent
            :class:`~repro.runner.JobPool`; the deduplicated cost stack
            crosses the process boundary once per solve through a
            :class:`~repro.runner.shared.SharedArrayBlock`, per-round
            traffic is boundary unaries + warm messages), or ``"serial"``.
        max_rounds: outer subgradient round budget.
        gap_tolerance: stop when ``(best energy − best bound)`` falls to
            this fraction of ``max(1, |best energy|)``.
        step_scale: multiplier on the Polyak step
            ``(best energy − dual value) / ‖subgradient‖²``.
        seed: base tie-breaking seed; shard ``i`` solves with ``seed + i``.
        **solver_options: forwarded to every per-shard
            :class:`~repro.mrf.trws.TRWSSolver`.

    Determinism never depends on the worker count or executor: shard
    seeds derive from shard identity, rounds are synchronous barriers,
    and multiplier updates read the round's full labelling.
    """

    name = "trws-dual"

    def __init__(
        self,
        parts: int = 4,
        workers: Optional[int] = -1,
        executor: str = "threads",
        max_rounds: int = 40,
        gap_tolerance: float = 1e-6,
        step_scale: float = 1.0,
        seed: Optional[int] = None,
        solver: str = "trws",
        **solver_options: Any,
    ) -> None:
        if solver != "trws":
            raise ValueError(
                "dual decomposition requires certified shard bounds; "
                f"only solver='trws' is supported, got {solver!r}"
            )
        if executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        if parts < 1:
            raise ValueError("parts must be >= 1")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if gap_tolerance < 0:
            raise ValueError("gap_tolerance must be >= 0")
        self.parts = int(parts)
        self.workers = workers
        self.executor = executor
        self.max_rounds = int(max_rounds)
        self.gap_tolerance = float(gap_tolerance)
        self.step_scale = float(step_scale)
        self.seed = 0 if seed is None else int(seed)
        self.solver_options = dict(solver_options)
        # The outer loop is driven by certified shard bounds; without them
        # the dual value is -inf and no step size exists — so the bound
        # pass is mandatory here even where callers (e.g. the scalability
        # sweeps) disable it for plain timing runs.
        self.solver_options["compute_bound"] = True
        self._workspaces = SolverScratchPool()

    # ----------------------------------------------------------------- API

    def solve(self, mrf: PairwiseMRF) -> DualSolveResult:
        """Cut + solve a :class:`PairwiseMRF` (registry protocol)."""
        if mrf.node_count == 0:
            return DualSolveResult(
                labels=[], energy=0.0, lower_bound=0.0, iterations=0,
                converged=True, solver=self.name, duality_gap=0.0,
                consensus=True, parts=0,
            )
        return self.solve_arrays(MRFArrays(mrf))

    def solve_arrays(
        self,
        plan: MRFArrays,
        partition: Optional[CutPartition] = None,
    ) -> DualSolveResult:
        """Solve a prebuilt plan by dual decomposition.

        Pass a prebuilt ``partition`` (from
        :func:`~repro.mrf.partition.cut_parts`) to pin the cut — e.g. a
        caller-chosen block assignment; it must partition exactly this
        plan.  Without one, a balanced BFS cut into :attr:`parts` blocks
        is derived from the plan's own arrays.
        """
        if plan.node_count == 0:
            return DualSolveResult(
                labels=[], energy=0.0, lower_bound=0.0, iterations=0,
                converged=True, solver=self.name, duality_gap=0.0,
                consensus=True, parts=0,
            )
        if partition is None:
            partition = cut_parts(
                plan.unary_vectors(),
                plan.edge_first,
                plan.edge_second,
                plan.edge_cid,
                plan.matrix_stack(),
                lmax=plan.lmax,
                parts=self.parts,
            )
        if len(partition) <= 1 or len(partition.cut_edges) == 0:
            return self._monolithic(plan, partition)
        with obs.span(
            "dual.solve", cat="dual",
            parts=len(partition), cut_edges=len(partition.cut_edges),
            executor=self.executor,
        ):
            return self._iterate(plan, partition)

    # ------------------------------------------------------- fallback path

    def _monolithic(
        self, plan: MRFArrays, partition: CutPartition
    ) -> DualSolveResult:
        """No usable cut — run the standard monolithic dispatch."""
        result = solve_plan(
            plan, solver="trws", seed=self.seed, **self.solver_options
        )
        return DualSolveResult(
            labels=result.labels,
            energy=result.energy,
            lower_bound=result.lower_bound,
            iterations=result.iterations,
            converged=result.converged,
            solver=self.name,
            energy_trace=result.energy_trace,
            bound_trace=result.bound_trace,
            rounds=0,
            duality_gap=result.optimality_gap,
            consensus=True,
            parts=max(1, len(partition)),
            cut_edge_count=0,
        )

    # ------------------------------------------------------ the outer loop

    def _iterate(
        self, plan: MRFArrays, partition: CutPartition
    ) -> DualSolveResult:
        shards = partition.shards
        # Forest-ness from the raw local arrays (no shard plan needed):
        # forest shards re-solve exactly (min-sum DP) every round, loopy
        # shards keep one persistent warm message array across rounds.
        forest = []
        messages: List[Optional[np.ndarray]] = []
        for shard in shards:
            component = _component_of(
                len(shard.nodes), shard.local_first, shard.local_second
            )
            is_forest = len(shard.edges) == len(shard.nodes) - (
                int(component.max()) + 1 if len(shard.nodes) else 0
            )
            forest.append(is_forest)
            messages.append(
                None
                if is_forest
                else np.zeros((2 * len(shard.edges), plan.lmax))
            )

        # Multiplier state: per boundary node, base split unary (what the
        # shard plans were built with) and a zero-sum (copies, labels)
        # multiplier block.
        unary_vectors = plan.unary_vectors()
        base: Dict[int, np.ndarray] = {}
        lam: Dict[int, np.ndarray] = {}
        for entry in partition.boundary:
            base[entry.node] = np.asarray(
                unary_vectors[entry.node], dtype=float
            ) / len(entry.copies)
            lam[entry.node] = np.zeros((len(entry.copies), entry.labels))

        best_labels: Optional[np.ndarray] = None
        best_energy = float("inf")
        best_bound = float("-inf")
        energy_trace: List[float] = []
        bound_trace: List[float] = []
        iterations = 0
        consensus = False
        converged = False
        rounds = 0

        backend = self._make_backend(plan, partition, forest, messages)
        try:
            updates = self._boundary_updates(partition, base, lam)
            for rounds in range(1, self.max_rounds + 1):
                with obs.span("dual.round", cat="dual", round=rounds):
                    solved = backend(updates)
                labels_by_shard = [np.asarray(r[0], dtype=np.int64) for r in solved]
                dual_value = float(sum(r[2] for r in solved))
                iterations += int(sum(r[3] for r in solved))
                best_bound = max(best_bound, dual_value)

                stitched = partition.stitch(labels_by_shard)
                scratch = self._workspaces.acquire()
                try:
                    polished = plan.icm(stitched, scratch=scratch)
                finally:
                    self._workspaces.release(scratch)
                energy = plan.energy(polished)
                if energy < best_energy:
                    best_energy = energy
                    best_labels = polished
                energy_trace.append(best_energy)
                bound_trace.append(dual_value)

                if not partition.disagreements(labels_by_shard):
                    consensus = True
                    converged = True
                    break
                gap = best_energy - best_bound
                if gap <= self.gap_tolerance * max(1.0, abs(best_energy)):
                    converged = True
                    break
                if rounds == self.max_rounds:
                    break
                self._subgradient_step(
                    partition, lam, labels_by_shard, best_energy, dual_value
                )
                updates = self._boundary_updates(partition, base, lam)
        finally:
            closer = getattr(backend, "close", None)
            if closer is not None:
                closer()

        assert best_labels is not None
        return DualSolveResult(
            labels=[int(x) for x in best_labels],
            energy=best_energy,
            lower_bound=best_bound,
            iterations=iterations,
            converged=converged,
            solver=self.name,
            energy_trace=energy_trace,
            bound_trace=bound_trace,
            rounds=rounds,
            duality_gap=best_energy - best_bound,
            consensus=consensus,
            parts=len(partition),
            cut_edge_count=len(partition.cut_edges),
        )

    # ------------------------------------------------- multiplier algebra

    def _boundary_updates(
        self,
        partition: CutPartition,
        base: Dict[int, np.ndarray],
        lam: Dict[int, np.ndarray],
    ) -> List[Dict[int, np.ndarray]]:
        """Effective boundary unaries per shard: ``base/k + λ_copy``."""
        updates: List[Dict[int, np.ndarray]] = [
            {} for _ in range(len(partition))
        ]
        for entry in partition.boundary:
            block = lam[entry.node]
            for c, (s, i) in enumerate(entry.copies):
                updates[s][i] = base[entry.node] + block[c]
        return updates

    def _subgradient_step(
        self,
        partition: CutPartition,
        lam: Dict[int, np.ndarray],
        labels_by_shard: Sequence[np.ndarray],
        best_energy: float,
        dual_value: float,
    ) -> None:
        """One projected-subgradient move with a Polyak step size.

        The subgradient at a boundary node is, per copy,
        ``onehot(x_copy) − mean-onehot`` — it sums to zero over the
        copies (the projection onto the zero-sum multiplier space is
        built in) and vanishes exactly where copies agree, so agreeing
        nodes are left untouched.
        """
        grads: List[Tuple[int, np.ndarray]] = []
        norm2 = 0.0
        for entry in partition.boundary:
            k = len(entry.copies)
            onehots = np.zeros((k, entry.labels))
            for c, (s, i) in enumerate(entry.copies):
                onehots[c, int(labels_by_shard[s][i])] = 1.0
            grad = onehots - onehots.mean(axis=0)
            if np.any(grad):
                grads.append((entry.node, grad))
                norm2 += float((grad * grad).sum())
        if norm2 <= 0.0 or not np.isfinite(dual_value):
            return
        step = self.step_scale * max(best_energy - dual_value, 1e-12) / norm2
        for node, grad in grads:
            lam[node] += step * grad

    # --------------------------------------------------------- round solves

    def _make_backend(
        self,
        plan: MRFArrays,
        partition: CutPartition,
        forest: Sequence[bool],
        messages: List[Optional[np.ndarray]],
    ):
        """A callable ``updates -> [(labels, energy, bound, iters, conv)]``.

        Threads/serial solve the shard plans in this process (plans built
        once, unaries patched in place each round); processes keep a
        persistent :class:`JobPool` whose workers cache rebuilt shard
        plans for the solve's lifetime.
        """
        count = min(resolve_workers(self.workers), len(partition))
        if self.executor == "processes" and count > 1:
            return _ProcessBackend(self, plan, partition, forest, messages, count)
        pool = (
            ThreadPoolExecutor(max_workers=count)
            if self.executor != "serial" and count > 1
            else None
        )
        shard_list = partition.shards

        def solve_one(index: int, updates) -> Tuple[np.ndarray, float, float, int, bool]:
            """Patch one shard's boundary unaries and re-solve it."""
            shard = shard_list[index]
            for local, vector in updates[index].items():
                shard.plan.set_unary(int(local), vector)
            scratch = self._workspaces.acquire()
            try:
                result = _solve_plan(
                    shard.plan,
                    "trws",
                    self.solver_options,
                    self.seed + shard.index,
                    messages[index],
                    (),
                    True,
                    False,
                    scratch=scratch,
                )
            finally:
                self._workspaces.release(scratch)
            return (
                np.asarray(result.labels, dtype=np.int64),
                result.energy,
                result.lower_bound,
                result.iterations,
                result.converged,
            )

        def run_round(updates):
            """Solve every shard once under the current multipliers."""
            if pool is None:
                return [solve_one(i, updates) for i in range(len(shard_list))]
            return list(
                pool.map(lambda i: solve_one(i, updates), range(len(shard_list)))
            )

        if pool is not None:
            run_round.close = lambda: pool.shutdown(wait=True)
        return run_round


class _ProcessBackend:
    """Round executor over a persistent :class:`JobPool`.

    Created once per solve: the parent plan's deduplicated cost stack is
    copied into one :class:`SharedArrayBlock` (falling back to inline
    matrices when shared memory is unavailable), and every worker caches
    the shard plans it rebuilds under this solve's unique token — later
    rounds on a cached plan only patch boundary unaries.  Warm messages
    for loopy shards ride the job kwargs out and the results back, so the
    parent owns the authoritative message state regardless of which
    worker solves a shard in which round.
    """

    def __init__(
        self,
        solver: DualDecompositionSolver,
        plan: MRFArrays,
        partition: CutPartition,
        forest: Sequence[bool],
        messages: List[Optional[np.ndarray]],
        count: int,
    ) -> None:
        self.solver = solver
        self.plan = plan
        self.partition = partition
        self.forest = list(forest)
        self.messages = messages
        self.token = uuid.uuid4().hex
        self.block: Optional[SharedArrayBlock] = None
        self.pool = JobPool(workers=count)
        if plan.stacked:
            try:
                self.block = SharedArrayBlock.create(plan.cost[: plan.stacked])
            except OSError:
                self.block = None  # fall back to inline matrices
        # Split home unaries exactly as the shard plan factories do, so a
        # worker rebuild reproduces the partition's plans bit-for-bit.
        copies = np.ones(plan.node_count, dtype=np.int64)
        for entry in partition.boundary:
            copies[entry.node] = len(entry.copies)
        self._unaries = [
            [
                np.asarray(
                    plan.unary[int(v), : plan.label_counts[int(v)]],
                    dtype=float,
                )
                / copies[int(v)]
                for v in shard.nodes
            ]
            for shard in partition.shards
        ]

    def __call__(self, updates) -> List[Tuple[np.ndarray, float, float, int, bool]]:
        """Dispatch one round of shard jobs and fold messages back."""
        jobs = []
        for index, shard in enumerate(self.partition.shards):
            kwargs: Dict[str, Any] = dict(
                token=self.token,
                shard_index=shard.index,
                unaries=self._unaries[index],
                edge_first=shard.local_first,
                edge_second=shard.local_second,
                edge_cid=shard.local_cid,
                lmax=self.plan.lmax,
                options=self.solver.solver_options,
                seed=self.solver.seed + shard.index,
                boundary={
                    int(i): vector for i, vector in updates[index].items()
                },
                messages=self.messages[index],
            )
            if self.block is not None:
                kwargs["cost_spec"] = self.block.spec
                kwargs["cost_ids"] = shard.cids
            else:
                kwargs["matrices"] = [
                    self.plan.cost[int(k)] for k in shard.cids
                ]
            jobs.append(Job(key=shard.index, fn=_dual_shard_job, kwargs=kwargs))
        outcome = self.pool.run(jobs)
        solved = []
        for index, shard in enumerate(self.partition.shards):
            labels, energy, bound, iters, conv, msg = outcome[shard.index]
            if msg is not None:
                self.messages[index] = np.asarray(msg)
            solved.append(
                (np.asarray(labels, dtype=np.int64), energy, bound, iters, conv)
            )
        return solved

    def close(self) -> None:
        """Tear down the pool and the shared cost segment."""
        pool = getattr(self, "pool", None)
        if pool is not None:
            pool.close()
        if self.block is not None:
            self.block.unlink()
            self.block = None


def _dual_shard_job(
    token: str,
    shard_index: int,
    unaries,
    edge_first,
    edge_second,
    edge_cid,
    lmax,
    options,
    seed,
    boundary,
    messages,
    cost_spec=None,
    cost_ids=None,
    matrices=None,
):
    """Top-level dual-round shard solve for the process pool (picklable).

    Rebuilds (or fetches from the worker's per-solve cache) the shard
    plan, patches the round's boundary unaries, and solves with the
    shipped warm messages.  Returns ``(labels, energy, lower_bound,
    iterations, converged, messages)`` — messages ride back so the parent
    can re-ship them next round to whichever worker draws this shard.
    """
    global _WORKER_SCRATCH
    if _WORKER_SCRATCH is None:
        _WORKER_SCRATCH = SolverScratch()
    for key in [k for k in _WORKER_PLANS if k[0] != token]:
        del _WORKER_PLANS[key]
    plan = _WORKER_PLANS.get((token, shard_index))
    with obs.span(
        "dual.shard", cat="dual", shard=int(shard_index), nodes=len(unaries)
    ) as span:
        if plan is None:
            if cost_spec is not None:
                block = SharedArrayBlock.attach(cost_spec)
                try:
                    stack = block.array()
                    matrices = [np.array(stack[int(k)]) for k in cost_ids]
                finally:
                    block.close()
            plan = MRFArrays.from_parts(
                unaries, edge_first, edge_second, edge_cid,
                matrices or [], lmax=lmax,
            )
            _WORKER_PLANS[(token, shard_index)] = plan
        for local, vector in boundary.items():
            plan.set_unary(int(local), vector)
        result = _solve_plan(
            plan, "trws", options, seed, messages, (), True, False,
            scratch=_WORKER_SCRATCH,
        )
        span.add(energy=result.energy, iterations=result.iterations)
    return (
        np.asarray(result.labels, dtype=np.int64),
        result.energy,
        result.lower_bound,
        result.iterations,
        result.converged,
        messages,
    )
