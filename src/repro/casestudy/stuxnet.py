"""The Stuxnet-inspired IT/OT-convergence case study (paper Section VII).

This module reconstructs the paper's Fig. 3 — a typical ICS architecture
integrating legacy OT zones (Operations Network, Control Network) with
modern IT zones (Corporate sub-network, DMZ, Clients Network, Remote
Clients, Vendors Support Network) — together with the Table IV product
catalogue, the legacy pins and the two constraint sets:

* **C1, host constraints**: hosts ``z4``, ``e1``, ``r1`` and ``v1`` are
  required by company policy to run specific products.
* **C2, product constraints**: C1 plus global undesirable combinations —
  Internet Explorer must not be configured on Linux operating systems (the
  paper's example is eliminating IE10-on-Ubuntu14.04 assignments).

Reconstruction notes (the paper's figure is a diagram, not a machine-readable
artefact):

* Legacy hosts — the grey rows of Table IV, all of the Operations and
  Control networks — are modelled as *single-candidate* ranges: no
  flexibility to diversify is exactly a one-product choice set.
* The link set realises Fig. 3's intra-zone LANs plus the firewall
  white-list rules printed on the figure (``c2,c4 → z4``; ``p2,p3 → z4``;
  ``z4 → t1,t2``; ``p1 → t1,e1,r1,v1``; ``t1,t2 → e1,r1,v1``) as
  undirected edges, the paper's "more general undirected edges" stance.
* Three field-interface hosts ``f1``-``f3`` (shown in Fig. 4 next to the
  PLCs) are included as legacy Control-network equipment; the S7 PLCs
  themselves carry no IT products and are not modelled as hosts.
* Product availability per role follows the paper's stated requirements
  (WinCC needs a Windows OS and IE; WSUS needs Windows plus a Microsoft
  database server) and Table IV's candidate pools; where the scan of the
  table is ambiguous we chose the widest range consistent with the role.

Entry points for the evaluation are ``c1``, ``c4`` (Corporate), ``e3``
(Clients), ``r4`` (Remote Clients) and ``v1`` (Vendors); the attack target
is the WinCC server ``t5`` with direct access to the field devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.constraints import (
    GLOBAL,
    AvoidCombination,
    ConstraintSet,
    FixProduct,
)
from repro.network.model import Network
from repro.nvd.datasets import (
    CHROME,
    DEBIAN_80,
    IE8,
    IE10,
    MARIADB_10,
    MSSQL_08,
    MSSQL_14,
    MYSQL_55,
    UBUNTU_1404,
    WIN_7,
    WIN_XP,
    paper_similarity_table,
)
from repro.nvd.similarity import SimilarityTable

__all__ = [
    "OS_SERVICE",
    "WB_SERVICE",
    "DB_SERVICE",
    "ZONES",
    "ENTRY_POINTS",
    "TARGET",
    "build_network",
    "legacy_hosts",
    "host_constraints",
    "product_constraints",
    "CaseStudy",
    "stuxnet_case_study",
]

#: The three essential services of the paper's experiments (Section VII-A).
OS_SERVICE = "os"
WB_SERVICE = "browser"
DB_SERVICE = "database"

#: Entry hosts used in the paper's five MTTC experiment sets.
ENTRY_POINTS: Tuple[str, ...] = ("c1", "c4", "e3", "r4", "v1")

#: The attack target: the WinCC server with direct field-device access.
TARGET = "t5"

# Candidate pools reused across roles (Table IV columns).
_ANY_OS = (WIN_7, UBUNTU_1404, DEBIAN_80)
_ANY_WB = (IE8, IE10, CHROME)
_ANY_DB = (MSSQL_14, MYSQL_55, MARIADB_10)
_WINCC_OS = (WIN_XP, WIN_7)       # WinCC requires a Windows OS
_WINCC_WB = (IE8, IE10)           # ... and Internet Explorer

#: Zone → hosts, following Fig. 3.
ZONES: Dict[str, Tuple[str, ...]] = {
    "corporate": ("c1", "c2", "c3", "c4"),
    "dmz": ("z1", "z2", "z3", "z4"),
    "operations": ("p1", "p2", "p3"),
    "control": ("t1", "t2", "t3", "t4", "t5", "t6", "f1", "f2", "f3"),
    "clients": ("e1", "e2", "e3", "e4"),
    "remote": ("r1", "r2", "r3", "r4", "r5"),
    "vendors": ("v1", "v2", "v3"),
}

#: Host → role description (documentation and reporting).
ROLES: Dict[str, str] = {
    "c1": "WinCC Web Client",
    "c2": "OS Web Client",
    "c3": "Data Monitor Web Client",
    "c4": "Historian Web Client",
    "z1": "Virusscan Server",
    "z2": "WSUS Server",
    "z3": "Web Navigator Server",
    "z4": "OS Web Server",
    "p1": "Historian Web Client",
    "p2": "SIMATIC IT Server",
    "p3": "SIMATIC SQL Server",
    "t1": "Maintenance Server",
    "t2": "OS Client",
    "t3": "WinCC Client",
    "t4": "OS Server",
    "t5": "WinCC Server",
    "t6": "WinCC Server",
    "f1": "Field Interface Server",
    "f2": "Field Interface Server",
    "f3": "Field Interface Server",
    "e1": "WinCC Web Client",
    "e2": "OS Web Client",
    "e3": "Client Workstation",
    "e4": "Client Historian",
    "r1": "WinCC Web Client",
    "r2": "OS Web Client",
    "r3": "Client Workstation",
    "r4": "Client Workstation",
    "r5": "Client Historian",
    "v1": "Historian Web Client",
    "v2": "Vendors Workstation",
    "v3": "Vendors Workstation",
}

# Host → service → candidate products (the paper's Table IV).  Legacy hosts
# (grey rows) have single-candidate ranges.
_CATALOG: Dict[str, Dict[str, Tuple[str, ...]]] = {
    # Corporate sub-network -------------------------------------------------
    "c1": {OS_SERVICE: _WINCC_OS, WB_SERVICE: _WINCC_WB},
    "c2": {OS_SERVICE: _ANY_OS, WB_SERVICE: (IE10, CHROME)},
    "c3": {OS_SERVICE: _ANY_OS, WB_SERVICE: _ANY_WB},
    "c4": {OS_SERVICE: (WIN_7, UBUNTU_1404), WB_SERVICE: _ANY_WB},
    # DMZ -------------------------------------------------------------------
    "z1": {OS_SERVICE: _ANY_OS, DB_SERVICE: (MYSQL_55, MARIADB_10)},
    "z2": {OS_SERVICE: (WIN_7,), DB_SERVICE: (MSSQL_08, MSSQL_14)},
    "z3": {OS_SERVICE: (WIN_7,), WB_SERVICE: _WINCC_WB, DB_SERVICE: (MSSQL_14, MYSQL_55)},
    "z4": {OS_SERVICE: _ANY_OS, WB_SERVICE: _ANY_WB, DB_SERVICE: _ANY_DB},
    # Operations network (legacy) -------------------------------------------
    "p1": {OS_SERVICE: (WIN_7,), WB_SERVICE: (IE8,)},
    "p2": {OS_SERVICE: (WIN_XP,), DB_SERVICE: (MSSQL_08,)},
    "p3": {OS_SERVICE: (WIN_XP,), DB_SERVICE: (MSSQL_08,)},
    # Control network (legacy) ----------------------------------------------
    "t1": {OS_SERVICE: (WIN_7,), DB_SERVICE: (MSSQL_14,)},
    "t2": {OS_SERVICE: (WIN_7,), WB_SERVICE: (IE8,)},
    "t3": {OS_SERVICE: (WIN_7,), WB_SERVICE: (IE8,)},
    "t4": {OS_SERVICE: (WIN_7,), DB_SERVICE: (MSSQL_14,)},
    "t5": {OS_SERVICE: (WIN_7,), DB_SERVICE: (MSSQL_14,)},
    "t6": {OS_SERVICE: (WIN_XP,), DB_SERVICE: (MSSQL_08,)},
    "f1": {OS_SERVICE: (WIN_7,), DB_SERVICE: (MYSQL_55,)},
    "f2": {OS_SERVICE: (WIN_7,), DB_SERVICE: (MSSQL_14,)},
    "f3": {OS_SERVICE: (WIN_7,)},
    # Clients network ---------------------------------------------------------
    "e1": {OS_SERVICE: _WINCC_OS, WB_SERVICE: _WINCC_WB, DB_SERVICE: (MSSQL_08, MSSQL_14)},
    "e2": {OS_SERVICE: _ANY_OS, WB_SERVICE: _ANY_WB},
    "e3": {OS_SERVICE: _ANY_OS, WB_SERVICE: _ANY_WB},
    "e4": {OS_SERVICE: _ANY_OS, DB_SERVICE: _ANY_DB},
    # Remote clients ----------------------------------------------------------
    "r1": {OS_SERVICE: _WINCC_OS, WB_SERVICE: _WINCC_WB, DB_SERVICE: (MSSQL_08, MSSQL_14)},
    "r2": {OS_SERVICE: _ANY_OS, WB_SERVICE: _ANY_WB},
    "r3": {OS_SERVICE: _ANY_OS, WB_SERVICE: _ANY_WB},
    "r4": {OS_SERVICE: _ANY_OS, WB_SERVICE: (IE10, CHROME)},
    "r5": {OS_SERVICE: _ANY_OS, DB_SERVICE: _ANY_DB},
    # Vendors support network --------------------------------------------------
    "v1": {OS_SERVICE: (WIN_7, UBUNTU_1404), WB_SERVICE: _WINCC_WB},
    "v2": {OS_SERVICE: _ANY_OS, WB_SERVICE: _ANY_WB},
    "v3": {OS_SERVICE: _ANY_OS, WB_SERVICE: (IE10, CHROME)},
}

# Undirected links: intra-zone LANs plus Fig. 3's firewall white-list rules.
_LINKS: Tuple[Tuple[str, str], ...] = (
    # Corporate LAN (ring — the zone switch, not a full mesh)
    ("c1", "c2"), ("c2", "c3"), ("c3", "c4"), ("c1", "c4"),
    # DMZ LAN
    ("z1", "z2"), ("z2", "z3"), ("z3", "z4"), ("z1", "z4"),
    # Corporate → DMZ (rule: c2, c4 → z4; web clients → navigator server)
    ("c2", "z4"), ("c4", "z4"), ("c1", "z3"), ("c3", "z3"),
    # Operations LAN
    ("p1", "p2"), ("p2", "p3"), ("p1", "p3"),
    # Operations → DMZ (rule: p2, p3 → z4)
    ("p2", "z4"), ("p3", "z4"), ("p1", "z3"),
    # DMZ → Control (rule: z4 → t1, t2)
    ("z4", "t1"), ("z4", "t2"),
    # Control LAN
    ("t1", "t2"), ("t1", "t3"), ("t2", "t3"),
    ("t2", "t4"), ("t3", "t5"), ("t4", "t5"),
    ("t4", "t6"), ("t5", "t6"), ("t1", "t6"),
    # Control → field interfaces
    ("t4", "f1"), ("t5", "f2"), ("t6", "f3"),
    # Operations ↔ Control/clients (rule: p1 → t1, e1, r1, v1)
    ("p1", "t1"), ("p1", "e1"), ("p1", "r1"), ("p1", "v1"),
    # Control ↔ web clients (rule: t1, t2 → e1, r1, v1)
    ("t1", "e1"), ("t1", "r1"), ("t1", "v1"),
    ("t2", "e1"), ("t2", "r1"), ("t2", "v1"),
    # Clients LAN (+ uplink to the OS web server)
    ("e1", "e2"), ("e2", "e3"), ("e3", "e4"),
    ("e2", "z4"),
    # Remote clients LAN (+ uplink)
    ("r1", "r2"), ("r2", "r3"), ("r3", "r4"), ("r4", "r5"),
    ("r2", "z4"),
    # Vendors support LAN
    ("v1", "v2"), ("v2", "v3"), ("v1", "v3"),
)


def build_network() -> Network:
    """The case-study network: 32 hosts, Fig. 3 topology, Table IV catalog."""
    network = Network()
    for zone_hosts in ZONES.values():
        for host in zone_hosts:
            network.add_host(host, _CATALOG[host])
    network.add_links(_LINKS)
    return network


def legacy_hosts() -> List[str]:
    """Hosts with no diversification flexibility (single-candidate ranges)."""
    return [
        host
        for host, services in _CATALOG.items()
        if all(len(products) == 1 for products in services.values())
    ]


def host_constraints() -> ConstraintSet:
    """C1 — company policy pins on z4, e1, r1 and v1 (Section VII-B)."""
    return ConstraintSet(
        [
            FixProduct("z4", OS_SERVICE, WIN_7),
            FixProduct("z4", WB_SERVICE, IE10),
            FixProduct("z4", DB_SERVICE, MYSQL_55),
            FixProduct("e1", OS_SERVICE, WIN_7),
            FixProduct("e1", WB_SERVICE, IE8),
            FixProduct("e1", DB_SERVICE, MSSQL_14),
            FixProduct("r1", OS_SERVICE, WIN_7),
            FixProduct("r1", WB_SERVICE, IE8),
            FixProduct("r1", DB_SERVICE, MSSQL_14),
            FixProduct("v1", OS_SERVICE, WIN_7),
            FixProduct("v1", WB_SERVICE, IE8),
        ]
    )


def product_constraints() -> ConstraintSet:
    """C2 — C1 plus global undesirable combinations (no IE on Linux)."""
    constraints = host_constraints()
    for linux in (UBUNTU_1404, DEBIAN_80):
        for explorer in (IE8, IE10):
            constraints.add(
                AvoidCombination(GLOBAL, OS_SERVICE, linux, WB_SERVICE, explorer)
            )
    return constraints


@dataclass(frozen=True)
class CaseStudy:
    """Bundle of everything needed to rerun the paper's Section VII.

    Attributes:
        network: the Fig. 3 network.
        similarity: the paper's published similarity tables (II/III + DB).
        c1: host-constraint set (α̂_C1 experiments).
        c2: product-constraint set (α̂_C2 experiments).
        entries: the five MTTC entry points.
        target: the attack target (t5).
    """

    network: Network
    similarity: SimilarityTable
    c1: ConstraintSet
    c2: ConstraintSet
    entries: Tuple[str, ...]
    target: str


def stuxnet_case_study() -> CaseStudy:
    """Build the complete case-study bundle.

    >>> case = stuxnet_case_study()
    >>> len(case.network)
    32
    >>> case.target
    't5'
    """
    return CaseStudy(
        network=build_network(),
        similarity=paper_similarity_table(),
        c1=host_constraints(),
        c2=product_constraints(),
        entries=ENTRY_POINTS,
        target=TARGET,
    )
