"""The paper's Stuxnet-inspired ICS case study (Section VII)."""

from repro.casestudy.stuxnet import (
    CaseStudy,
    DB_SERVICE,
    ENTRY_POINTS,
    OS_SERVICE,
    TARGET,
    WB_SERVICE,
    ZONES,
    build_network,
    host_constraints,
    legacy_hosts,
    product_constraints,
    stuxnet_case_study,
)

__all__ = [
    "CaseStudy",
    "stuxnet_case_study",
    "build_network",
    "host_constraints",
    "product_constraints",
    "legacy_hosts",
    "ZONES",
    "ENTRY_POINTS",
    "TARGET",
    "OS_SERVICE",
    "WB_SERVICE",
    "DB_SERVICE",
]
