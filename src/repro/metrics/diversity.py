"""The BN-based network diversity metric d_bn (paper Definition 6).

Given a diversified network, an entry host and a target host::

    d_bn = P′(target) / P(target)

where ``P`` is the probability of the target being infected *with* the
vulnerability similarities of the assigned products taken into account, and
``P′`` is the similarity-free reference (every exploitable edge at the
average zero-day rate ``p_avg``).  ``P′`` depends only on the topology and
service layout, so it is constant across assignments — the paper's Table V
prints the same ``log P′`` on every row.  Because the infection rate is
monotone in similarity, ``P ≥ P′`` always, hence ``d_bn ≤ 1``; larger
values mean the assignment is closer to the ideal fully-diverse network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.metrics.bayes import (
    compromise_probability,
    monte_carlo_compromise_probability,
)
from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.sim.malware import InfectionModel
from repro.sim.attacker import make_attacker

__all__ = ["DiversityReport", "diversity_metric"]


@dataclass(frozen=True)
class DiversityReport:
    """d_bn and its ingredients for one assignment.

    Attributes:
        p_with: P(target) with similarity (the assignment under test).
        p_without: P′(target), the similarity-free reference.
        d_bn: ``p_without / p_with`` (1.0 when both are 0).
        entry / target: evaluated endpoints.
    """

    p_with: float
    p_without: float
    d_bn: float
    entry: str
    target: str

    @property
    def log10_p_with(self) -> float:
        """log10 P — the paper's Table V reports log-probabilities."""
        return math.log10(self.p_with) if self.p_with > 0 else float("-inf")

    @property
    def log10_p_without(self) -> float:
        """log10 P′."""
        return math.log10(self.p_without) if self.p_without > 0 else float("-inf")

    def row(self, label: str) -> str:
        """Format as a row of the paper's Table V."""
        return (
            f"{label:<18} logP'={self.log10_p_without:8.3f} "
            f"logP={self.log10_p_with:8.3f} d_bn={self.d_bn:.5f}"
        )


def diversity_metric(
    network: Network,
    assignment: ProductAssignment,
    similarity: SimilarityTable,
    entry: str,
    target: str,
    p_avg: float = 0.1,
    p_max: float = 0.9,
    attacker: str = "uniform",
    method: str = "bn",
    samples: int = 20000,
    seed: Optional[int] = None,
) -> DiversityReport:
    """Evaluate d_bn for one assignment (paper Definition 6).

    Args:
        network / assignment / similarity: the diversified network.
        entry: intrusion host (prior probability 1.0, as in Section VII-C1).
        target: the asset whose compromise probability is measured.
        p_avg / p_max: infection-rate calibration (see
            :mod:`repro.sim.malware`).
        attacker: ``"uniform"`` (paper's BN evaluation) or
            ``"sophisticated"``.
        method: ``"bn"`` — analytic noisy-OR (default) — or
            ``"montecarlo"`` for the percolation estimator.
        samples / seed: Monte-Carlo parameters (ignored for ``"bn"``).

    Returns:
        A :class:`DiversityReport`; ``report.d_bn`` is the metric.
    """
    model = InfectionModel(
        similarity=similarity,
        p_avg=p_avg,
        p_max=p_max,
        attacker=make_attacker(attacker),
    )
    reference = model.without_similarity()

    if method == "bn":
        p_with = compromise_probability(network, assignment, model, entry, target)
        p_without = compromise_probability(
            network, assignment, reference, entry, target
        )
    elif method == "montecarlo":
        p_with = monte_carlo_compromise_probability(
            network, assignment, model, entry, target, samples=samples, seed=seed
        )
        p_without = monte_carlo_compromise_probability(
            network, assignment, reference, entry, target, samples=samples, seed=seed
        )
    else:
        raise ValueError(f"unknown method {method!r}; use 'bn' or 'montecarlo'")

    if p_with > 0:
        d_bn = min(1.0, p_without / p_with)
    else:
        d_bn = 1.0 if p_without == 0 else 0.0
    return DiversityReport(
        p_with=p_with, p_without=p_without, d_bn=d_bn, entry=entry, target=target
    )
