"""Bayesian-network compromise-probability inference (paper Section VI).

The paper constructs a Bayesian network over the hosts to estimate the
probability of a target being infected from an entry host, extending attack
paths with *attack nodes* that capture which product the attacker exploits
on each edge.  We reproduce that as follows:

1. **Attack DAG.**  The undirected host graph is oriented into a DAG by
   breadth-first layering from the entry host: an edge points from the
   endpoint closer to the entry to the farther one; ties (same BFS layer)
   are broken by host order.  Malware flows outwards from the entry, which
   is exactly the BN the paper builds from "attack paths" plus stepping
   stones.
2. **Attack nodes.**  The per-edge choice among exploitable products is the
   attacker strategy inside :class:`~repro.sim.malware.InfectionModel`
   (uniform choice in the paper's BN evaluation), giving each directed edge
   one attempt probability.
3. **Noisy-OR inference.**  A host is infected if any inbound parent edge
   fires: ``P(v) = 1 − Π_parents (1 − P(u) · rate(u→v))``, entry prior 1.0
   (configurable).  On trees this is exact; on loopy graphs it is the
   standard noisy-OR approximation of percolation reachability, and
   :func:`monte_carlo_compromise_probability` provides an unbiased
   estimator for validation.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.sim.malware import InfectionModel

__all__ = [
    "AttackBayesianNetwork",
    "compromise_probability",
    "monte_carlo_compromise_probability",
]


class AttackBayesianNetwork:
    """The BFS-layered attack DAG with noisy-OR inference.

    >>> from repro.network import chain_network
    >>> from repro.nvd import SimilarityTable
    >>> from repro.network.assignment import ProductAssignment
    >>> net = chain_network(3)
    >>> a = ProductAssignment(net)
    >>> for h in net.hosts: a.assign(h, "svc", "p0")
    >>> model = InfectionModel(SimilarityTable(), p_avg=0.5, p_max=0.5)
    >>> bn = AttackBayesianNetwork(net, a, model, entry="h0")
    >>> round(bn.probability("h2"), 6)
    0.25
    """

    def __init__(
        self,
        network: Network,
        assignment: ProductAssignment,
        model: InfectionModel,
        entry: str,
        entry_prior: float = 1.0,
    ) -> None:
        if entry not in network:
            raise KeyError(f"unknown entry host {entry!r}")
        if not 0.0 <= entry_prior <= 1.0:
            raise ValueError(f"entry prior must be a probability: {entry_prior}")
        self._network = network
        self._entry = entry
        self._entry_prior = entry_prior
        self._layers = self._bfs_layers(network, entry)
        self._parents = self._orient_edges(network, self._layers)
        self._rates = model.rate_matrix(network, assignment)
        self._probabilities = self._infer()

    # ------------------------------------------------------------- queries

    @property
    def entry(self) -> str:
        """The entry host of the metric's attack model."""
        return self._entry

    def layer_of(self, host: str) -> Optional[int]:
        """BFS layer of a host (None when unreachable from the entry)."""
        return self._layers.get(host)

    def parents_of(self, host: str) -> List[str]:
        """The DAG parents of ``host`` (attack predecessors)."""
        return list(self._parents.get(host, ()))

    def probability(self, host: str) -> float:
        """P(host infected); 0.0 for hosts unreachable from the entry."""
        if host not in self._network:
            raise KeyError(f"unknown host {host!r}")
        return self._probabilities.get(host, 0.0)

    def probabilities(self) -> Dict[str, float]:
        """P(infected) for every reachable host."""
        return dict(self._probabilities)

    # ------------------------------------------------------------ internals

    @staticmethod
    def _bfs_layers(network: Network, entry: str) -> Dict[str, int]:
        layers = {entry: 0}
        queue = deque([entry])
        while queue:
            host = queue.popleft()
            for neighbor in network.neighbors(host):
                if neighbor not in layers:
                    layers[neighbor] = layers[host] + 1
                    queue.append(neighbor)
        return layers

    @staticmethod
    def _orient_edges(
        network: Network, layers: Dict[str, int]
    ) -> Dict[str, List[str]]:
        """Parent lists under the (layer, host-order) topological order."""
        order = {host: position for position, host in enumerate(network.hosts)}

        def rank(host: str) -> Tuple[int, int]:
            """Stable (layer, declaration-order) sort key for a host."""
            return (layers[host], order[host])

        parents: Dict[str, List[str]] = {}
        for a, b in network.links:
            if a not in layers or b not in layers:
                continue  # outside the entry's component
            source, sink = (a, b) if rank(a) < rank(b) else (b, a)
            parents.setdefault(sink, []).append(source)
        return parents

    def _infer(self) -> Dict[str, float]:
        """Noisy-OR sweep in (layer, host-order) topological order."""
        order = {host: position for position, host in enumerate(self._network.hosts)}
        reachable = sorted(
            self._layers, key=lambda host: (self._layers[host], order[host])
        )
        probabilities: Dict[str, float] = {}
        for host in reachable:
            if host == self._entry:
                probabilities[host] = self._entry_prior
                continue
            escape = 1.0
            for parent in self._parents.get(host, ()):
                rate = self._rates[(parent, host)]
                escape *= 1.0 - probabilities[parent] * rate
            probabilities[host] = 1.0 - escape
        return probabilities


def compromise_probability(
    network: Network,
    assignment: ProductAssignment,
    model: InfectionModel,
    entry: str,
    target: str,
    entry_prior: float = 1.0,
) -> float:
    """P(target infected) under the noisy-OR attack BN.

    This is the quantity ``P_{h_t = T}`` of the paper's Definition 6.
    """
    bn = AttackBayesianNetwork(
        network, assignment, model, entry=entry, entry_prior=entry_prior
    )
    return bn.probability(target)


def monte_carlo_compromise_probability(
    network: Network,
    assignment: ProductAssignment,
    model: InfectionModel,
    entry: str,
    target: str,
    samples: int = 10000,
    seed: Optional[int] = None,
) -> float:
    """Unbiased percolation estimate of P(target infected).

    Each sample opens every directed edge independently with its attempt
    probability and checks whether the target is reachable from the entry
    through open edges.  Used in tests to validate the noisy-OR
    approximation (they agree exactly on trees).
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if target not in network:
        raise KeyError(f"unknown target host {target!r}")
    rng = random.Random(seed)
    rates = model.rate_matrix(network, assignment)
    neighbors = {host: network.neighbors(host) for host in network.hosts}

    hits = 0
    for _ in range(samples):
        # Sample undirected-edge openness once per link; with symmetric
        # rates a directed re-sample would double-count attempts.
        open_edges: Set[Tuple[str, str]] = set()
        for a, b in network.links:
            if rng.random() < rates[(a, b)]:
                open_edges.add((a, b))
                open_edges.add((b, a))
        # BFS over open edges.
        seen = {entry}
        queue = deque([entry])
        while queue:
            host = queue.popleft()
            if host == target:
                hits += 1
                break
            for neighbor in neighbors[host]:
                if neighbor not in seen and (host, neighbor) in open_edges:
                    seen.add(neighbor)
                    queue.append(neighbor)
    return hits / samples
