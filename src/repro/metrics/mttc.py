"""Mean-time-to-compromise (paper Section VII-C2).

MTTC is the mean number of simulation ticks the attacker needs to reach the
target, estimated over a batch of independent agent-based runs (the paper
uses 1,000 NetLogo runs per table cell).  Runs that never reach the target
within the tick cap are *censored*; following the conservative convention
they enter the mean at the cap value, and the result records how many were
censored so shapes remain interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.sim.attacker import make_attacker
from repro.sim.engine import PropagationSimulator, SimulationRun
from repro.sim.malware import InfectionModel

__all__ = ["MTTCResult", "mean_time_to_compromise"]


@dataclass(frozen=True)
class MTTCResult:
    """MTTC estimate for one (assignment, entry) pair.

    Attributes:
        mttc: mean ticks to compromise (censored runs counted at the cap).
        success_rate: fraction of runs that reached the target.
        runs: number of simulation runs.
        censored: runs that hit the tick cap without compromising.
        max_ticks: the cap used.
        entry / target: evaluated endpoints.
    """

    mttc: float
    success_rate: float
    runs: int
    censored: int
    max_ticks: int
    entry: str
    target: str

    def row(self, label: str) -> str:
        """Format as a cell-row of the paper's Table VI."""
        return (
            f"{label:<14} entry={self.entry:<4} MTTC={self.mttc:8.3f} ticks "
            f"(success {100 * self.success_rate:5.1f}%, "
            f"{self.censored}/{self.runs} censored)"
        )


def mean_time_to_compromise(
    network: Network,
    assignment: ProductAssignment,
    similarity: SimilarityTable,
    entry: str,
    target: str,
    runs: int = 1000,
    max_ticks: int = 1000,
    p_avg: float = 0.1,
    p_max: float = 0.9,
    attacker: str = "sophisticated",
    seed: Optional[int] = None,
) -> MTTCResult:
    """Estimate MTTC by agent-based simulation.

    The default attacker is ``"sophisticated"`` — the paper's MTTC
    experiments model attackers who reconnoitre and always use the
    highest-success-rate exploit.

    >>> from repro.network import chain_network
    >>> from repro.core import mono_assignment
    >>> net = chain_network(4)
    >>> result = mean_time_to_compromise(
    ...     net, mono_assignment(net), SimilarityTable(),
    ...     entry="h0", target="h3", runs=50, seed=1)
    >>> result.runs
    50
    """
    model = InfectionModel(
        similarity=similarity,
        p_avg=p_avg,
        p_max=p_max,
        attacker=make_attacker(attacker),
    )
    simulator = PropagationSimulator(network, assignment, model)
    batch: List[SimulationRun] = simulator.run_many(
        entry, target, runs=runs, max_ticks=max_ticks, seed=seed
    )
    times = [
        run.ticks_to_target if run.ticks_to_target is not None else max_ticks
        for run in batch
    ]
    successes = sum(1 for run in batch if run.target_compromised)
    return MTTCResult(
        mttc=sum(times) / len(times),
        success_rate=successes / len(batch),
        runs=len(batch),
        censored=len(batch) - successes,
        max_ticks=max_ticks,
        entry=entry,
        target=target,
    )
