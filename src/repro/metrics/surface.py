"""Attack-surface analysis across multiple entry points.

The paper evaluates MTTC from five different entry hosts (Table VI) but
reports the diversity metric from a single entry.  In practice the defender
does not know where the intrusion will start; this module aggregates the
BN compromise probabilities over an *entry distribution*:

* :func:`attack_surface` — per-entry target-compromise probabilities plus
  their expectation (under a uniform or custom entry prior) and worst case;
* :func:`host_risk_profile` — for a fixed entry, P(infected) for *every*
  host, ranked — the "which hosts are stepping stones" view;
* :func:`criticality_ranking` — leave-one-out link analysis: how much the
  target's compromise probability drops when a link is severed, ranking
  the network's riskiest connections (where to put a firewall or a data
  diode first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.bayes import AttackBayesianNetwork, compromise_probability
from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.sim.malware import InfectionModel

__all__ = [
    "AttackSurfaceReport",
    "attack_surface",
    "host_risk_profile",
    "criticality_ranking",
]


@dataclass(frozen=True)
class AttackSurfaceReport:
    """Aggregated compromise risk over entry points.

    Attributes:
        per_entry: entry host → P(target compromised from that entry).
        expected: Σ prior(entry) · P(entry) — risk under the entry prior.
        worst_entry / worst: the most dangerous entry and its probability.
        target: the evaluated target host.
    """

    per_entry: Dict[str, float]
    expected: float
    worst_entry: str
    worst: float
    target: str

    def format(self) -> str:
        """Multi-line attack-surface report."""
        lines = [f"attack surface for target {self.target}:"]
        for entry, probability in sorted(
            self.per_entry.items(), key=lambda item: -item[1]
        ):
            marker = "  <- worst" if entry == self.worst_entry else ""
            lines.append(f"  from {entry:<8} P = {probability:.6f}{marker}")
        lines.append(f"  expected over entries: {self.expected:.6f}")
        return "\n".join(lines)


def attack_surface(
    network: Network,
    assignment: ProductAssignment,
    model: InfectionModel,
    entries: Sequence[str],
    target: str,
    prior: Optional[Mapping[str, float]] = None,
) -> AttackSurfaceReport:
    """Evaluate the target's compromise probability from several entries.

    Args:
        entries: candidate intrusion hosts.
        prior: optional entry-probability weights (normalised internally);
            uniform when omitted.

    Raises:
        ValueError: empty entries, or a prior that covers none of them.
    """
    if not entries:
        raise ValueError("need at least one entry host")
    per_entry = {
        entry: compromise_probability(network, assignment, model, entry, target)
        for entry in entries
    }
    if prior is None:
        weights = {entry: 1.0 for entry in entries}
    else:
        weights = {entry: float(prior.get(entry, 0.0)) for entry in entries}
        if any(value < 0 for value in weights.values()):
            raise ValueError("entry prior weights must be non-negative")
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("entry prior assigns zero mass to every entry")
    expected = sum(
        weights[entry] / total * probability
        for entry, probability in per_entry.items()
    )
    worst_entry = max(per_entry, key=lambda entry: per_entry[entry])
    return AttackSurfaceReport(
        per_entry=per_entry,
        expected=expected,
        worst_entry=worst_entry,
        worst=per_entry[worst_entry],
        target=target,
    )


def host_risk_profile(
    network: Network,
    assignment: ProductAssignment,
    model: InfectionModel,
    entry: str,
) -> List[Tuple[str, float]]:
    """P(infected) for every host, most endangered first.

    Unreachable hosts appear with probability 0.0 so the profile always
    covers the whole network.
    """
    bn = AttackBayesianNetwork(network, assignment, model, entry=entry)
    profile = [(host, bn.probability(host)) for host in network.hosts]
    profile.sort(key=lambda item: (-item[1], item[0]))
    return profile


def criticality_ranking(
    network: Network,
    assignment: ProductAssignment,
    model: InfectionModel,
    entry: str,
    target: str,
    top: Optional[int] = None,
) -> List[Tuple[Tuple[str, str], float]]:
    """Rank links by how much severing them reduces P(target).

    Returns ``[(link, risk_reduction), ...]`` sorted by reduction (largest
    first); a reduction of 0 means the link is irrelevant to this
    entry/target pair.  ``top`` truncates the ranking.

    The baseline assignment is re-evaluated on each link-removed copy of
    the network (leave-one-out), so the cost is O(links) BN inferences —
    fine for case-study-sized networks.
    """
    baseline = compromise_probability(network, assignment, model, entry, target)
    ranking: List[Tuple[Tuple[str, str], float]] = []
    for link in network.links:
        reduced_net = _without_link(network, link)
        reduced_assignment = ProductAssignment(
            reduced_net, assignment.as_dict()
        )
        probability = compromise_probability(
            reduced_net, reduced_assignment, model, entry, target
        )
        ranking.append((link, baseline - probability))
    ranking.sort(key=lambda item: (-item[1], item[0]))
    return ranking[:top] if top is not None else ranking


def _without_link(network: Network, link: Tuple[str, str]) -> Network:
    """A copy of the network with one link removed."""
    clone = Network()
    for host in network.hosts:
        clone.add_host(
            host,
            {
                service: network.candidates(host, service)
                for service in network.services_of(host)
            },
        )
    removed = (min(link), max(link))
    clone.add_links(
        existing for existing in network.links if existing != removed
    )
    return clone
