"""Effective-richness diversity metric d1 (Zhang et al. [16]).

The paper's related work (Section II) surveys three diversity metrics from
Zhang et al.; the paper itself adapts the BN-based d3.  This module
implements **d1**, the biodiversity-inspired metric "based on the number
and distribution of distinct resources inside a network":

    d1 = r / n,     r = exp( −Σ_i p_i ln p_i )   (true diversity of order 1)

where ``p_i`` is the fraction of installations using product ``i`` and
``n`` the total number of installations.  ``r`` is the *effective* number
of distinct products — the count of equally-used products that would give
the same Shannon entropy — so d1 = 1/n for a mono-culture and t/n when the
t products are perfectly balanced.

We additionally provide a similarity-aware variant following the same
authors' discussion (and Leinster-Cobbold diversity): products that share
vulnerabilities should not count as fully distinct, so the effective count
uses the *ordinariness* Σ_j Z_ij p_j with Z the similarity matrix::

    r_Z = 1 / Σ_i p_i (Z p)_i        (order-2 similarity-sensitive)

With Z = I this reduces to the Simpson effective number.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = ["RichnessReport", "effective_richness", "similarity_sensitive_richness"]


@dataclass(frozen=True)
class RichnessReport:
    """Effective richness of one assignment.

    Attributes:
        installations: total number of (host, service) installations n.
        distinct: number of distinct products actually used t.
        effective: effective product count r (1 ≤ r ≤ t).
        d1: r / n — Zhang et al.'s d1 in (0, 1].
        per_service: service → effective count, for drill-down.
    """

    installations: int
    distinct: int
    effective: float
    d1: float
    per_service: Dict[str, float]

    def row(self, label: str) -> str:
        """One formatted row (label-prefixed) for the richness table."""
        return (
            f"{label:<18} n={self.installations:<4} distinct={self.distinct:<3} "
            f"effective={self.effective:7.3f} d1={self.d1:.4f}"
        )


def effective_richness(
    network: Network, assignment: ProductAssignment
) -> RichnessReport:
    """Shannon effective richness of a complete (or partial) assignment."""
    counts: Counter = Counter()
    per_service_counts: Dict[str, Counter] = {}
    for host in network.hosts:
        for service, product in assignment.products_at(host).items():
            counts[product] += 1
            per_service_counts.setdefault(service, Counter())[product] += 1

    total = sum(counts.values())
    if total == 0:
        return RichnessReport(0, 0, 0.0, 0.0, {})
    effective = _shannon_effective(counts)
    per_service = {
        service: _shannon_effective(service_counts)
        for service, service_counts in per_service_counts.items()
    }
    return RichnessReport(
        installations=total,
        distinct=len(counts),
        effective=effective,
        d1=effective / total,
        per_service=per_service,
    )


def similarity_sensitive_richness(
    network: Network,
    assignment: ProductAssignment,
    similarity: SimilarityTable,
) -> float:
    """Similarity-sensitive effective product count (Leinster-Cobbold, q=2).

    Counts two products sharing vulnerabilities as partially "the same":
    the effective count is 1/Σ_i p_i (Z p)_i with Z_ij = sim(i, j).  A
    mono-culture scores 1.0 regardless of Z; a balanced pair of products
    with similarity s scores 2/(1+s).
    """
    counts: Counter = Counter()
    for host in network.hosts:
        for product in assignment.products_at(host).values():
            counts[product] += 1
    total = sum(counts.values())
    if total == 0:
        return 0.0
    products = sorted(counts)
    p = np.array([counts[name] / total for name in products])
    z = similarity.matrix(products)
    ordinariness = z @ p
    return float(1.0 / np.dot(p, ordinariness))


def _shannon_effective(counts: Counter) -> float:
    total = sum(counts.values())
    entropy = -sum(
        (c / total) * math.log(c / total) for c in counts.values() if c > 0
    )
    return math.exp(entropy)
