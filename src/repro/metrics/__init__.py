"""Evaluation metrics: BN-based diversity (d_bn) and MTTC.

``repro.metrics.bayes``
    Attack-DAG construction (BFS-layered from the entry host) and noisy-OR
    compromise-probability inference, plus a Monte-Carlo percolation
    estimator for validation.
``repro.metrics.diversity``
    The network diversity metric ``d_bn = P′ / P`` (paper Definition 6).
``repro.metrics.mttc``
    Mean-time-to-compromise from the agent-based simulator (Section VII-C2).
"""

from repro.metrics.bayes import (
    AttackBayesianNetwork,
    compromise_probability,
    monte_carlo_compromise_probability,
)
from repro.metrics.diversity import DiversityReport, diversity_metric
from repro.metrics.mttc import MTTCResult, mean_time_to_compromise
from repro.metrics.richness import (
    RichnessReport,
    effective_richness,
    similarity_sensitive_richness,
)
from repro.metrics.effort import (
    AttackEffortResult,
    exploit_equivalence_classes,
    k_zero_day_safety,
    least_attack_effort,
)
from repro.metrics.surface import (
    AttackSurfaceReport,
    attack_surface,
    criticality_ranking,
    host_risk_profile,
)

__all__ = [
    "AttackBayesianNetwork",
    "compromise_probability",
    "monte_carlo_compromise_probability",
    "DiversityReport",
    "diversity_metric",
    "MTTCResult",
    "mean_time_to_compromise",
    "RichnessReport",
    "effective_richness",
    "similarity_sensitive_richness",
    "AttackEffortResult",
    "least_attack_effort",
    "k_zero_day_safety",
    "exploit_equivalence_classes",
    "AttackSurfaceReport",
    "attack_surface",
    "host_risk_profile",
    "criticality_ranking",
]
