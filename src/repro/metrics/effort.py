"""Least-attacking-effort metrics: d2 and k-zero-day safety.

Two more metrics from the paper's related work, adapted to its
multi-product host model:

* **Least attacking effort (Zhang et al.'s d2 ingredient).**  To traverse
  an edge the attacker must hold an exploit for one product of a shared
  service on the *destination* host; to reach the target from the entry it
  must do so along every hop of some path.  The least attacking effort is
  the minimum number of **distinct products** the attacker must be able to
  exploit, minimised jointly over paths and per-hop product choices.  A
  mono-culture needs 1 exploit end-to-end; a well-diversified network
  forces a fresh exploit per hop.

* **k-zero-day safety (Wang et al. [15]), similarity-aware.**  The paper
  argues a single zero-day often works across *similar* products, so
  counting distinct products overstates effort.  We group products into
  exploit-equivalence classes — connected components of the product graph
  with edges where ``sim ≥ threshold`` — and count distinct **classes**
  instead.  ``threshold=1.0 - ε`` recovers the distinct-product count;
  small thresholds merge everything a single zero-day family could cover.
  The network is *k-zero-day safe* for the measured k: compromising the
  target needs at least k distinct zero-days.

Exact computation is a shortest-path over (host, exploit-set) states —
exponential in the worst case (the problem generalises set cover), so the
implementation uses exact Dijkstra with a state cap and falls back to a
label-correcting beam otherwise; the exact/approximate status is reported.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = [
    "AttackEffortResult",
    "least_attack_effort",
    "k_zero_day_safety",
    "exploit_equivalence_classes",
]


@dataclass(frozen=True)
class AttackEffortResult:
    """Outcome of a least-effort search.

    Attributes:
        effort: minimum number of distinct exploits (products or classes).
        exploits: one witness minimal exploit set.
        path: one witness attack path achieving that effort.
        exact: False when the state cap forced the beam fallback, in which
            case ``effort`` is an upper bound on the true minimum.
    """

    effort: int
    exploits: FrozenSet[str]
    path: Tuple[str, ...]
    exact: bool

    def row(self, label: str) -> str:
        """One formatted row (label-prefixed) for the effort table."""
        kind = "=" if self.exact else "<="
        return (
            f"{label:<18} effort {kind} {self.effort}  "
            f"path: {' -> '.join(self.path)}  exploits: {sorted(self.exploits)}"
        )


def least_attack_effort(
    network: Network,
    assignment: ProductAssignment,
    entry: str,
    target: str,
    classes: Optional[Dict[str, str]] = None,
    max_states: int = 200_000,
    beam_width: int = 64,
) -> AttackEffortResult:
    """Minimum number of distinct exploits to reach ``target`` from ``entry``.

    Args:
        network / assignment: the diversified network under evaluation.
        entry: the attacker's foothold (no exploit needed for it).
        target: the asset to reach.
        classes: optional product → class-name map; efforts then count
            distinct classes (used by :func:`k_zero_day_safety`).
        max_states: cap on Dijkstra states before degrading to a beam
            search (result then flagged ``exact=False``).
        beam_width: per-host beam kept in the fallback.

    Raises:
        KeyError: unknown entry/target host.
        ValueError: when the target is unreachable through exploitable
            edges at all.
    """
    if entry not in network:
        raise KeyError(f"unknown entry host {entry!r}")
    if target not in network:
        raise KeyError(f"unknown target host {target!r}")

    def exploit_options(source: str, destination: str) -> List[str]:
        """Exploit identities able to carry the edge source→destination."""
        options: List[str] = []
        for service in network.shared_services(source, destination):
            product = assignment.get(destination, service)
            if product is None or assignment.get(source, service) is None:
                continue
            options.append(classes.get(product, product) if classes else product)
        return options

    if entry == target:
        return AttackEffortResult(0, frozenset(), (entry,), True)

    # Dijkstra over (host, frozen exploit set); cost = |set|.
    start = (entry, frozenset())
    queue: List[Tuple[int, int, str, FrozenSet[str], Tuple[str, ...]]] = [
        (0, 0, entry, frozenset(), (entry,))
    ]
    counter = itertools.count()
    # Dominance: keep per-host the set of minimal exploit sets seen.
    seen: Dict[str, List[FrozenSet[str]]] = {entry: [frozenset()]}
    states = 0
    exact = True

    while queue:
        effort, _, host, exploits, path = heapq.heappop(queue)
        if host == target:
            return AttackEffortResult(effort, exploits, path, exact)
        states += 1
        if states > max_states:
            exact = False
            result = _beam_fallback(
                network, exploit_options, entry, target, beam_width
            )
            if result is None:
                break
            return result
        for neighbor in network.neighbors(host):
            if neighbor in path:
                continue
            for exploit in exploit_options(host, neighbor):
                new_set = exploits | {exploit}
                if _dominated(seen.get(neighbor, ()), new_set):
                    continue
                seen.setdefault(neighbor, []).append(new_set)
                heapq.heappush(
                    queue,
                    (
                        len(new_set),
                        next(counter),
                        neighbor,
                        new_set,
                        path + (neighbor,),
                    ),
                )
    raise ValueError(
        f"target {target!r} is not reachable from {entry!r} through "
        f"exploitable edges"
    )


def exploit_equivalence_classes(
    similarity: SimilarityTable, threshold: float
) -> Dict[str, str]:
    """Group products into zero-day equivalence classes.

    Products are in the same class when connected by similarity ≥
    ``threshold`` (transitively) — the assumption being that one zero-day
    family covers the whole group.  Returns product → canonical class name
    (the lexicographically smallest member).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    products = similarity.products
    parent = {name: name for name in products}

    def find(name: str) -> str:
        """Union-find root with path compression."""
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for index, a in enumerate(products):
        for b in products[index + 1 :]:
            if similarity.get(a, b) >= threshold:
                root_a, root_b = find(a), find(b)
                if root_a != root_b:
                    parent[max(root_a, root_b)] = min(root_a, root_b)
    return {name: find(name) for name in products}


def k_zero_day_safety(
    network: Network,
    assignment: ProductAssignment,
    similarity: SimilarityTable,
    entry: str,
    target: str,
    threshold: float = 0.3,
    **options,
) -> AttackEffortResult:
    """k-zero-day safety with similarity-grouped exploits.

    The returned ``effort`` is k: the minimum number of distinct zero-day
    *families* (product groups with pairwise-chained similarity ≥
    ``threshold``) needed to compromise the target.  Products absent from
    the similarity table form singleton classes.
    """
    classes = exploit_equivalence_classes(similarity, threshold)
    return least_attack_effort(
        network, assignment, entry, target, classes=classes, **options
    )


# ------------------------------------------------------------------ internal


def _dominated(existing, candidate: FrozenSet[str]) -> bool:
    """True when some recorded exploit set is a subset of the candidate."""
    return any(recorded <= candidate for recorded in existing)


def _beam_fallback(
    network: Network,
    exploit_options,
    entry: str,
    target: str,
    beam_width: int,
) -> Optional[AttackEffortResult]:
    """Label-correcting sweep keeping a bounded beam of exploit sets."""
    beams: Dict[str, List[Tuple[FrozenSet[str], Tuple[str, ...]]]] = {
        entry: [(frozenset(), (entry,))]
    }
    for _ in range(len(network.hosts)):
        changed = False
        for host in network.hosts:
            for exploits, path in list(beams.get(host, ())):
                for neighbor in network.neighbors(host):
                    if neighbor in path:
                        continue
                    for exploit in exploit_options(host, neighbor):
                        new_set = exploits | {exploit}
                        bucket = beams.setdefault(neighbor, [])
                        if _dominated((s for s, _ in bucket), new_set):
                            continue
                        bucket.append((new_set, path + (neighbor,)))
                        bucket.sort(key=lambda item: len(item[0]))
                        del bucket[beam_width:]
                        changed = True
        if not changed:
            break
    candidates = beams.get(target)
    if not candidates:
        return None
    exploits, path = min(candidates, key=lambda item: len(item[0]))
    return AttackEffortResult(len(exploits), exploits, path, False)
