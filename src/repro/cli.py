"""Command-line interface: ``repro <experiment>``.

Runs any of the paper's experiments from the shell and prints the
corresponding table/figure.  Subcommands:

* ``fig1`` — motivational-example probabilities.
* ``fig4`` — the three case-study optimal assignments.
* ``table2`` / ``table3`` — the published similarity tables.
* ``table5`` — the diversity metric d_bn.
* ``table6`` — MTTC simulation (``--runs`` controls the batch size).
* ``table7`` / ``table8`` / ``table9`` — scalability sweeps; ``--workers N``
  spreads the grid cells over N processes (see :mod:`repro.runner`;
  ``REPRO_WORKERS`` in the environment overrides the default) and
  ``--shards N`` solves each cell over its connected-component shards
  (``--shards cut`` dual-decomposes the giant component instead; tuned by
  ``--dual-parts``/``--dual-rounds``/``--dual-gap``).
* ``synthetic-nvd`` — regenerate similarity tables from the synthetic feed.

Extension commands (beyond the paper's tables):

* ``effort`` — least attacking effort and k-zero-day safety.
* ``richness`` — effective-richness diversity metric d1.
* ``plan`` — greedy budgeted upgrade plan from the mono-culture.
* ``adversary`` — attacker-knowledge sweep (the paper's future work).
* ``sensitivity`` — similarity-perturbation sensitivity (``--workers`` too).
* ``stream`` — incremental re-diversification under synthetic network churn
  (the :mod:`repro.stream` engine; ``--compare-cold`` prints per-event
  speedups over a cold rebuild+solve, ``--sharded`` re-solves only the
  connected-component shards each event touches).
* ``serve`` — the always-on diversification daemon (:mod:`repro.service`):
  HTTP event ingestion with backpressure, snapshot-consistent reads,
  Prometheus metrics, on-disk snapshots and ``--restore`` warm restarts.
* ``trace`` — run a workload (``diversify`` / ``stream`` /
  ``serve-replay``) under the :mod:`repro.obs` tracer and emit a Chrome
  trace-event file (Perfetto / ``chrome://tracing`` viewable) plus a
  per-layer/top-spans text breakdown (``docs/observability.md``).
* ``dot`` — Graphviz export of the case study with similarity heat.

``docs/cli.md`` catalogues every subcommand and flag.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import experiments
from repro.nvd.datasets import (
    paper_browser_similarity,
    paper_database_similarity,
    paper_os_similarity,
)

__all__ = ["main", "build_parser"]


def _buckets_value(value: str):
    """``--solve-buckets`` takes comma-separated ascending seconds."""
    try:
        return tuple(float(part) for part in value.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--solve-buckets takes comma-separated floats, got {value!r}"
        ) from None


def _add_log_level(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--log-level`` flag (repro.obs.logging levels)."""
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="threshold of the structured log output (default info)",
    )


def _shards_value(value: str):
    """``--shards`` accepts a worker count, ``zones``, or ``cut``."""
    if value in ("zones", "cut"):
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--shards takes an integer, 'zones' or 'cut', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` entry point."""
    from repro.mrf.solvers import active_kernel_backend, available_solvers

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Scalable Approach to Enhancing ICS Resilience "
            "by Network Diversity' (DSN 2020)"
        ),
        epilog=(
            f"solvers: {', '.join(available_solvers())} | "
            f"active kernel backend: {active_kernel_backend()}"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "numpy", "native"),
        default=None,
        help=(
            "kernel backend for the vectorized solvers (bit-for-bit "
            "identical; default auto = REPRO_BACKEND or best available; "
            "see docs/kernels.md)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="motivational example (Fig. 1)")
    sub.add_parser("fig4", help="case-study optimal assignments (Fig. 4)")
    sub.add_parser("table2", help="OS similarity table (Table II)")
    sub.add_parser("table3", help="browser similarity table (Table III)")
    sub.add_parser("tabledb", help="database similarity table (curated)")

    t5 = sub.add_parser("table5", help="diversity metric d_bn (Table V)")
    t5.add_argument("--entry", default="c4")
    t5.add_argument("--seed", type=int, default=11)

    t6 = sub.add_parser("table6", help="MTTC simulation (Table VI)")
    t6.add_argument("--runs", type=int, default=200)
    t6.add_argument("--seed", type=int, default=11)
    t6.add_argument(
        "--workers",
        type=int,
        default=None,
        help="simulation cells run in this many processes (-1 = one per "
        "CPU; default serial, or the REPRO_WORKERS env var when set); "
        "results are identical, only faster",
    )

    for name, help_text in (
        ("table7", "runtime vs hosts (Table VII)"),
        ("table8", "runtime vs degree (Table VIII)"),
        ("table9", "runtime vs services (Table IX)"),
    ):
        t = sub.add_parser(name, help=help_text)
        t.add_argument("--seed", type=int, default=0)
        t.add_argument(
            "--full",
            action="store_true",
            help="run at the paper's full scale (minutes, not seconds)",
        )
        t.add_argument(
            "--workers",
            type=int,
            default=None,
            help="grid cells run in this many processes (-1 = one per CPU; "
            "default serial, or the REPRO_WORKERS env var when set); jobs "
            "are dispatched in chunks on big grids; results are identical, "
            "only faster",
        )
        t.add_argument(
            "--shards",
            type=_shards_value,
            default=None,
            help="solve each cell over its connected-component shards with "
            "this many concurrent shard workers (-1 = one per CPU; default "
            "monolithic), 'zones' to derive the shard grouping from a "
            "zone model over the workload (energies are identical — "
            "components are independent), or 'cut' for Lagrangian dual "
            "decomposition across a balanced edge cut of the giant "
            "component (energy certified within the reported duality gap; "
            "see --dual-parts/--dual-rounds/--dual-gap)",
        )
        t.add_argument(
            "--dual-parts",
            type=int,
            default=4,
            help="shard count of the --shards cut edge-cut (default 4)",
        )
        t.add_argument(
            "--dual-rounds",
            type=int,
            default=40,
            help="outer subgradient round budget of --shards cut "
            "(default 40)",
        )
        t.add_argument(
            "--dual-gap",
            type=float,
            default=1e-6,
            help="relative duality-gap tolerance stopping the --shards cut "
            "outer loop (default 1e-6)",
        )

    nvd = sub.add_parser(
        "synthetic-nvd", help="similarity tables from the synthetic NVD feed"
    )
    nvd.add_argument("--seed", type=int, default=7)
    nvd.add_argument("--cves-per-year", type=int, default=200)

    effort = sub.add_parser("effort", help="least attack effort / k-zero-day")
    effort.add_argument("--entry", default="c4")
    effort.add_argument("--target", default="t5")
    effort.add_argument("--threshold", type=float, default=0.2,
                        help="similarity threshold for zero-day grouping")

    sub.add_parser("richness", help="effective-richness diversity metric d1")

    plan = sub.add_parser("plan", help="budgeted upgrade plan from mono-culture")
    plan.add_argument("--budget", type=int, default=5)

    adversary = sub.add_parser(
        "adversary", help="attacker-knowledge sweep (paper future work)"
    )
    adversary.add_argument("--entry", default="c4")
    adversary.add_argument("--target", default="t5")
    adversary.add_argument("--runs", type=int, default=300)
    adversary.add_argument("--seed", type=int, default=7)

    sens = sub.add_parser(
        "sensitivity",
        help="similarity-perturbation sensitivity of the case-study optimum",
    )
    sens.add_argument("--noise", type=float, nargs="+", default=[0.1, 0.3, 0.5],
                      help="relative similarity noise levels")
    sens.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                      help="perturbation seeds per noise level")
    sens.add_argument("--workers", type=int, default=None,
                      help="(noise, seed) cells run in this many processes "
                      "(-1 = one per CPU; default serial, or the "
                      "REPRO_WORKERS env var when set)")

    stream = sub.add_parser(
        "stream",
        help="incremental re-diversification under synthetic network churn",
    )
    stream.add_argument("--hosts", type=int, default=60)
    stream.add_argument("--degree", type=int, default=3)
    stream.add_argument("--services", type=int, default=3)
    stream.add_argument("--products", type=int, default=6)
    stream.add_argument("--events", type=int, default=15)
    stream.add_argument("--seed", type=int, default=1)
    stream.add_argument("--solver", choices=("trws", "bp"), default="trws")
    stream.add_argument(
        "--constraint-weight",
        type=float,
        default=0.0,
        help="relative frequency of operator-constraint events "
        "(pin/unpin/forbid/allow/combination updates) alongside the "
        "topology and feed churn; 0 (default) disables constraint churn",
    )
    stream.add_argument(
        "--constraint-burst",
        type=int,
        default=1,
        help="constraint events per draw — >1 models bulk policy loads "
        "(a compliance file, not a single rule)",
    )
    stream.add_argument(
        "--sharded",
        action="store_true",
        help="partition the plan into connected-component shards and "
        "re-solve only the shards each event touches",
    )
    stream.add_argument(
        "--cold",
        action="store_true",
        help="disable warm starts (every event pays a cold rebuild+solve)",
    )
    stream.add_argument(
        "--compare-cold",
        action="store_true",
        help="also time a from-scratch cold solve per event and print the "
        "speedup column",
    )
    _add_log_level(stream)

    serve = sub.add_parser(
        "serve",
        help="always-on diversification daemon (HTTP ingestion + reads)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8351,
                       help="listen port; 0 binds an ephemeral port")
    serve.add_argument(
        "--network",
        default=None,
        help="bootstrap from a JSON network file (the repro.network.io "
        "format, constraints included); omitted, a synthetic network is "
        "generated from --hosts/--degree/--services/--products/--seed",
    )
    serve.add_argument(
        "--similarity",
        default=None,
        help="similarity table JSON (the repro.nvd.io format) — required "
        "with --network",
    )
    serve.add_argument("--hosts", type=int, default=60)
    serve.add_argument("--degree", type=int, default=3)
    serve.add_argument("--services", type=int, default=3)
    serve.add_argument("--products", type=int, default=6)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--solver", choices=("trws", "bp"), default="trws")
    serve.add_argument(
        "--sharded",
        action="store_true",
        help="re-solve only the connected-component shards each batch touches",
    )
    serve.add_argument(
        "--cold",
        action="store_true",
        help="disable warm starts (every batch pays a cold rebuild+solve)",
    )
    serve.add_argument("--batch-max", type=int, default=64,
                       help="max events applied per solve (default 64)")
    serve.add_argument(
        "--high-water",
        type=int,
        default=1024,
        help="queue depth past which POST /events answers 429 (default 1024)",
    )
    serve.add_argument("--retry-after", type=float, default=1.0,
                       help="Retry-After seconds sent with a 429 (default 1)")
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for plan snapshots; unset disables snapshotting",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        help="snapshot every N solves (0 = only the shutdown snapshot)",
    )
    serve.add_argument("--keep-snapshots", type=int, default=3,
                       help="snapshots retained on disk (default 3)")
    serve.add_argument(
        "--restore",
        action="store_true",
        help="warm-restart from the newest valid snapshot under "
        "--snapshot-dir (corrupt generations are skipped), replaying the "
        "--wal tail on top; with --wal but no usable snapshot the full "
        "log is replayed from a fresh bootstrap",
    )
    serve.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="directory for the write-ahead event log; unset disables "
        "durability (events live only in memory until snapshotted)",
    )
    serve.add_argument(
        "--fsync",
        choices=("always", "batch", "off"),
        default="batch",
        help="WAL fsync policy: always = fsync before acknowledging each "
        "POST (zero acked loss on power failure), batch = fsync once per "
        "writer batch (default), off = leave flushing to the OS",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for resilience drills, e.g. "
        "'wal.append:crash:100' or 'solve:error:5,snapshot:error:2' "
        "(point:action[:after[:count]]; crashes SIGKILL the process). "
        "Never set in production",
    )
    _add_log_level(serve)
    serve.add_argument(
        "--trace-tail",
        type=int,
        default=0,
        help="keep the most recent N trace events and serve them on "
        "GET /debug/trace (0 = tracing off, the default)",
    )
    serve.add_argument(
        "--solve-buckets",
        type=_buckets_value,
        default=None,
        help="comma-separated ascending upper bounds (seconds) of the "
        "solve-latency histograms, e.g. 0.005,0.05,0.5,5 (default: the "
        "built-in repro.service.metrics.SOLVE_BUCKETS)",
    )

    wal = sub.add_parser(
        "wal",
        help="inspect, replay, or repair a service write-ahead log",
    )
    wal.add_argument(
        "wal_action",
        choices=("inspect", "replay", "truncate"),
        help="inspect: per-segment summary; replay: rebuild the plan from "
        "snapshot + log tail offline and report the final state; "
        "truncate: drop a torn tail so the next start is clean",
    )
    wal.add_argument("wal_dir", metavar="DIR", help="the WAL directory")
    wal.add_argument(
        "--snapshot-dir",
        default=None,
        help="replay: start from the newest valid snapshot here instead "
        "of replaying the whole log onto the bootstrap network",
    )
    wal.add_argument("--hosts", type=int, default=60)
    wal.add_argument("--degree", type=int, default=3)
    wal.add_argument("--services", type=int, default=3)
    wal.add_argument("--products", type=int, default=6)
    wal.add_argument("--seed", type=int, default=1,
                     help="bootstrap-network knobs for replay without a "
                     "snapshot; must match the crashed daemon's")
    wal.add_argument("--solver", choices=("trws", "bp"), default="trws")
    _add_log_level(wal)

    trace = sub.add_parser(
        "trace",
        help="run a workload under tracing; emit a Chrome trace + breakdown",
    )
    trace.add_argument(
        "workload",
        choices=("diversify", "stream", "serve-replay"),
        help="diversify: one batch compile+solve; stream: churn replay "
        "(sharded by default so shard spans appear); serve-replay: the "
        "same churn fed through the HTTP service",
    )
    trace.add_argument("--hosts", type=int, default=120)
    trace.add_argument("--degree", type=int, default=3)
    trace.add_argument("--services", type=int, default=3)
    trace.add_argument("--products", type=int, default=6)
    trace.add_argument("--events", type=int, default=20,
                       help="churn events (stream / serve-replay)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--solver", choices=("trws", "bp"), default="trws")
    trace.add_argument(
        "--monolithic",
        action="store_true",
        help="stream/serve-replay run the sharded engine by default so the "
        "trace shows per-shard solves; this forces the monolithic engine",
    )
    trace.add_argument("--out", default="repro-trace.json",
                       help="Chrome trace-event output file (default "
                       "repro-trace.json; open in Perfetto)")
    trace.add_argument("--jsonl", default=None,
                       help="also write the raw span stream as JSON-Lines")
    trace.add_argument("--top", type=int, default=15,
                       help="rows in the top-spans table (default 15)")
    _add_log_level(trace)

    dot = sub.add_parser("dot", help="Graphviz export of the case study")
    dot.add_argument("--out", default="case_study.dot")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.backend is not None:
        from repro.mrf.backends import set_default_backend

        set_default_backend(args.backend)
    handler = _HANDLERS[args.command]
    handler(args)
    return 0


# ------------------------------------------------------------------ handlers


def _fig1(args: argparse.Namespace) -> None:
    print("Fig. 1 — probability of the target being compromised")
    for panel, probability in experiments.fig1_motivational().items():
        print(f"  panel ({panel}): {probability:.4f}")


def _fig4(args: argparse.Namespace) -> None:
    results = experiments.fig4_assignments()
    reference = results["optimal"].assignment
    for label, result in results.items():
        print(f"=== {label} ===")
        print(result.summary())
        if label != "optimal":
            changed = sorted({host for host, _ in reference.diff(result.assignment)})
            print(f"hosts changed vs optimal: {', '.join(changed) or '(none)'}")
        print(result.assignment.format())
        print()


def _table(table) -> None:
    print(table.format_table())


def _table5(args: argparse.Namespace) -> None:
    print("Table V — diversity metric d_bn (entry "
          f"{args.entry}, target t5)")
    for label, report in experiments.table5_diversity(
        entry=args.entry, seed=args.seed
    ).items():
        print("  " + report.row(label))


def _table6(args: argparse.Namespace) -> None:
    print(f"Table VI — MTTC in ticks ({args.runs} runs per cell)")
    results = experiments.table6_mttc(
        runs=args.runs, seed=args.seed, workers=args.workers
    )
    for (label, entry), result in results.items():
        print("  " + result.row(label))


def _dual_options(args: argparse.Namespace) -> dict:
    """The ``--dual-*`` knobs as :func:`scalability_cell` dual options."""
    return dict(
        parts=args.dual_parts,
        max_rounds=args.dual_rounds,
        gap_tolerance=args.dual_gap,
    )


def _table7(args: argparse.Namespace) -> None:
    hosts = (100, 200, 400, 600, 800, 1000)
    if args.full:
        hosts = hosts + (2000, 4000, 6000)
    print("Table VII — optimisation time vs #hosts")
    for (label, count), cell in experiments.table7_rows(
        host_counts=hosts, seed=args.seed, workers=args.workers,
        shards=args.shards, dual_options=_dual_options(args),
    ).items():
        print(f"  {label:<14} " + cell.row())


def _table8(args: argparse.Namespace) -> None:
    scales = [("mid-scale", 1000, 15)]
    if args.full:
        scales.append(("large-scale", 6000, 25))
    print("Table VIII — optimisation time vs degree")
    for (label, degree), cell in experiments.table8_rows(
        scales=scales, seed=args.seed, workers=args.workers,
        shards=args.shards, dual_options=_dual_options(args),
    ).items():
        print(f"  {label:<14} " + cell.row())


def _table9(args: argparse.Namespace) -> None:
    scales = [("mid-scale", 1000, 20)]
    if args.full:
        scales.append(("large-scale", 6000, 40))
    print("Table IX — optimisation time vs services per host")
    for (label, services), cell in experiments.table9_rows(
        scales=scales, seed=args.seed, workers=args.workers,
        shards=args.shards, dual_options=_dual_options(args),
    ).items():
        print(f"  {label:<14} " + cell.row())


def _synthetic_nvd(args: argparse.Namespace) -> None:
    from repro.nvd.generator import (
        SyntheticNVDConfig,
        generate_synthetic_nvd,
        product_cpe_map,
    )
    from repro.nvd.similarity import similarity_table_from_database

    config = SyntheticNVDConfig(seed=args.seed, cves_per_year=args.cves_per_year)
    database = generate_synthetic_nvd(config)
    print(f"synthetic feed: {len(database)} CVE records, "
          f"{len(database.products())} products")
    table = similarity_table_from_database(
        database, product_cpe_map(config), since=1999, until=2016
    )
    print(table.format_table())


def _case_pair():
    """(case, mono, optimal) used by the extension commands."""
    from repro.casestudy.stuxnet import stuxnet_case_study
    from repro.core import diversify, mono_assignment

    case = stuxnet_case_study()
    mono = mono_assignment(case.network)
    optimal = diversify(case.network, case.similarity).assignment
    return case, mono, optimal


def _effort(args: argparse.Namespace) -> None:
    from repro.metrics import k_zero_day_safety, least_attack_effort

    case, mono, optimal = _case_pair()
    print(f"Least attacking effort ({args.entry} → {args.target})")
    for label, assignment in (("mono", mono), ("optimal", optimal)):
        result = least_attack_effort(
            case.network, assignment, args.entry, args.target
        )
        print("  " + result.row(label))
        kzd = k_zero_day_safety(
            case.network, assignment, case.similarity,
            args.entry, args.target, threshold=args.threshold,
        )
        print("  " + kzd.row(f"{label} k-0day@{args.threshold}"))


def _richness(args: argparse.Namespace) -> None:
    from repro.core import random_assignment
    from repro.metrics import effective_richness

    case, mono, optimal = _case_pair()
    print("Effective richness d1")
    rows = (
        ("optimal", optimal),
        ("random", random_assignment(case.network, seed=11)),
        ("mono", mono),
    )
    for label, assignment in rows:
        print("  " + effective_richness(case.network, assignment).row(label))


def _plan(args: argparse.Namespace) -> None:
    from repro.core.planner import plan_upgrade

    case, mono, _ = _case_pair()
    plan = plan_upgrade(case.network, case.similarity, mono, budget=args.budget)
    print(plan.describe())


def _adversary(args: argparse.Namespace) -> None:
    from repro.adversary import knowledge_sweep

    case, mono, optimal = _case_pair()
    for label, assignment in (("mono", mono), ("optimal", optimal)):
        print(f"--- {label} assignment")
        sweep = knowledge_sweep(
            case.network, assignment, case.similarity,
            args.entry, args.target, runs=args.runs, seed=args.seed,
        )
        for result in sweep.values():
            print("  " + result.row())


def _sensitivity(args: argparse.Namespace) -> None:
    from repro.analysis.sensitivity import similarity_perturbation_sensitivity
    from repro.casestudy.stuxnet import stuxnet_case_study

    case = stuxnet_case_study()
    print("Similarity-perturbation sensitivity (case study)")
    results = similarity_perturbation_sensitivity(
        case.network,
        case.similarity,
        noise_levels=tuple(args.noise),
        seeds=tuple(args.seeds),
        workers=args.workers,
    )
    for result in results:
        print("  " + result.row())


def _stream(args: argparse.Namespace) -> None:
    from repro.network.generator import (
        RandomNetworkConfig,
        random_network,
        random_similarity,
    )
    from repro.obs.logging import setup_logging
    from repro.stream import ChurnConfig, random_churn_trace, replay_trace

    setup_logging(args.log_level)
    config = RandomNetworkConfig(
        hosts=args.hosts,
        degree=args.degree,
        services=args.services,
        products_per_service=args.products,
        seed=args.seed,
    )
    network = random_network(config)
    similarity = random_similarity(config)
    trace = random_churn_trace(
        network,
        ChurnConfig(
            events=args.events,
            seed=args.seed,
            constraint_weight=args.constraint_weight,
            constraint_burst=args.constraint_burst,
        ),
    )
    print(
        f"Streaming churn — {args.hosts} hosts, {args.events} events, "
        f"solver={args.solver}{' (sharded)' if args.sharded else ''}, "
        f"warm starts {'off' if args.cold else 'on'}"
    )
    report = replay_trace(
        network,
        similarity,
        trace,
        solver=args.solver,
        warm_start=not args.cold,
        compare_cold=args.compare_cold,
        sharded=args.sharded,
    )
    print(report.format_rows())
    print(report.summary())


def _bootstrap_service(args: argparse.Namespace, config, recover: bool = False):
    """Build a service from ``--network`` or the synthetic generator.

    Returns ``(service, origin)``; ``recover=True`` replays any existing
    WAL records onto the bootstrap state at startup.
    """
    from repro.service import DiversificationService

    if args.network:
        from pathlib import Path

        from repro.network.io import network_from_json
        from repro.nvd.io import load_similarity

        if not args.similarity:
            raise SystemExit("--network needs --similarity (see repro.nvd.io)")
        network, constraints = network_from_json(Path(args.network).read_text())
        similarity = load_similarity(args.similarity)
        service = DiversificationService(
            network,
            similarity,
            config=config,
            constraints=constraints,
            recover=recover,
        )
        return service, args.network
    from repro.network.generator import (
        RandomNetworkConfig,
        random_network,
        random_similarity,
    )

    generator = RandomNetworkConfig(
        hosts=args.hosts,
        degree=args.degree,
        services=args.services,
        products_per_service=args.products,
        seed=args.seed,
    )
    service = DiversificationService(
        random_network(generator),
        random_similarity(generator),
        config=config,
        recover=recover,
    )
    return service, f"synthetic ({args.hosts} hosts, seed {args.seed})"


def _serve(args: argparse.Namespace) -> None:
    import asyncio

    from repro.obs.logging import setup_logging
    from repro.service import DiversificationService, ServiceConfig

    setup_logging(args.log_level)
    fault_plan = None
    if args.fault_plan:
        from repro.service import parse_fault_plan

        fault_plan = parse_fault_plan(args.fault_plan, hard=True)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        solver=args.solver,
        sharded=args.sharded,
        warm_start=not args.cold,
        batch_max=args.batch_max,
        high_water=args.high_water,
        retry_after=args.retry_after,
        snapshot_dir=args.snapshot_dir,
        snapshot_every=args.snapshot_every,
        keep_snapshots=args.keep_snapshots,
        log_level=args.log_level,
        trace_tail=args.trace_tail,
        solve_buckets=args.solve_buckets,
        wal_dir=args.wal,
        fsync=args.fsync,
        fault_plan=fault_plan,
    )
    if args.restore:
        if not config.snapshots_enabled and not config.wal_enabled:
            raise SystemExit("--restore needs --snapshot-dir and/or --wal")
        service = None
        if config.snapshots_enabled:
            try:
                service = DiversificationService.from_snapshot(config)
                origin = f"snapshot under {config.snapshot_dir}"
            except ValueError as problem:
                if not config.wal_enabled:
                    raise SystemExit(str(problem)) from problem
                print(f"no usable snapshot ({problem}); replaying full WAL")
        if service is None:
            # No (usable) snapshot: bootstrap the configured network and
            # replay the whole log on top of it.
            service, origin = _bootstrap_service(args, config, recover=True)
            origin += f" + WAL replay from {config.wal_dir}"
    else:
        service, origin = _bootstrap_service(args, config)

    async def _run() -> None:
        await service.start()
        print(
            f"repro serve — listening on http://{config.host}:{service.port} "
            f"(solver={config.solver}"
            f"{', sharded' if config.sharded else ''}), plan from {origin}"
        )
        if config.snapshots_enabled:
            cadence = (
                f"every {config.snapshot_every} solves"
                if config.snapshot_every
                else "on shutdown only"
            )
            print(
                f"snapshots -> {config.snapshot_dir} "
                f"({cadence}, keep {config.keep_snapshots})"
            )
        if config.wal_enabled:
            print(f"wal -> {config.wal_dir} (fsync={config.fsync})")
        await service.run_until_stopped()

    asyncio.run(_run())
    print("repro serve — drained and stopped")


def _wal(args: argparse.Namespace) -> None:
    from repro.obs.logging import setup_logging
    from repro.service import inspect_wal, replay_wal, truncate_torn_tail

    setup_logging(args.log_level)
    if args.wal_action == "inspect":
        rows = inspect_wal(args.wal_dir)
        if not rows:
            print(f"no WAL segments under {args.wal_dir}")
            return
        header = f"{'segment':<24} {'first':>8} {'last':>8} {'records':>8}  state"
        print(header)
        print("-" * len(header))
        for row in rows:
            state = "ok" if not row["torn"] else f"torn ({row['reason']})"
            print(
                f"{row['segment']:<24} {row['first_seq']:>8} "
                f"{row['last_seq']:>8} {row['records']:>8}  {state}"
            )
        return
    if args.wal_action == "truncate":
        actions = truncate_torn_tail(args.wal_dir)
        if not actions:
            print(f"WAL under {args.wal_dir} is clean; nothing to do")
            return
        for action in actions:
            print(f"{action['action']}: {action['segment']} ({action['reason']})")
        return

    # replay: rebuild the final plan offline and report it.
    from repro.service import latest_valid_snapshot, restore_engine

    engine = None
    after_seq = 0
    if args.snapshot_dir:
        found = latest_valid_snapshot(args.snapshot_dir)
        if found is not None:
            path, snapshot = found
            engine, snapshot = restore_engine(snapshot, solver=args.solver)
            after_seq = snapshot.wal_seq
            print(f"restored {path.name} (wal_seq {after_seq})")
        else:
            print(f"no valid snapshot under {args.snapshot_dir}; "
                  "replaying the full log")
    if engine is None:
        from repro.network.generator import (
            RandomNetworkConfig,
            random_network,
            random_similarity,
        )
        from repro.stream import DynamicDiversifier

        generator = RandomNetworkConfig(
            hosts=args.hosts,
            degree=args.degree,
            services=args.services,
            products_per_service=args.products,
            seed=args.seed,
        )
        engine = DynamicDiversifier(
            random_network(generator),
            random_similarity(generator),
            solver=args.solver,
        )
    applied = 0
    failed = 0
    last = after_seq
    for seq, event in replay_wal(args.wal_dir, after_seq=after_seq):
        try:
            engine.apply(event)
        except Exception as problem:
            failed += 1
            print(f"seq {seq}: {type(event).__name__} failed: {problem}")
        else:
            applied += 1
        last = seq
    result = engine.solve()
    print(
        f"replayed {applied} event(s) after seq {after_seq} "
        f"(last seq {last}, {failed} failed)"
    )
    print(
        f"final energy {result.energy:.6f} over "
        f"{len(engine.network.hosts)} hosts"
    )


def _trace_workload_config(args: argparse.Namespace):
    """The synthetic (network, similarity, churn trace) of ``repro trace``."""
    from repro.network.generator import (
        RandomNetworkConfig,
        random_network,
        random_similarity,
    )
    from repro.stream import ChurnConfig, random_churn_trace

    config = RandomNetworkConfig(
        hosts=args.hosts,
        degree=args.degree,
        services=args.services,
        products_per_service=args.products,
        seed=args.seed,
    )
    network = random_network(config)
    similarity = random_similarity(config)
    events = random_churn_trace(
        network,
        ChurnConfig(events=args.events, seed=args.seed, constraint_weight=0.3),
    )
    return network, similarity, events


def _trace_diversify(args: argparse.Namespace) -> None:
    """``repro trace diversify``: one batch compile+solve."""
    from repro.core.diversify import diversify

    network, similarity, _events = _trace_workload_config(args)
    # fast_path off: the replicated-host shortcut skips compile+solve
    # entirely on uniform synthetic estates — no spans to look at.
    result = diversify(
        network, similarity, solver=args.solver, fast_path=False
    )
    print(f"diversify: energy {result.energy:.6f}")


def _trace_stream(args: argparse.Namespace) -> None:
    """``repro trace stream``: churn replay on the incremental engine."""
    from repro.stream import replay_trace

    network, similarity, events = _trace_workload_config(args)
    report = replay_trace(
        network,
        similarity,
        events,
        solver=args.solver,
        sharded=not args.monolithic,
    )
    print(report.summary())


def _trace_serve_replay(args: argparse.Namespace) -> None:
    """``repro trace serve-replay``: the churn fed through the daemon.

    The service runs on a background thread's event loop and joins the
    CLI's ambient trace (the recorder is process-global), so writer-side
    batch/solve spans land in the same timeline as the client-side replay.
    """
    import asyncio
    import threading

    from repro.service import DiversificationService, ServiceClient, ServiceConfig

    network, similarity, events = _trace_workload_config(args)
    config = ServiceConfig(
        port=0,
        solver=args.solver,
        sharded=not args.monolithic,
        batch_max=1,
        log_level=args.log_level,
    )
    service = DiversificationService(network, similarity, config=config)
    started = threading.Event()

    def run_service() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def serve() -> None:
            await service.start()
            started.set()
            await service._stopped.wait()

        try:
            loop.run_until_complete(serve())
        finally:
            loop.close()

    thread = threading.Thread(target=run_service, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=60):
        raise SystemExit("service failed to start within 60s")
    client = ServiceClient(port=service.port, timeout=30)
    accepted = client.send(events)
    client.wait_idle(timeout=120)
    payload = client.assignment()
    client.shutdown()
    thread.join(timeout=60)
    print(
        f"serve-replay: {accepted} events over HTTP, final energy "
        f"{payload['energy']:.6f} (version {payload['version']})"
    )


_TRACE_WORKLOADS = {
    "diversify": _trace_diversify,
    "stream": _trace_stream,
    "serve-replay": _trace_serve_replay,
}


def _trace_cmd(args: argparse.Namespace) -> None:
    """``repro trace``: run a workload under tracing, emit trace + report."""
    from repro import obs
    from repro.obs.logging import setup_logging

    setup_logging(args.log_level)
    trace = obs.Trace()
    obs.activate(trace)
    try:
        _TRACE_WORKLOADS[args.workload](args)
    finally:
        obs.deactivate()
    trace.write_chrome(args.out)
    lines = [f"wrote {args.out} ({len(trace.events)} events) — open in "
             f"Perfetto or chrome://tracing"]
    if args.jsonl:
        trace.write_jsonl(args.jsonl)
        lines.append(f"wrote {args.jsonl} (JSON-Lines span stream)")
    print("\n".join(lines))
    print()
    print(obs.format_summary(trace.events, trace.counters, top=args.top))


def _dot(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.casestudy.stuxnet import ZONES
    from repro.viz import to_dot

    case, _, optimal = _case_pair()
    text = to_dot(
        case.network, optimal, case.similarity, zones=ZONES,
        title="Stuxnet case study — optimal diversification",
    )
    Path(args.out).write_text(text)
    print(f"wrote {args.out} ({len(text.splitlines())} lines); render with "
          f"`dot -Tpng {args.out} -o case_study.png`")


_HANDLERS = {
    "fig1": _fig1,
    "fig4": _fig4,
    "table2": lambda args: _table(paper_os_similarity()),
    "table3": lambda args: _table(paper_browser_similarity()),
    "tabledb": lambda args: _table(paper_database_similarity()),
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
    "table8": _table8,
    "table9": _table9,
    "synthetic-nvd": _synthetic_nvd,
    "effort": _effort,
    "richness": _richness,
    "plan": _plan,
    "adversary": _adversary,
    "sensitivity": _sensitivity,
    "stream": _stream,
    "serve": _serve,
    "wal": _wal,
    "trace": _trace_cmd,
    "dot": _dot,
}


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
