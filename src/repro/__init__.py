"""repro — reproduction of *Scalable Approach to Enhancing ICS Resilience by
Network Diversity* (Li, Feng & Hankin, DSN 2020).

The library computes optimal software-diversity assignments for networked
systems: model your network (hosts, links, services, candidate products),
supply a vulnerability-similarity table (from the paper's published data, a
synthetic NVD feed, or your own measurements), optionally add configuration
constraints, and :func:`diversify` returns the assignment minimising worm
propagation via TRW-S MAP inference on a Markov Random Field.  Evaluation
tooling (BN diversity metric d_bn, agent-based MTTC simulation) and the
paper's Stuxnet-inspired case study are included.

Quickstart::

    from repro import Network, SimilarityTable, diversify

    net = Network()
    net.add_host("a", {"os": ["win", "linux"]})
    net.add_host("b", {"os": ["win", "linux"]})
    net.add_link("a", "b")
    sim = SimilarityTable(pairs={("win", "linux"): 0.1})
    result = diversify(net, sim)
    print(result.assignment.format())
"""

from repro.core.baselines import greedy_assignment, mono_assignment, random_assignment
from repro.core.costs import assignment_energy, build_mrf
from repro.core.diversify import DiversificationResult, diversify
from repro.core.planner import UpgradePlan, plan_upgrade, upgrade_frontier
from repro.metrics.diversity import DiversityReport, diversity_metric
from repro.metrics.effort import k_zero_day_safety, least_attack_effort
from repro.metrics.mttc import MTTCResult, mean_time_to_compromise
from repro.metrics.richness import effective_richness
from repro.metrics.surface import attack_surface
from repro.network.assignment import ProductAssignment
from repro.network.constraints import (
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable, jaccard_similarity

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Network",
    "ProductAssignment",
    "SimilarityTable",
    "jaccard_similarity",
    "ConstraintSet",
    "FixProduct",
    "ForbidProduct",
    "RequireCombination",
    "AvoidCombination",
    "diversify",
    "DiversificationResult",
    "build_mrf",
    "assignment_energy",
    "mono_assignment",
    "random_assignment",
    "greedy_assignment",
    "diversity_metric",
    "DiversityReport",
    "mean_time_to_compromise",
    "MTTCResult",
    "plan_upgrade",
    "upgrade_frontier",
    "UpgradePlan",
    "least_attack_effort",
    "k_zero_day_safety",
    "effective_richness",
    "attack_surface",
]
