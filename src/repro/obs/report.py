"""Trace post-processing: self-time attribution and text summaries.

Chrome complete events nest by time containment within one ``(pid,
tid)`` lane.  :func:`self_durations` replays each lane with a stack
sweep to compute every span's *self* time (its duration minus directly
nested children), which makes per-layer and per-span totals additive
instead of double-counting parents.  On top of that:

* :func:`layer_seconds` — seconds of self time per category (layer),
  the per-phase attribution BENCH records carry,
* :func:`span_table` — per-span-name count / total / self aggregates,
* :func:`format_summary` — the text report ``repro trace`` prints.

>>> events = [
...     {"name": "outer", "cat": "a", "ph": "X", "ts": 0.0, "dur": 10.0,
...      "pid": 1, "tid": 1},
...     {"name": "inner", "cat": "b", "ph": "X", "ts": 2.0, "dur": 4.0,
...      "pid": 1, "tid": 1},
... ]
>>> [round(d, 1) for d in self_durations(events)]
[6.0, 4.0]
>>> layers = layer_seconds(events)
>>> round(layers["a"] * 1e6, 1), round(layers["b"] * 1e6, 1)
(6.0, 4.0)
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "complete_events",
    "self_durations",
    "layer_seconds",
    "span_table",
    "format_summary",
]


def complete_events(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The complete ("X") events from a raw event stream, as a list."""
    return [e for e in events if e.get("ph") == "X"]


def self_durations(events: Sequence[Dict[str, Any]]) -> List[float]:
    """Self time (µs) for each complete event, positionally aligned.

    Events are grouped into ``(pid, tid)`` lanes; within a lane, spans
    nest by time containment (the Chrome viewer's rule), so a stack
    sweep over start-sorted events subtracts each span's duration from
    its direct parent's self time.  Non-"X" events get 0.0.
    """
    selfs = [0.0] * len(events)
    lanes: Dict[Tuple[Any, Any], List[int]] = {}
    for index, event in enumerate(events):
        if event.get("ph") != "X":
            continue
        selfs[index] = float(event.get("dur", 0.0))
        lanes.setdefault((event.get("pid"), event.get("tid")), []).append(index)
    for indices in lanes.values():
        # Parents first at equal start times: sort by start, then by
        # descending duration.
        indices.sort(key=lambda i: (events[i]["ts"], -events[i].get("dur", 0.0)))
        stack: List[Tuple[float, int]] = []  # (end_ts, event index)
        for index in indices:
            ts = float(events[index]["ts"])
            dur = float(events[index].get("dur", 0.0))
            while stack and stack[-1][0] <= ts:
                stack.pop()
            if stack:
                selfs[stack[-1][1]] -= dur
            stack.append((ts + dur, index))
    return selfs


def layer_seconds(events: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """Self seconds per category ("layer"), sorted descending by time.

    Because self time is additive, the values sum to total traced time
    with no parent/child double counting — this is the per-phase
    attribution attached to BENCH records.
    """
    selfs = self_durations(events)
    totals: Dict[str, float] = {}
    for event, self_us in zip(events, selfs):
        if event.get("ph") != "X":
            continue
        cat = str(event.get("cat", "app"))
        totals[cat] = totals.get(cat, 0.0) + self_us / 1e6
    return dict(sorted(totals.items(), key=lambda item: -item[1]))


def span_table(
    events: Sequence[Dict[str, Any]],
) -> List[Tuple[str, str, int, float, float]]:
    """Per-span aggregates: ``(name, cat, count, total_s, self_s)`` rows,
    sorted by descending self time."""
    selfs = self_durations(events)
    rows: Dict[Tuple[str, str], List[float]] = {}
    for event, self_us in zip(events, selfs):
        if event.get("ph") != "X":
            continue
        key = (str(event["name"]), str(event.get("cat", "app")))
        entry = rows.setdefault(key, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += float(event.get("dur", 0.0)) / 1e6
        entry[2] += self_us / 1e6
    table = [
        (name, cat, int(count), total, self_s)
        for (name, cat), (count, total, self_s) in rows.items()
    ]
    table.sort(key=lambda row: -row[4])
    return table


def format_summary(
    events: Sequence[Dict[str, Any]],
    counters: Dict[str, float] = None,
    top: int = 15,
) -> str:
    """The text report ``repro trace`` prints: per-layer breakdown, the
    top spans by self time, and any counters."""
    spans = complete_events(events)
    lines: List[str] = []
    layers = layer_seconds(spans)
    total = sum(layers.values())
    lines.append(f"trace: {len(spans)} spans, {total:.3f}s self time")
    lines.append("")
    lines.append("per-layer breakdown (self time):")
    for cat, seconds in layers.items():
        share = 100.0 * seconds / total if total else 0.0
        lines.append(f"  {cat:<10s} {seconds:9.3f}s  {share:5.1f}%")
    lines.append("")
    lines.append(f"top spans by self time (of {len(span_table(spans))} names):")
    header = f"  {'span':<28s} {'cat':<10s} {'count':>7s} {'total':>9s} {'self':>9s}"
    lines.append(header)
    for name, cat, count, total_s, self_s in span_table(spans)[:top]:
        lines.append(
            f"  {name:<28s} {cat:<10s} {count:>7d} {total_s:>8.3f}s {self_s:>8.3f}s"
        )
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{value:g}"
            lines.append(f"  {name:<38s} {rendered:>10s}")
    return "\n".join(lines)
