"""Observability layer: tracing spans, counters, structured logging.

``repro.obs`` is the unified instrumentation surface for every layer of
the stack — compile, solve kernels, sharded fan-out, streaming engine,
and the service.  The core contract is zero overhead while disabled;
see :mod:`repro.obs.core` for the span/trace API,
:mod:`repro.obs.report` for summaries, and :mod:`repro.obs.logging`
for the shared structured-logging setup.
"""

from repro.obs.core import (
    PhaseTimer,
    Span,
    Trace,
    activate,
    add_counter,
    begin_capture,
    current_trace,
    deactivate,
    enabled,
    end_capture,
    instant,
    phase_timer,
    span,
)
from repro.obs.report import format_summary, layer_seconds, span_table

__all__ = [
    "PhaseTimer",
    "Span",
    "Trace",
    "activate",
    "add_counter",
    "begin_capture",
    "current_trace",
    "deactivate",
    "enabled",
    "end_capture",
    "instant",
    "phase_timer",
    "span",
    "format_summary",
    "layer_seconds",
    "span_table",
]
