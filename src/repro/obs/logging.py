"""Shared structured-logging setup for the CLI and the service.

One formatter, one root handler, one entry point: :func:`setup_logging`
configures the ``repro`` logger hierarchy with a key=value structured
format (timestamp, level, logger name, message, then any ``extra``
fields), and :func:`get_logger` hands out child loggers.  The service
and the ``repro stream`` / ``repro serve`` commands route their lines
through this instead of ad-hoc ``print`` calls; ``--log-level`` picks
the threshold.

>>> logger = get_logger("doctest")
>>> logger.name
'repro.doctest'
>>> parse_level("warning")
30
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Optional

__all__ = ["LEVELS", "parse_level", "setup_logging", "get_logger", "kv"]

#: accepted ``--log-level`` names, mapped to stdlib levels.
LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_ROOT = "repro"


class _StructuredFormatter(logging.Formatter):
    """``time level logger message key=value...`` on one line."""

    def format(self, record: logging.LogRecord) -> str:
        """Render one record in the structured key=value layout."""
        base = (
            f"{self.formatTime(record, '%Y-%m-%dT%H:%M:%S')} "
            f"{record.levelname.lower():7s} "
            f"{record.name} {record.getMessage()}"
        )
        fields = getattr(record, "fields", None)
        if fields:
            pairs = " ".join(f"{key}={value}" for key, value in fields.items())
            base = f"{base} {pairs}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def parse_level(name: str) -> int:
    """Map a ``--log-level`` name to the stdlib numeric level.

    Raises ``ValueError`` for unknown names (argparse surfaces it).
    """
    try:
        return LEVELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {name!r}; pick from {sorted(LEVELS)}"
        ) from None


def setup_logging(level: str = "info", stream: Optional[Any] = None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy; returns the root logger.

    Idempotent: repeated calls replace the handler rather than stacking
    duplicates, so tests and long-lived sessions can re-invoke freely.
    """
    root = logging.getLogger(_ROOT)
    root.setLevel(parse_level(level))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_StructuredFormatter())
    for old in list(root.handlers):
        root.removeHandler(old)
    root.addHandler(handler)
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A child logger under the shared ``repro`` hierarchy."""
    return logging.getLogger(f"{_ROOT}.{name}")


def kv(**fields: Any) -> dict:
    """Structured fields for a log call: ``logger.info(msg, extra=kv(a=1))``."""
    return {"fields": fields}
