"""Zero-overhead-when-disabled tracing core.

The library's hot paths — the direct compiler, the TRW-S/BP sweep kernels,
the sharded fan-out, the streaming engine, the service writer — call into
this module unconditionally.  The contract that keeps them as fast as the
zero-allocation kernel work left them:

* **Disabled (the default)** there is no active :class:`Trace`.
  :func:`span` returns one shared no-op singleton (no object allocated,
  nothing recorded), :func:`instant` and :func:`add_counter` return after a
  single ``None`` check, and :func:`enabled` is a plain attribute read the
  kernels hoist out of their iteration loops.  The disabled-mode cost is a
  handful of branches per *solve*, not per iteration — provable with
  ``benchmarks/bench_trace_overhead.py`` and asserted by
  ``tests/test_obs.py``.
* **Enabled** (:func:`activate` installed a :class:`Trace`) spans record
  wall-clock start timestamps (microseconds since the epoch — comparable
  across processes) with monotonic-clock durations, tagged with the
  recording pid/tid so nested and concurrent spans reconstruct into one
  timeline.

Traces export as JSON-Lines (:meth:`Trace.jsonl`) and as the Chrome
trace-event format (:meth:`Trace.chrome`) that Perfetto and
``chrome://tracing`` load directly.  Cross-process capture —
:func:`begin_capture` / :func:`end_capture` in the worker,
:meth:`Trace.extend` in the parent — is how shard solves dispatched through
:mod:`repro.runner` process pools merge into the parent's timeline (the
runner does this automatically whenever tracing is on).

>>> trace = Trace()
>>> token = activate(trace)
>>> with span("demo.outer", cat="demo", items=2):
...     with span("demo.inner", cat="demo"):
...         pass
>>> deactivate() is trace
True
>>> [event["name"] for event in trace.events]
['demo.inner', 'demo.outer']
>>> trace.events[0]["cat"]
'demo'
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Trace",
    "Span",
    "PhaseTimer",
    "enabled",
    "current_trace",
    "activate",
    "deactivate",
    "span",
    "instant",
    "add_counter",
    "phase_timer",
    "begin_capture",
    "end_capture",
]

#: the active trace; ``None`` means tracing is disabled (the default).
_TRACE: Optional["Trace"] = None


class _NoopSpan:
    """The span returned while tracing is disabled: one shared, stateless
    singleton whose enter/exit do nothing — the disabled path allocates no
    span object at all (asserted by ``tests/test_obs.py``)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        """No-op; returns itself."""
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        """No-op; never swallows exceptions."""
        return False

    def add(self, **args: Any) -> None:
        """Discard attachment attempts (mirrors :meth:`Span.add`)."""


_NOOP_SPAN = _NoopSpan()


class Span:
    """One live span: a context manager recording a Chrome complete event.

    Created by :func:`span` only while tracing is enabled.  The start
    timestamp is wall-clock (cross-process comparable); the duration is
    measured on the monotonic clock.  :meth:`add` attaches result
    attributes discovered mid-span (shard energies, iteration counts).
    """

    __slots__ = ("_trace", "name", "cat", "args", "_wall_ns", "_perf_ns")

    def __init__(
        self, trace: "Trace", name: str, cat: str, args: Dict[str, Any]
    ) -> None:
        self._trace = trace
        self.name = name
        self.cat = cat
        self.args = args
        self._wall_ns = 0
        self._perf_ns = 0

    def add(self, **args: Any) -> None:
        """Attach extra ``args`` to the event this span will record."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._wall_ns = time.time_ns()
        self._perf_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        duration_ns = time.perf_counter_ns() - self._perf_ns
        if exc_type is not None:
            self.args["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._trace.record(
            name=self.name,
            cat=self.cat,
            ts=self._wall_ns / 1000.0,
            dur=duration_ns / 1000.0,
            args=self.args,
        )
        return False


class Trace:
    """An in-memory span/counter recorder with JSONL + Chrome export.

    Args:
        limit: keep only the most recent ``limit`` events (a ring buffer —
            the service's ``/debug/trace`` tail).  ``None`` keeps
            everything (the CLI and benchmark mode).

    Thread-safe: the sharded solver's thread fan-out records concurrently.
    Events are plain dicts in the Chrome trace-event shape (``name``,
    ``cat``, ``ph``, ``ts``/``dur`` in microseconds, ``pid``/``tid``,
    ``args``), so export is serialisation, not transformation.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 or None")
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=limit)
        self._counters: Dict[str, float] = {}
        self.limit = limit

    # ------------------------------------------------------------ recording

    def record(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        args: Optional[Dict[str, Any]] = None,
        ph: str = "X",
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> None:
        """Append one trace event (timestamps in microseconds)."""
        event: Dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": ph,
            "ts": ts,
            "pid": os.getpid() if pid is None else pid,
            "tid": threading.get_native_id() if tid is None else tid,
        }
        if ph == "X":
            event["dur"] = dur
        if ph == "i":
            event["s"] = "t"
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def add_counter(self, name: str, value: float = 1.0) -> None:
        """Accumulate a named counter (totals surface in the summary)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def extend(self, events: Iterable[Dict[str, Any]]) -> None:
        """Merge foreign events (e.g. drained from a worker process).

        Events keep their own ``pid``/``tid``, so a merged timeline shows
        worker spans under their recording process.
        """
        with self._lock:
            self._events.extend(events)

    # -------------------------------------------------------------- reading

    @property
    def events(self) -> List[Dict[str, Any]]:
        """A point-in-time copy of the recorded events."""
        with self._lock:
            return list(self._events)

    @property
    def counters(self) -> Dict[str, float]:
        """A point-in-time copy of the accumulated counters."""
        with self._lock:
            return dict(self._counters)

    def span_names(self) -> List[str]:
        """The distinct complete-span names recorded, sorted."""
        return sorted(
            {e["name"] for e in self.events if e.get("ph") == "X"}
        )

    # -------------------------------------------------------------- export

    def jsonl(self) -> str:
        """The events as JSON-Lines (one event object per line)."""
        return "\n".join(json.dumps(event) for event in self.events) + "\n"

    def chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event payload (Perfetto-loadable).

        ``traceEvents`` carries the spans; the accumulated counters ride
        along under ``otherData`` (ignored by viewers, kept for tooling).
        """
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"counters": self.counters},
        }

    def write_chrome(self, path: str) -> None:
        """Write the Chrome trace-event JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.chrome(), handle)
            handle.write("\n")

    def write_jsonl(self, path: str) -> None:
        """Write the JSON-Lines export to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.jsonl())


class _NoopPhaseTimer:
    """The phase timer returned while tracing is disabled (shared, inert)."""

    __slots__ = ()

    def lap(self, name: str, **args: Any) -> None:
        """No-op (mirrors :meth:`PhaseTimer.lap`)."""


_NOOP_TIMER = _NoopPhaseTimer()


class PhaseTimer:
    """Records back-to-back phases of a sequential pipeline as spans.

    Created by :func:`phase_timer`.  Each :meth:`lap` call closes the
    segment that started at construction (or at the previous lap) as one
    complete event and immediately starts the next segment — the idiom
    for straight-line code like the compiler, where phases don't nest.
    """

    __slots__ = ("_trace", "_cat", "_wall_ns", "_perf_ns")

    def __init__(self, trace: "Trace", cat: str) -> None:
        self._trace = trace
        self._cat = cat
        self._wall_ns = time.time_ns()
        self._perf_ns = time.perf_counter_ns()

    def lap(self, name: str, **args: Any) -> None:
        """Record the segment since the last lap as span ``name``."""
        wall_ns = time.time_ns()
        perf_ns = time.perf_counter_ns()
        self._trace.record(
            name=name,
            cat=self._cat,
            ts=self._wall_ns / 1000.0,
            dur=(perf_ns - self._perf_ns) / 1000.0,
            args=args or None,
        )
        self._wall_ns = wall_ns
        self._perf_ns = perf_ns


# ---------------------------------------------------------------- module API


def enabled() -> bool:
    """True while a trace is active.  Hot loops hoist this check once per
    solve (``collect = obs.enabled()``) so the disabled path costs one
    branch per solve, not per iteration."""
    return _TRACE is not None


def current_trace() -> Optional[Trace]:
    """The active :class:`Trace`, or ``None`` while tracing is disabled."""
    return _TRACE


def activate(trace: Trace) -> Trace:
    """Install ``trace`` as the process-wide active trace; returns it."""
    global _TRACE
    _TRACE = trace
    return trace


def deactivate() -> Optional[Trace]:
    """Disable tracing; returns the trace that was active (if any)."""
    global _TRACE
    trace, _TRACE = _TRACE, None
    return trace


def span(name: str, cat: str = "app", **args: Any) -> Any:
    """A context manager timing one named span.

    Disabled: returns the shared no-op singleton — no allocation, nothing
    recorded.  Enabled: returns a live :class:`Span` recording a complete
    event on exit.  ``cat`` is the layer tag the per-layer breakdown
    groups by (``compile`` / ``solve`` / ``shard`` / ``stream`` /
    ``service`` / ...); ``args`` become the event's attributes.
    """
    trace = _TRACE
    if trace is None:
        return _NOOP_SPAN
    return Span(trace, name, cat, args)


def instant(name: str, cat: str = "app", **args: Any) -> None:
    """Record one instant event (a point-in-time marker), if enabled."""
    trace = _TRACE
    if trace is None:
        return
    trace.record(
        name=name, cat=cat, ts=time.time_ns() / 1000.0, dur=0.0,
        args=args, ph="i",
    )


def add_counter(name: str, value: float = 1.0) -> None:
    """Accumulate a named counter on the active trace, if enabled."""
    trace = _TRACE
    if trace is None:
        return
    trace.add_counter(name, value)


def phase_timer(cat: str = "app") -> Any:
    """A :class:`PhaseTimer` for sequential-phase recording, or the shared
    no-op timer while tracing is disabled."""
    trace = _TRACE
    if trace is None:
        return _NOOP_TIMER
    return PhaseTimer(trace, cat)


# ---------------------------------------------------- cross-process capture


def begin_capture() -> tuple:
    """Worker-side: swap in a fresh capture trace; returns the token for
    :func:`end_capture`.

    A fork-inherited parent trace is a child-memory *copy* whose events
    could never reach the parent, so the capture always replaces whatever
    is active; :func:`end_capture` restores it afterwards (harmless either
    way).
    """
    global _TRACE
    previous = _TRACE
    capture = Trace()
    _TRACE = capture
    return capture, previous


def end_capture(token: tuple) -> List[Dict[str, Any]]:
    """Worker-side: stop the capture and return its events for the parent.

    The returned list is picklable (plain dicts) — the runner ships it
    back with the job result and the parent merges it via
    :meth:`Trace.extend`.
    """
    global _TRACE
    capture, previous = token
    _TRACE = previous
    return capture.events
