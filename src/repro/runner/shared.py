"""Shared-memory array blocks for cross-process job grids.

Process-pool jobs normally receive their inputs pickled over a pipe.  For
the big read-only numerics — a similarity-derived cost stack shared by
every shard of a solve, the padded matrices of a 6000-host sweep — that
serialisation dominates the dispatch cost.  :class:`SharedArrayBlock` puts
one NumPy array into POSIX shared memory instead: the parent ships only a
tiny picklable :class:`SharedArraySpec` (name, shape, dtype) and each
worker attaches a zero-copy read-only view.

Availability is environment-dependent (restricted sandboxes may lack
``/dev/shm`` or semaphore support), so creation failures raise plain
``OSError`` for callers to catch and fall back to inline pickling — the
same degrade-gracefully stance as :func:`repro.runner.engine.run_jobs`.

Lifecycle: the creating process owns the segment and must call
:meth:`SharedArrayBlock.unlink` when every consumer is done; workers call
:meth:`SharedArrayBlock.close` after copying what they need.  Both are
idempotent, and the context-manager form closes (and unlinks, for owners)
on exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

__all__ = ["SharedArraySpec", "SharedArrayBlock", "shared_memory_available"]


def shared_memory_available() -> bool:
    """True when the platform exposes ``multiprocessing.shared_memory``."""
    return _shm is not None


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle to a shared array: segment name, shape, dtype."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArrayBlock:
    """One NumPy array living in a shared-memory segment.

    >>> block = SharedArrayBlock.create(np.arange(6.0).reshape(2, 3))
    >>> view = SharedArrayBlock.attach(block.spec)
    >>> float(view.array()[1, 2])
    5.0
    >>> view.close(); block.unlink()
    """

    def __init__(self, shm, spec: SharedArraySpec, owner: bool) -> None:
        self._shm = shm
        self.spec = spec
        self.owner = owner
        self._unlinked = False

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(
        cls, array: np.ndarray, name: Optional[str] = None
    ) -> "SharedArrayBlock":
        """Copy ``array`` into a fresh shared segment (raises OSError when
        shared memory is unavailable in this environment).

        ``name`` pins the segment name — callers that may crash before
        handing the spec to the consumer (pool workers parking result
        arrays) use a shared prefix so the consumer can sweep orphans.
        """
        if _shm is None:
            raise OSError("multiprocessing.shared_memory unavailable")
        array = np.ascontiguousarray(array)
        shm = _shm.SharedMemory(create=True, size=max(1, array.nbytes), name=name)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        spec = SharedArraySpec(
            name=shm.name, shape=tuple(array.shape), dtype=str(array.dtype)
        )
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: SharedArraySpec) -> "SharedArrayBlock":
        """Attach to an existing segment by its spec (consumer side)."""
        if _shm is None:
            raise OSError("multiprocessing.shared_memory unavailable")
        return cls(_shm.SharedMemory(name=spec.name), spec, owner=False)

    def array(self) -> np.ndarray:
        """A read-only ndarray view of the segment (no copy)."""
        if self._shm is None:
            raise ValueError("shared array block is closed")
        view = np.ndarray(
            self.spec.shape, dtype=np.dtype(self.spec.dtype),
            buffer=self._shm.buf,
        )
        view.setflags(write=False)
        return view

    def close(self) -> None:
        """Detach this process's mapping (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def disown(self) -> None:
        """Hand lifecycle responsibility to another process.

        Removes the segment from *this* process's ``resource_tracker``
        registration, so a creator that exits before the consumer unlinks
        (a pool worker parking result arrays for the parent) does not have
        its tracker reap — and warn about — a segment the parent still
        owns.  The consumer must eventually call :meth:`unlink`.
        """
        try:  # pragma: no branch - tracker exists on POSIX only
            from multiprocessing import resource_tracker

            # The tracker knows the raw POSIX name (leading slash), which
            # the public ``name`` property strips; prefer the segment's
            # internal name and fall back to re-prefixing.
            name = getattr(self._shm, "_name", None)
            if name is None:
                name = self.spec.name
                if not name.startswith("/"):
                    name = "/" + name
            resource_tracker.unregister(name, "shared_memory")
        except Exception:  # pragma: no cover - platform without tracker
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner side; idempotent).

        Works after :meth:`close` too — the segment is re-opened by name
        from the spec, so an owner that detached early still cannot leak
        it.
        """
        if self._unlinked:
            return
        shm, self._shm = self._shm, None
        if shm is None:
            try:
                shm = _shm.SharedMemory(name=self.spec.name)
            except FileNotFoundError:
                self._unlinked = True
                return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing unlink
            pass
        self._unlinked = True

    # ------------------------------------------------------ context manager

    def __enter__(self) -> "SharedArrayBlock":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        if self.owner:
            self.unlink()
        else:
            self.close()
        return None
