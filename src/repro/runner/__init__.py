"""Parallel experiment engine: deterministic jobs over a process pool.

See :mod:`repro.runner.engine` for the model.  The experiment drivers in
:mod:`repro.experiments` and :mod:`repro.analysis.sensitivity` build their
grids as :class:`Job` lists and execute them through :func:`run_jobs`,
which is what the CLI's ``--workers`` flag controls (``REPRO_WORKERS`` in
the environment overrides the default when a caller passes no explicit
worker count).  :mod:`repro.runner.shared` adds shared-memory array blocks
so jobs with big read-only numerics (shard cost stacks) stop shipping them
over pipes.
"""

from repro.runner.engine import Job, JobPool, derive_seed, resolve_workers, run_jobs
from repro.runner.shared import (
    SharedArrayBlock,
    SharedArraySpec,
    shared_memory_available,
)

__all__ = [
    "Job",
    "JobPool",
    "SharedArrayBlock",
    "SharedArraySpec",
    "derive_seed",
    "resolve_workers",
    "run_jobs",
    "shared_memory_available",
]
