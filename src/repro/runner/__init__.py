"""Parallel experiment engine: deterministic jobs over a process pool.

See :mod:`repro.runner.engine` for the model.  The experiment drivers in
:mod:`repro.experiments` and :mod:`repro.analysis.sensitivity` build their
grids as :class:`Job` lists and execute them through :func:`run_jobs`,
which is what the CLI's ``--workers`` flag controls.
"""

from repro.runner.engine import Job, derive_seed, resolve_workers, run_jobs

__all__ = ["Job", "derive_seed", "resolve_workers", "run_jobs"]
