"""Deterministic scenario/job engine behind the experiment grids.

Every table and sweep of the reproduction is a grid of independent cells:
one (host count, density) workload per Table VII row, one (noise, seed)
perturbation per sensitivity cell, and so on.  This module gives those
drivers a single execution engine:

* a :class:`Job` names one cell — a picklable top-level callable, its
  keyword arguments, and the cell's key in the result table;
* :func:`derive_seed` derives a stable per-job seed from a base seed and
  the job key, so a grid re-run (serial or parallel, any worker count)
  always evaluates the same randomness per cell;
* :func:`run_jobs` executes a job list serially or over a
  ``ProcessPoolExecutor`` and returns ``{job.key: result}`` in job order —
  results never depend on completion order, which is what makes serial and
  parallel runs produce identical tables.

The pool is a best-effort accelerator: when process pools are unavailable
(restricted sandboxes, missing semaphores) or a job does not pickle,
:func:`run_jobs` falls back to the serial path with a warning instead of
failing, so ``--workers`` can default to "use them if you can".
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional

import numpy as np

from repro import obs
from repro.runner.shared import (
    SharedArrayBlock,
    SharedArraySpec,
    shared_memory_available,
)

__all__ = ["Job", "JobPool", "derive_seed", "resolve_workers", "run_jobs"]

#: Result arrays at or above this size travel back through shared memory
#: instead of the result pipe (one segment memcpy beats pickling them).
SHARED_RESULT_MIN_BYTES = 1 << 16

#: Seeds are reduced into this range so they fit every consumer
#: (``random.Random``, ``numpy.random.default_rng``, C RNGs).
_SEED_SPACE = 2**31


def derive_seed(base_seed: int, key: Hashable) -> int:
    """A stable per-cell seed from a base seed and a job key.

    Uses SHA-256 over the repr of ``(base_seed, key)`` — stable across
    processes and Python runs (unlike ``hash()``, which is salted), and
    well-spread so neighbouring grid cells don't get correlated streams.

    >>> derive_seed(11, ("table7", 100)) == derive_seed(11, ("table7", 100))
    True
    >>> derive_seed(11, ("table7", 100)) != derive_seed(12, ("table7", 100))
    True
    """
    digest = hashlib.sha256(repr((base_seed, key)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class Job:
    """One grid cell: ``fn(**kwargs)`` identified by ``key``.

    ``fn`` must be a module-level callable and ``kwargs`` values picklable,
    or the job can only run on the serial path.  When ``seed`` is set it is
    passed to ``fn`` as the ``seed`` keyword (unless ``kwargs`` already
    pins one) — the hook :func:`derive_seed` plugs into.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def run(self) -> Any:
        """Execute the job's callable (its seed injected into kwargs)."""
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs.setdefault("seed", self.seed)
        return self.fn(**kwargs)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value to a concrete worker count.

    ``None``, ``0`` and ``1`` mean serial; ``-1`` means one worker per CPU;
    any other positive integer is taken literally.

    When ``workers`` is ``None`` (the caller expressed no preference) the
    ``REPRO_WORKERS`` environment variable supplies the value instead —
    the CI/sandbox override: export ``REPRO_WORKERS=1`` to force every
    unpinned grid serial in a pool-hostile sandbox, or ``REPRO_WORKERS=-1``
    to parallelise a whole benchmark session without touching call sites.
    Explicit ``workers`` arguments always win over the environment.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {env!r}"
                ) from None
    if workers is None or workers == 0:
        return 1
    if workers == -1:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= -1, got {workers}")
    return workers


def _run_job(job: Job) -> Any:
    """Top-level trampoline so jobs traverse the process pool."""
    return job.run()


@dataclass(frozen=True)
class _TracedResult:
    """A worker's job result bundled with the spans captured while it ran.

    Produced by :func:`_traced_job` when the parent dispatched under an
    active trace; the parent unwraps it and merges ``events`` into its
    own :class:`repro.obs.Trace` (events keep the worker's pid/tid, so
    the merged timeline shows them in their own lanes).
    """

    value: Any
    events: List[Dict[str, Any]]


def _traced_job(job: Job) -> _TracedResult:
    """Run one job under a worker-local span capture (cross-process
    tracing; see :mod:`repro.obs`)."""
    token = obs.begin_capture()
    try:
        value = job.run()
    finally:
        events = obs.end_capture(token)
    return _TracedResult(value=value, events=events)


# ------------------------------------------- shared-memory result return


@dataclass(frozen=True)
class _SharedResultRef:
    """Picklable stand-in for a result array parked in shared memory."""

    spec: SharedArraySpec


#: Per-process sequence for prefixed segment names (uniqueness within a
#: worker; the run prefix + worker pid make them globally unique).
_SEGMENT_SEQ = iter(range(1 << 62))


def _segment_name(name_prefix: Optional[str]) -> Optional[str]:
    if name_prefix is None:
        return None
    import os

    return f"{name_prefix}{os.getpid():x}_{next(_SEGMENT_SEQ):x}"


def _export_result(obj: Any, name_prefix: Optional[str] = None) -> Any:
    """Worker side: park large result arrays in shared memory.

    Recursively replaces big C-contiguous float/int ndarrays inside the
    common result containers (tuples, lists, dicts, dataclasses) with
    :class:`_SharedResultRef` handles.  The worker leaves the segments
    linked — the parent copies out of them and unlinks.  Segment names
    carry the run's ``name_prefix`` so the parent can sweep orphans after
    a worker crash.  Any failure to create a segment (no ``/dev/shm``,
    quota, name limits) falls back to returning the array inline,
    preserving the pickle path.
    """
    if type(obj) is np.ndarray:
        if (
            obj.nbytes >= SHARED_RESULT_MIN_BYTES
            and obj.flags.c_contiguous
            and obj.dtype != object
        ):
            try:
                block = SharedArrayBlock.create(
                    obj, name=_segment_name(name_prefix)
                )
            except OSError:
                return obj
            spec = block.spec
            block.disown()  # the parent attaches, copies and unlinks
            block.close()  # the worker's mapping only; the segment stays
            return _SharedResultRef(spec)
        return obj
    if type(obj) is tuple:
        return tuple(_export_result(item, name_prefix) for item in obj)
    if type(obj) is list:
        return [_export_result(item, name_prefix) for item in obj]
    if type(obj) is dict:
        return {
            key: _export_result(value, name_prefix)
            for key, value in obj.items()
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {}
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            exported = _export_result(value, name_prefix)
            if exported is not value:
                changes[f.name] = exported
        return dataclasses.replace(obj, **changes) if changes else obj
    return obj


def _import_result(obj: Any) -> Any:
    """Parent side: rehydrate shared-memory refs back into ndarrays.

    One memcpy out of the segment, then the segment is destroyed — the
    result pipe only ever carried the tiny spec.
    """
    if type(obj) is _SharedResultRef:
        block = SharedArrayBlock.attach(obj.spec)
        try:
            return np.array(block.array())
        finally:
            block.unlink()
    if type(obj) is tuple:
        return tuple(_import_result(item) for item in obj)
    if type(obj) is list:
        return [_import_result(item) for item in obj]
    if type(obj) is dict:
        return {key: _import_result(value) for key, value in obj.items()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {}
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            imported = _import_result(value)
            if imported is not value:
                changes[f.name] = imported
        return dataclasses.replace(obj, **changes) if changes else obj
    return obj


@dataclass
class _JobFailure:
    """A job exception carried home as a value, worker traceback attached.

    With shared results in play the parent must drain *every* worker
    result (each undrained :class:`_SharedResultRef` is a disowned
    ``/dev/shm`` segment nobody else will ever unlink), so job errors
    cannot be allowed to short-circuit the dispatch — they ride back as
    values and re-raise after the whole grid has been imported.
    """

    error: Exception
    traceback: str


class _RemoteTraceback(Exception):
    """Formatted worker traceback, chained as the job error's cause —
    the same presentation ``concurrent.futures`` gives pool exceptions."""

    def __init__(self, text: str) -> None:
        self.text = text

    def __str__(self) -> str:
        return self.text


def _run_job_shared(job: Job, name_prefix: Optional[str] = None) -> Any:
    """Trampoline exporting large result arrays through shared memory."""
    import traceback

    try:
        return _export_result(job.run(), name_prefix)
    except Exception as exc:
        return _JobFailure(exc, traceback.format_exc())


def _run_chunk_shared(jobs: List[Job], name_prefix: str) -> List[Any]:
    """One dispatch chunk of shared-result jobs (submit-side batching)."""
    return [_run_job_shared(job, name_prefix) for job in jobs]


def _sweep_segments(name_prefix: str) -> None:
    """Best-effort unlink of every surviving segment of one grid run.

    The crash net behind the prefixed segment names: if a worker died
    after creating (and disowning) segments whose specs never reached the
    parent, no process holds a handle — but the names are enumerable on
    tmpfs, so the parent reaps them before surfacing the failure.
    """
    import glob
    import os

    for path in glob.glob(os.path.join("/dev/shm", f"{name_prefix}*")):
        try:
            block = SharedArrayBlock.attach(
                SharedArraySpec(name=os.path.basename(path), shape=(), dtype="u1")
            )
            block.unlink()
        except Exception:  # pragma: no cover - raced/foreign file
            pass


def _map_shared(pool: ProcessPoolExecutor, job_list: List[Job], chunksize: int):
    """Run a shared-results grid over explicit chunk futures.

    ``pool.map`` gives no handle on completed-but-unyielded results once
    the pool breaks, which would strand their disowned shared-memory
    segments forever.  Submitting chunks keeps every future reachable: on
    an infrastructure failure the completed chunks are still drained
    (attach + unlink), orphans from crashed workers are swept by the
    run's unique name prefix, and unstarted chunks are cancelled before
    the error propagates.  Job errors never take this path — they ride
    back as :class:`_JobFailure` values.
    """
    import uuid

    # Short prefix: POSIX shm names are capped at 31 chars on some
    # platforms, and prefix + worker pid + sequence must fit.
    name_prefix = f"rr{uuid.uuid4().hex[:8]}_"
    chunks = [
        job_list[start : start + chunksize]
        for start in range(0, len(job_list), chunksize)
    ]
    futures = [
        pool.submit(_run_chunk_shared, chunk, name_prefix) for chunk in chunks
    ]
    results: List[Any] = []
    drained = 0
    try:
        for future in futures:
            results.extend(_import_result(item) for item in future.result())
            drained += 1
    except BaseException:
        for future in futures[drained:]:
            if (
                future.done()
                and not future.cancelled()
                and future.exception() is None
            ):
                for item in future.result():
                    try:  # already-imported items attach FileNotFoundError
                        _import_result(item)
                    except Exception:
                        pass
            else:
                future.cancel()
        _sweep_segments(name_prefix)
        raise
    return results


def run_jobs(
    jobs: Iterable[Job],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    shared_results: Optional[bool] = None,
) -> Dict[Hashable, Any]:
    """Execute ``jobs`` and collect ``{job.key: result}`` in job order.

    Args:
        jobs: the grid cells; keys must be unique (a duplicate key would
            silently drop a result, so it raises instead).
        workers: parallelism per :func:`resolve_workers`.  Worker processes
            each execute whole jobs; per-job randomness must come from the
            job's own seed, which is what keeps serial and parallel runs
            identical.
        chunksize: jobs dispatched to a worker per round-trip (default 1).
            Large grids of short cells — the 6000-host ``--full`` sweeps
            spawn hundreds — amortise pool IPC by batching; results are
            identical either way, only scheduling granularity changes.
        shared_results: ship large result arrays back through
            ``multiprocessing.shared_memory`` segments instead of pickling
            them over the result pipe (arrays ≥
            :data:`SHARED_RESULT_MIN_BYTES` inside the usual result
            containers; see :func:`_export_result`).  The default ``None``
            auto-enables this whenever a pool actually runs and the
            platform has shared memory — the ``--full`` sweep grids and
            the sharded process backend use it without opting in; results
            are value-identical either way, and any segment-creation
            failure falls back to inline pickling per array.

    Raises:
        ValueError: on duplicate job keys or a non-positive chunksize.

    Any exception raised by a job propagates (from the pool: re-raised in
    the parent).  Pool *infrastructure* failures — no process support,
    unpicklable jobs — degrade to the serial path with a warning.

    >>> def cell(n, seed=None):
    ...     return n * n
    >>> jobs = [Job(key=n, fn=cell, kwargs={"n": n}) for n in range(4)]
    >>> run_jobs(jobs, workers=1)
    {0: 0, 1: 1, 2: 4, 3: 9}
    """
    if chunksize is not None and chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    job_list: List[Job] = list(jobs)
    seen = set()
    for job in job_list:
        if job.key in seen:
            raise ValueError(f"duplicate job key {job.key!r}")
        seen.add(job.key)

    count = min(resolve_workers(workers), len(job_list))
    if count > 1:
        # Pre-flight: a job that cannot traverse the pool (lambda fn,
        # unpicklable kwargs) must degrade to serial, not crash mid-map.
        try:
            pickle.dumps(job_list)
        except Exception as exc:  # pickle raises many concrete types
            warnings.warn(
                f"jobs are not picklable ({exc!r}); running "
                f"{len(job_list)} job(s) serially",
                RuntimeWarning,
                stacklevel=2,
            )
            count = 1
    use_shared = (
        shared_results
        if shared_results is not None
        else shared_memory_available()
    )

    results: List[Any]
    if count <= 1 or len(job_list) <= 1:
        # Serial jobs record straight into the active trace (if any);
        # no capture indirection needed.
        results = [job.run() for job in job_list]
    else:
        # Under an active trace, wrap each job so workers capture their
        # spans and ship them back with the result (pool workers cannot
        # reach the parent's Trace object).
        dispatch = job_list
        if obs.enabled():
            dispatch = [
                Job(key=job.key, fn=_traced_job, kwargs={"job": job})
                for job in job_list
            ]
        try:
            with ProcessPoolExecutor(max_workers=count) as pool:
                # Shared results import (and thereby unlink) every ref
                # before the pool context closes — even on failure paths —
                # because every undrained ref is a disowned shared-memory
                # segment that would otherwise outlive the run.
                if use_shared:
                    results = _map_shared(pool, dispatch, chunksize or 1)
                else:
                    results = list(
                        pool.map(_run_job, dispatch, chunksize=chunksize or 1)
                    )
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); running "
                f"{len(job_list)} job(s) serially",
                RuntimeWarning,
                stacklevel=2,
            )
            results = [job.run() for job in job_list]
        # Merge captured worker spans into the parent trace.
        trace = obs.current_trace()
        for index, result in enumerate(results):
            if type(result) is _TracedResult:
                if trace is not None:
                    trace.extend(result.events)
                results[index] = result.value
        # Job errors rode back as values (see _JobFailure) so the whole
        # grid could drain first; re-raise the first one in job order with
        # the worker traceback chained, like concurrent.futures does.
        for result in results:
            if type(result) is _JobFailure:
                result.error.__cause__ = _RemoteTraceback(
                    f"\n{result.traceback}"
                )
                raise result.error
    return {job.key: result for job, result in zip(job_list, results)}


class JobPool:
    """A persistent worker pool for multi-round job grids.

    :func:`run_jobs` builds (and tears down) a ``ProcessPoolExecutor`` per
    call — right for one-shot grids, wasteful for iterative outer loops
    that dispatch the same jobs round after round, like the
    dual-decomposition solver (:mod:`repro.mrf.dual`): a fresh pool per
    round would pay worker spawn *and* lose the workers' warm state
    (cached shard plans, reusable scratch buffers).  ``JobPool`` keeps one
    pool alive across :meth:`run` calls; worker processes persist, so
    module-level caches in the job function survive between rounds.

    Degradation mirrors :func:`run_jobs`: when process pools are
    unavailable or the jobs do not pickle, execution falls back in-process
    (and stays serial for the pool's lifetime — a broken pool rarely heals
    mid-run).  Serial and pooled runs produce identical results; per-job
    randomness must come from job seeds, never worker identity.

    Use as a context manager (or call :meth:`close`) so workers do not
    outlive the loop:

    >>> def cell(n, seed=None):
    ...     return n + 1
    >>> with JobPool(workers=1) as pool:
    ...     first = pool.run([Job(key="a", fn=cell, kwargs={"n": 1})])
    ...     second = pool.run([Job(key="a", fn=cell, kwargs={"n": 2})])
    >>> (first["a"], second["a"])
    (2, 3)
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._serial = self.workers <= 1

    def __enter__(self) -> "JobPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def run(self, jobs: Iterable[Job]) -> Dict[Hashable, Any]:
        """Execute one round of jobs; ``{job.key: result}`` in job order.

        Job exceptions propagate; pool-infrastructure failures degrade to
        the in-process path with a warning (sticky — later rounds stay
        serial).  Under an active trace, pooled workers capture their
        spans and the parent merges them, exactly like :func:`run_jobs`.
        """
        job_list: List[Job] = list(jobs)
        seen = set()
        for job in job_list:
            if job.key in seen:
                raise ValueError(f"duplicate job key {job.key!r}")
            seen.add(job.key)
        if not self._serial and len(job_list) > 1:
            try:
                pickle.dumps(job_list)
            except Exception as exc:
                warnings.warn(
                    f"jobs are not picklable ({exc!r}); pool degrades to "
                    f"the in-process path",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._serial = True
        if self._serial or len(job_list) <= 1:
            return {job.key: job.run() for job in job_list}
        dispatch = job_list
        if obs.enabled():
            dispatch = [
                Job(key=job.key, fn=_traced_job, kwargs={"job": job})
                for job in job_list
            ]
        try:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            futures = [self._pool.submit(_run_job, job) for job in dispatch]
            results = [future.result() for future in futures]
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); running "
                f"{len(job_list)} job(s) in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            self._serial = True
            self.close()
            results = [job.run() for job in job_list]
        trace = obs.current_trace()
        for index, result in enumerate(results):
            if type(result) is _TracedResult:
                if trace is not None:
                    trace.extend(result.events)
                results[index] = result.value
        return {job.key: result for job, result in zip(job_list, results)}
