"""Deterministic scenario/job engine behind the experiment grids.

Every table and sweep of the reproduction is a grid of independent cells:
one (host count, density) workload per Table VII row, one (noise, seed)
perturbation per sensitivity cell, and so on.  This module gives those
drivers a single execution engine:

* a :class:`Job` names one cell — a picklable top-level callable, its
  keyword arguments, and the cell's key in the result table;
* :func:`derive_seed` derives a stable per-job seed from a base seed and
  the job key, so a grid re-run (serial or parallel, any worker count)
  always evaluates the same randomness per cell;
* :func:`run_jobs` executes a job list serially or over a
  ``ProcessPoolExecutor`` and returns ``{job.key: result}`` in job order —
  results never depend on completion order, which is what makes serial and
  parallel runs produce identical tables.

The pool is a best-effort accelerator: when process pools are unavailable
(restricted sandboxes, missing semaphores) or a job does not pickle,
:func:`run_jobs` falls back to the serial path with a warning instead of
failing, so ``--workers`` can default to "use them if you can".
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional

__all__ = ["Job", "derive_seed", "resolve_workers", "run_jobs"]

#: Seeds are reduced into this range so they fit every consumer
#: (``random.Random``, ``numpy.random.default_rng``, C RNGs).
_SEED_SPACE = 2**31


def derive_seed(base_seed: int, key: Hashable) -> int:
    """A stable per-cell seed from a base seed and a job key.

    Uses SHA-256 over the repr of ``(base_seed, key)`` — stable across
    processes and Python runs (unlike ``hash()``, which is salted), and
    well-spread so neighbouring grid cells don't get correlated streams.

    >>> derive_seed(11, ("table7", 100)) == derive_seed(11, ("table7", 100))
    True
    >>> derive_seed(11, ("table7", 100)) != derive_seed(12, ("table7", 100))
    True
    """
    digest = hashlib.sha256(repr((base_seed, key)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class Job:
    """One grid cell: ``fn(**kwargs)`` identified by ``key``.

    ``fn`` must be a module-level callable and ``kwargs`` values picklable,
    or the job can only run on the serial path.  When ``seed`` is set it is
    passed to ``fn`` as the ``seed`` keyword (unless ``kwargs`` already
    pins one) — the hook :func:`derive_seed` plugs into.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def run(self) -> Any:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs.setdefault("seed", self.seed)
        return self.fn(**kwargs)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value to a concrete worker count.

    ``None``, ``0`` and ``1`` mean serial; ``-1`` means one worker per CPU;
    any other positive integer is taken literally.

    When ``workers`` is ``None`` (the caller expressed no preference) the
    ``REPRO_WORKERS`` environment variable supplies the value instead —
    the CI/sandbox override: export ``REPRO_WORKERS=1`` to force every
    unpinned grid serial in a pool-hostile sandbox, or ``REPRO_WORKERS=-1``
    to parallelise a whole benchmark session without touching call sites.
    Explicit ``workers`` arguments always win over the environment.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {env!r}"
                ) from None
    if workers is None or workers == 0:
        return 1
    if workers == -1:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= -1, got {workers}")
    return workers


def _run_job(job: Job) -> Any:
    """Top-level trampoline so jobs traverse the process pool."""
    return job.run()


def run_jobs(
    jobs: Iterable[Job],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> Dict[Hashable, Any]:
    """Execute ``jobs`` and collect ``{job.key: result}`` in job order.

    Args:
        jobs: the grid cells; keys must be unique (a duplicate key would
            silently drop a result, so it raises instead).
        workers: parallelism per :func:`resolve_workers`.  Worker processes
            each execute whole jobs; per-job randomness must come from the
            job's own seed, which is what keeps serial and parallel runs
            identical.
        chunksize: jobs dispatched to a worker per round-trip (default 1).
            Large grids of short cells — the 6000-host ``--full`` sweeps
            spawn hundreds — amortise pool IPC by batching; results are
            identical either way, only scheduling granularity changes.

    Raises:
        ValueError: on duplicate job keys or a non-positive chunksize.

    Any exception raised by a job propagates (from the pool: re-raised in
    the parent).  Pool *infrastructure* failures — no process support,
    unpicklable jobs — degrade to the serial path with a warning.
    """
    if chunksize is not None and chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    job_list: List[Job] = list(jobs)
    seen = set()
    for job in job_list:
        if job.key in seen:
            raise ValueError(f"duplicate job key {job.key!r}")
        seen.add(job.key)

    count = min(resolve_workers(workers), len(job_list))
    if count > 1:
        # Pre-flight: a job that cannot traverse the pool (lambda fn,
        # unpicklable kwargs) must degrade to serial, not crash mid-map.
        try:
            pickle.dumps(job_list)
        except Exception as exc:  # pickle raises many concrete types
            warnings.warn(
                f"jobs are not picklable ({exc!r}); running "
                f"{len(job_list)} job(s) serially",
                RuntimeWarning,
                stacklevel=2,
            )
            count = 1

    results: List[Any]
    if count <= 1 or len(job_list) <= 1:
        results = [job.run() for job in job_list]
    else:
        try:
            with ProcessPoolExecutor(max_workers=count) as pool:
                results = list(
                    pool.map(_run_job, job_list, chunksize=chunksize or 1)
                )
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); running "
                f"{len(job_list)} job(s) serially",
                RuntimeWarning,
                stacklevel=2,
            )
            results = [job.run() for job in job_list]
    return {job.key: result for job, result in zip(job_list, results)}
