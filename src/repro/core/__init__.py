"""The paper's primary contribution: optimal diversification.

``repro.core.costs``
    Builds the diversification MRF from a network, a similarity table and a
    constraint set — the paper's cost function (Eqs. 1-3) with constraints
    folded into unary masks and intra-host pairwise tables (Section V-A/B).
``repro.core.compile``
    The direct network→plan compiler: emits the byte-identical
    :class:`~repro.mrf.vectorized.MRFArrays` plan without materialising a
    Python-level MRF — the default build path of ``diversify``.
``repro.core.diversify``
    The top-level API: :func:`~repro.core.diversify.diversify` returns the
    (constrained) optimal product assignment α̂ / α̂_C (Definition 5).
``repro.core.baselines``
    Comparison assignments: mono-culture α_m, random α_r and a greedy
    colouring heuristic in the spirit of O'Donnell & Sethu.
"""

from repro.core.costs import MRFBuild, assignment_energy, build_mrf
from repro.core.compile import CompiledPlan, compile_plan
from repro.core.diversify import DiversificationResult, diversify
from repro.core.baselines import (
    greedy_assignment,
    mono_assignment,
    random_assignment,
)

__all__ = [
    "MRFBuild",
    "build_mrf",
    "assignment_energy",
    "CompiledPlan",
    "compile_plan",
    "DiversificationResult",
    "diversify",
    "mono_assignment",
    "random_assignment",
    "greedy_assignment",
]
