"""Top-level diversification API (paper Definition 5).

:func:`diversify` computes the optimal product assignment α̂ for a network —
or the constrained optimum α̂_C when a constraint set is given — by
compiling the MRF of Section V and running a MAP solver (TRW-S by default).
The result bundles the decoded assignment with optimisation diagnostics
(energy, dual lower bound, certificate of optimality) and
diversity-oriented summary statistics.

The general path compiles the network **directly into an array plan**
(:mod:`repro.core.compile`) — byte-identical to the classic
``build_mrf`` + ``MRFArrays`` pipeline but without materialising per-edge
Python objects, which is what keeps cold plan builds off the critical path
of the 1000-6000-host sweeps.  ``compile="python"`` forces the classic
object pipeline (solvers without a plan-level API always use it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple, Union

from repro.core.compile import CompiledPlan, compile_plan
from repro.core.costs import MRFBuild, build_mrf
from repro.mrf.solvers import SolverResult, get_solver
from repro.mrf.vectorized import MRFArrays
from repro.network.assignment import ProductAssignment
from repro.network.constraints import ConstraintSet, ConstraintViolation
from repro.network.model import Network
from repro.network.zones import ZonedNetwork
from repro.nvd.similarity import SimilarityTable

__all__ = ["DiversificationResult", "diversify"]

#: Solvers with a plan-level (``solve_arrays``) API — the ones the direct
#: compiler path can drive without a :class:`PairwiseMRF`.
_PLAN_SOLVERS = ("trws", "bp")


@dataclass
class DiversificationResult:
    """Outcome of :func:`diversify`.

    Attributes:
        assignment: the decoded product assignment (always complete).
        energy: MRF energy of the assignment (the paper's E(N), Eq. 1).
        lower_bound: dual lower bound when the solver provides one.
        certified_optimal: True when energy == lower_bound (global optimum).
        satisfied: True when every constraint holds in the assignment;
            False signals an infeasible constraint set (the solver then
            returns the least-violating assignment).
        violations: the concrete violations when ``satisfied`` is False.
        similarity_total: Σ over links and shared services of the assigned
            products' similarity — the paper's pairwise cost (Eq. 3),
            unweighted.  Lower is more diverse.
        mean_edge_similarity: ``similarity_total`` averaged over the
            (link, shared-service) pairs; 0.0 means perfectly diversified.
        solver_result: raw solver output (traces, iterations, ...).
        build: the MRF build (variable mapping), for advanced inspection;
            None unless the Python object pipeline ran
            (``compile="python"``, or a solver without a plan-level API).
        plan: the compiled array plan + variable mapping when the direct
            compiler path ran; None on the Python and fast paths.
    """

    assignment: ProductAssignment
    energy: float
    lower_bound: float
    certified_optimal: bool
    satisfied: bool
    violations: List[ConstraintViolation]
    similarity_total: float
    mean_edge_similarity: float
    solver_result: SolverResult
    build: Optional[MRFBuild]
    plan: Optional[CompiledPlan] = None

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        status = "certified optimal" if self.certified_optimal else "best found"
        feasibility = (
            "all constraints satisfied"
            if self.satisfied
            else f"{len(self.violations)} constraint violation(s)"
        )
        return (
            f"{status}: energy={self.energy:.6f} "
            f"(lower bound {self.lower_bound:.6f}), {feasibility}; "
            f"total edge similarity {self.similarity_total:.4f}, "
            f"mean {self.mean_edge_similarity:.4f} over coupled edges; "
            f"solver={self.solver_result.solver} "
            f"({self.solver_result.iterations} iterations, "
            f"converged={self.solver_result.converged})"
        )


def diversify(
    network: Network,
    similarity: SimilarityTable,
    constraints: Optional[ConstraintSet] = None,
    solver: str = "trws",
    unary_constant: float = 0.01,
    pairwise_weight: float = 1.0,
    preferences: Optional[Mapping[Tuple[str, str, str], float]] = None,
    service_weights: Optional[Mapping[str, float]] = None,
    fast_path: bool = True,
    shards: Optional[Union[int, str]] = None,
    zones: Optional[ZonedNetwork] = None,
    compile: str = "direct",
    **solver_options,
) -> DiversificationResult:
    """Compute the (constrained) optimal diversification of a network.

    Args:
        network: the network to diversify.
        similarity: vulnerability-similarity table over the product names.
        constraints: legacy/policy/combination constraints (Definition 4).
        solver: registered solver name — ``"trws"`` (default), ``"bp"``,
            ``"icm"`` or ``"exact"``.
        unary_constant: the paper's ``Pr_const`` per-label base cost.
        pairwise_weight: λ scaling of the similarity penalty.
        preferences: soft (host, service, product) → cost adjustments.
        service_weights: per-service criticality multipliers of the
            similarity penalty (see :func:`repro.core.costs.build_mrf`).
        fast_path: allow the batched replicated-service TRW-S when the
            instance qualifies (uniform services, no constraints); the
            labelling rule and costs are identical, only the data layout
            differs.  Set False to force the general per-variable MRF.
        shards: route the solve through the component partition
            (:class:`~repro.mrf.sharded.ShardedSolver`), solving shards
            concurrently with this many workers (``-1`` = one per CPU,
            ``1`` = sharded but serial — still wins per-shard convergence).
            ``"zones"`` derives the partition from the ``zones`` model
            instead: each zone's micro-components are pinned into one
            shard (still exact — zone grouping only merges components).
            ``"cut"`` routes through Lagrangian dual decomposition
            (:class:`~repro.mrf.dual.DualDecompositionSolver`): a
            balanced edge cut splits even a single giant connected
            component, coupled shards iterate to agreement, and the
            result carries a certified duality gap instead of the exact
            guarantee (``"trws"`` only; tune via ``parts=``,
            ``max_rounds=``, ``gap_tolerance=``, ``executor=``).
            ``None``/``0`` keeps the monolithic solve.  Exact for
            ``"trws"``/``"bp"``, including the batched fast path; other
            solvers ignore it.
        zones: the :class:`~repro.network.zones.ZonedNetwork` backing
            ``shards="zones"`` (required then, unused otherwise).
        compile: ``"direct"`` (default) compiles the network straight into
            an array plan; ``"python"`` keeps the classic
            ``build_mrf`` → ``MRFArrays`` object pipeline.  The two
            produce byte-identical plans (asserted in
            ``tests/test_compile.py``); solvers without a plan-level API
            always take the Python pipeline.
        **solver_options: forwarded to the solver constructor
            (e.g. ``max_iterations=50``).

    Returns:
        A :class:`DiversificationResult` with the assignment α̂ (or α̂_C).

    >>> from repro.network import chain_network
    >>> from repro.nvd import SimilarityTable
    >>> net = chain_network(3)
    >>> table = SimilarityTable(products=["p0", "p1"])
    >>> result = diversify(net, table, fast_path=False)
    >>> result.certified_optimal
    True
    >>> round(result.energy, 2)
    0.03
    """
    if compile not in ("direct", "python"):
        raise ValueError(
            f"compile must be 'direct' or 'python', got {compile!r}"
        )
    if shards == "zones" and zones is None:
        raise ValueError("shards='zones' needs a ZonedNetwork via zones=")
    constraint_set = constraints or ConstraintSet()
    if (
        fast_path
        and solver == "trws"
        and shards not in ("zones", "cut")
        and not constraint_set
        and not preferences
        and not service_weights
    ):
        fast_result = _diversify_replicated(
            network,
            similarity,
            unary_constant=unary_constant,
            pairwise_weight=pairwise_weight,
            shards=shards,
            **solver_options,
        )
        if fast_result is not None:
            return fast_result

    build: Optional[MRFBuild] = None
    compiled: Optional[CompiledPlan] = None
    if compile == "direct" and solver in _PLAN_SOLVERS:
        compiled = compile_plan(
            network,
            similarity,
            constraints=constraint_set,
            unary_constant=unary_constant,
            pairwise_weight=pairwise_weight,
            preferences=preferences,
            service_weights=service_weights,
        )
        solver_result = _solve_compiled(
            compiled, solver, shards, zones, solver_options
        )
        assignment = compiled.labels_to_assignment(
            network, solver_result.labels
        )
    else:
        build = build_mrf(
            network,
            similarity,
            constraints=constraint_set,
            unary_constant=unary_constant,
            pairwise_weight=pairwise_weight,
            preferences=preferences,
            service_weights=service_weights,
        )
        if shards and solver in _PLAN_SOLVERS:
            from repro.mrf.partition import split_components, zone_groups
            from repro.mrf.sharded import ShardedSolver

            if shards == "cut":
                from repro.mrf.dual import DualDecompositionSolver

                solver_result = DualDecompositionSolver(
                    solver=solver, **solver_options
                ).solve(build.mrf)
            elif shards == "zones":
                plan = MRFArrays(build.mrf)
                partition = split_components(
                    plan, groups=zone_groups(build.variables, zones)
                )
                solver_result = ShardedSolver(
                    solver=solver, workers=-1, **solver_options
                ).solve_arrays(plan, partition=partition)
            else:
                solver_result = ShardedSolver(
                    solver=solver, workers=shards, **solver_options
                ).solve(build.mrf)
        else:
            solver_instance = get_solver(solver, **solver_options)
            solver_result = solver_instance.solve(build.mrf)
        assignment = build.labels_to_assignment(network, solver_result.labels)

    violations = constraint_set.violations(assignment, network)
    similarity_total, coupled_edges = _edge_similarity(network, similarity, assignment)
    mean_similarity = similarity_total / coupled_edges if coupled_edges else 0.0

    return DiversificationResult(
        assignment=assignment,
        energy=solver_result.energy,
        lower_bound=solver_result.lower_bound,
        certified_optimal=solver_result.is_certified_optimal(tolerance=1e-6),
        satisfied=not violations,
        violations=violations,
        similarity_total=similarity_total,
        mean_edge_similarity=mean_similarity,
        solver_result=solver_result,
        build=build,
        plan=compiled,
    )


def _solve_compiled(
    compiled: CompiledPlan,
    solver: str,
    shards: Optional[Union[int, str]],
    zones: Optional[ZonedNetwork],
    solver_options: Mapping,
) -> SolverResult:
    """Solve a compiled plan — monolithic, shard-count, zone- or cut-sharded.

    The monolithic dispatch (forest DP for cold TRW-S forests, greedy
    refine init otherwise) mirrors ``TRWSSolver.solve`` on the equivalent
    MRF, so compiled and Python-built solves return identical labellings.
    """
    from repro.mrf.sharded import ShardedSolver, solve_plan

    if shards == "cut":
        from repro.mrf.dual import DualDecompositionSolver

        return DualDecompositionSolver(
            solver=solver, **solver_options
        ).solve_arrays(compiled.plan)
    if shards == "zones":
        from repro.mrf.partition import split_components, zone_groups

        partition = split_components(
            compiled.plan, groups=zone_groups(compiled.variables, zones)
        )
        return ShardedSolver(
            solver=solver, workers=-1, **solver_options
        ).solve_arrays(compiled.plan, partition=partition)
    if shards:
        return ShardedSolver(
            solver=solver, workers=shards, **solver_options
        ).solve_arrays(compiled.plan)
    return solve_plan(compiled.plan, solver=solver, **solver_options)


def _diversify_replicated(
    network: Network,
    similarity: SimilarityTable,
    unary_constant: float,
    pairwise_weight: float,
    shards: Optional[int] = None,
    **solver_options,
) -> Optional[DiversificationResult]:
    """The batched replicated-service fast path; None when ineligible."""
    from repro.mrf.batched import (
        BatchedTRWSSolver,
        replicated_problem_from_network,
    )

    problem = replicated_problem_from_network(
        network,
        similarity,
        unary_constant=unary_constant,
        pairwise_weight=pairwise_weight,
    )
    if problem is None:
        return None
    if shards:
        from repro.mrf.sharded import ShardedSolver

        sharded = ShardedSolver(solver="trws", workers=shards, **solver_options)
        batched = sharded.solve_replicated(problem)
    else:
        solver = BatchedTRWSSolver(**solver_options)
        batched = solver.solve(problem)

    assignment = ProductAssignment(network)
    for position, host in enumerate(network.hosts):
        for k, service in enumerate(problem.services):
            assignment.assign(
                host, service, problem.products[k][batched.labels[position, k]]
            )

    similarity_total, coupled_edges = _edge_similarity(network, similarity, assignment)
    mean_similarity = similarity_total / coupled_edges if coupled_edges else 0.0
    solver_result = SolverResult(
        labels=[int(x) for x in batched.labels.reshape(-1)],
        energy=batched.energy,
        lower_bound=batched.lower_bound,
        iterations=batched.iterations,
        converged=batched.converged,
        solver=BatchedTRWSSolver.name,
    )
    return DiversificationResult(
        assignment=assignment,
        energy=batched.energy,
        lower_bound=batched.lower_bound,
        certified_optimal=solver_result.is_certified_optimal(tolerance=1e-6),
        satisfied=True,
        violations=[],
        similarity_total=similarity_total,
        mean_edge_similarity=mean_similarity,
        solver_result=solver_result,
        build=None,
    )


def _edge_similarity(
    network: Network,
    similarity: SimilarityTable,
    assignment: ProductAssignment,
) -> Tuple[float, int]:
    """Total assigned-product similarity over (link, shared-service) pairs."""
    total = 0.0
    coupled = 0
    for a, b in network.links:
        for service in network.shared_services(a, b):
            product_a = assignment.get(a, service)
            product_b = assignment.get(b, service)
            if product_a is None or product_b is None:
                continue
            coupled += 1
            total += similarity.get(product_a, product_b)
    return total, coupled
