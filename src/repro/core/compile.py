"""Direct network → array-plan compiler (no Python-level MRF).

:func:`repro.core.costs.build_mrf` walks the network with per-host /
per-link / per-label Python loops into a dict-based
:class:`~repro.mrf.graph.PairwiseMRF`, which :class:`~repro.mrf.vectorized.
MRFArrays` then walks *again* to flatten into arrays.  On the scalability
sweeps (1000-6000 hosts, tens of services) that double walk — hundreds of
thousands of ``add_edge`` calls — dominates the cold plan-build cost now
that the solvers themselves are vectorized.  This module compiles the plan
directly:

* **Variables** are enumerated once (hosts in insertion order × services in
  declaration order, exactly the ``build_mrf`` node order) while interning
  services, candidate ranges and products into integer ids.
* **Edges** are emitted per *host-profile pair*: hosts sharing a service
  list share a profile, so the (link, shared-service) → (node, node)
  expansion is a handful of NumPy repeats/tiles instead of a per-edge loop.
* **Cost matrices** are deduplicated by (candidate range, candidate range,
  λ·weight) key in first-appearance order over the edge stream — the same
  stack the ``id()``-dedup of ``MRFArrays(mrf)`` recovers from the builder's
  matrix cache — and computed as slices of one product-similarity matrix.
* **Constraints** (Fix/Forbid unary masks, combination tables) land as
  array writes replicating the builder's accumulation order bit-for-bit.

The result is **byte-identical** to ``MRFArrays(build_mrf(...).mrf)`` — the
same unary stack, cost stack, edge arrays, message slots, γ weights and
wavefront levels — which the parity suite in ``tests/test_compile.py``
asserts array by array.  :func:`compile_stream_parts` emits the same plan
in the :class:`~repro.stream.plan.StreamPlan` convention instead (one
matrix per unordered range pair, edges flipped onto the stored orientation,
per-edge link/service keys), which is what the streaming engine's cold
rebuilds consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.costs import (
    HARD_COST,
    _reject_conflicting_fixes,
    decode_assignment,
    encode_labels,
)
from repro.mrf.vectorized import MRFArrays
from repro.network.assignment import ProductAssignment
from repro.network.constraints import (
    GLOBAL,
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = [
    "COMBO_META",
    "CompiledPlan",
    "CompiledParts",
    "compile_plan",
    "compile_parts",
    "compile_stream_parts",
    "constraint_mask",
    "write_combination",
]

#: matrix-meta sentinel of an intra-host combination table in the stream
#: convention — the empty ranges can never match a similarity re-score's
#: product scan, and :class:`~repro.stream.plan.StreamPlan` excludes it
#: from the similarity dedup index by the same emptiness test.
COMBO_META: Tuple[Tuple[str, ...], Tuple[str, ...], float] = ((), (), 0.0)


@dataclass
class CompiledParts:
    """Raw plan parts straight from the network, plus the variable mapping.

    ``edge_first``/``edge_second``/``edge_cid`` index ``matrices`` exactly
    as :meth:`MRFArrays.from_parts` consumes them.  ``matrix_meta`` and
    ``edge_keys`` are filled by the stream convention only (see
    :func:`compile_stream_parts`).
    """

    variables: List[Tuple[str, str]]
    index: Dict[Tuple[str, str], int]
    candidates: List[Tuple[str, ...]]
    unary: np.ndarray          # (n, lmax) padded, zeros outside the mask
    label_counts: np.ndarray   # (n,)
    edge_first: np.ndarray
    edge_second: np.ndarray
    edge_cid: np.ndarray
    matrices: List[np.ndarray]
    matrix_meta: Optional[List[Tuple[Tuple[str, ...], Tuple[str, ...], float]]] = None
    #: similarity edges carry ((link a, link b), service); combination
    #: edges carry ((host, host), (service_lo, service_hi)).
    edge_keys: Optional[
        List[Tuple[Tuple[str, str], Union[str, Tuple[str, str]]]]
    ] = None

    def unary_vectors(self) -> List[np.ndarray]:
        """Per-node unpadded unary vectors (the ``from_parts`` form)."""
        return [
            self.unary[node, : int(count)]
            for node, count in enumerate(self.label_counts)
        ]


@dataclass
class CompiledPlan:
    """A compiled :class:`MRFArrays` plan plus the variable mapping.

    The plan-level counterpart of :class:`~repro.core.costs.MRFBuild`:
    same ``variables``/``index``/``candidates`` contract, but the model
    lives in the array plan instead of a :class:`PairwiseMRF`.
    """

    plan: MRFArrays
    variables: List[Tuple[str, str]]
    index: Dict[Tuple[str, str], int]
    candidates: List[Tuple[str, ...]]

    def labels_to_assignment(
        self, network: Network, labels: Sequence[int]
    ) -> ProductAssignment:
        """Decode a solver labelling back into a product assignment."""
        return decode_assignment(network, self.variables, self.candidates, labels)

    def assignment_to_labels(self, assignment: ProductAssignment) -> List[int]:
        """Encode a complete assignment as a labelling of this plan."""
        return encode_labels(self.variables, self.candidates, assignment)


# ------------------------------------------------------------ network index


class _NetworkIndex:
    """Interned array view of a network's variables and link couplings.

    Built in one O(hosts·services + links) pass; everything downstream —
    edge emission, cost-matrix assembly, vectorized energy evaluation — is
    NumPy over the interned ids.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        hosts = network.hosts
        self.host_ids: Dict[str, int] = {h: k for k, h in enumerate(hosts)}
        self.service_names: List[str] = []
        service_ids: Dict[str, int] = {}
        self.ranges: List[Tuple[str, ...]] = []
        range_ids: Dict[Tuple[str, ...], int] = {}
        self.variables: List[Tuple[str, str]] = []
        self.index: Dict[Tuple[str, str], int] = {}
        self.candidates: List[Tuple[str, ...]] = []
        var_host: List[int] = []
        var_sid: List[int] = []
        var_rid: List[int] = []
        profiles: Dict[Tuple[int, ...], int] = {}
        self.profile_sids: List[Tuple[int, ...]] = []
        host_profile = np.zeros(len(hosts), dtype=np.int64)

        for h, host in enumerate(hosts):
            sids: List[int] = []
            for service, range_ in network.service_ranges(host):
                sid = service_ids.get(service)
                if sid is None:
                    sid = len(self.service_names)
                    service_ids[service] = sid
                    self.service_names.append(service)
                rid = range_ids.get(range_)
                if rid is None:
                    rid = len(self.ranges)
                    range_ids[range_] = rid
                    self.ranges.append(range_)
                self.index[(host, service)] = len(self.variables)
                self.variables.append((host, service))
                self.candidates.append(range_)
                var_host.append(h)
                var_sid.append(sid)
                var_rid.append(rid)
                sids.append(sid)
            key = tuple(sids)
            pid = profiles.get(key)
            if pid is None:
                pid = len(self.profile_sids)
                profiles[key] = pid
                self.profile_sids.append(key)
            host_profile[h] = pid

        n = len(self.variables)
        self.node_count = n
        s_count = len(self.service_names)
        self.var_host = np.asarray(var_host, dtype=np.int64)
        self.var_sid = np.asarray(var_sid, dtype=np.int64)
        self.node_rid = np.asarray(var_rid, dtype=np.int64)
        self.host_profile = host_profile
        #: (hosts, services) → node id (-1 where the host lacks the service).
        self.node_of = np.full((len(hosts), s_count), -1, dtype=np.int64)
        if n:
            self.node_of[self.var_host, self.var_sid] = np.arange(n)
        self.label_counts = np.asarray(
            [len(r) for r in self.candidates], dtype=np.int64
        )

        # Product interning + per-range product-index arrays (for slicing
        # the global similarity matrix into range-pair cost matrices).
        product_ids: Dict[str, int] = {}
        self.range_pids: List[np.ndarray] = []
        for range_ in self.ranges:
            pids = []
            for product in range_:
                pid = product_ids.get(product)
                if pid is None:
                    pid = len(product_ids)
                    product_ids[product] = pid
                pids.append(pid)
            self.range_pids.append(np.asarray(pids, dtype=np.int64))
        self.product_names: List[str] = list(product_ids)
        self.product_ids = product_ids

    # -------------------------------------------------------------- edges

    def link_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(first, second, sid, link row) per (link, shared-service) edge.

        Edge order matches ``build_mrf`` exactly: links in sorted order,
        each link's shared services in the first host's declaration order.
        """
        links = self.network.links
        empty = np.zeros(0, dtype=np.int64)
        if not links:
            self._links = links
            return empty, empty.copy(), empty.copy(), empty.copy()
        self._links = links
        la = np.fromiter(
            (self.host_ids[a] for a, _b in links), np.int64, len(links)
        )
        lb = np.fromiter(
            (self.host_ids[b] for _a, b in links), np.int64, len(links)
        )
        p_count = len(self.profile_sids)
        pair = self.host_profile[la] * p_count + self.host_profile[lb]
        uniq_pairs, inv = np.unique(pair, return_inverse=True)
        shared: List[np.ndarray] = []
        for up in uniq_pairs:
            pa, pb = divmod(int(up), p_count)
            members = set(self.profile_sids[pb])
            shared.append(
                np.asarray(
                    [sid for sid in self.profile_sids[pa] if sid in members],
                    dtype=np.int64,
                )
            )
        counts = np.asarray([len(shared[u]) for u in inv], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        m = int(offsets[-1])
        first = np.empty(m, dtype=np.int64)
        second = np.empty(m, dtype=np.int64)
        sid = np.empty(m, dtype=np.int64)
        link_of = np.empty(m, dtype=np.int64)
        # One segmented grouping of links by profile pair — a stable
        # argsort keeps each group's links ascending, so the scatter below
        # is order-identical to a per-pair scan without being O(pairs·links)
        # when every host has its own profile.
        group_order = np.argsort(inv, kind="stable")
        group_bounds = np.searchsorted(
            inv[group_order], np.arange(len(uniq_pairs) + 1)
        )
        for u, sids in enumerate(shared):
            k = len(sids)
            if k == 0:
                continue
            rows = group_order[group_bounds[u] : group_bounds[u + 1]]
            slots = (offsets[rows][:, None] + np.arange(k)[None, :]).ravel()
            svc = np.tile(sids, len(rows))
            ha = np.repeat(la[rows], k)
            hb = np.repeat(lb[rows], k)
            first[slots] = self.node_of[ha, svc]
            second[slots] = self.node_of[hb, svc]
            sid[slots] = svc
            link_of[slots] = np.repeat(rows, k)
        return first, second, sid, link_of

    # ------------------------------------------------------------- weights

    def service_weight_ids(
        self,
        pairwise_weight: float,
        service_weights: Optional[Mapping[str, float]],
    ) -> Tuple[np.ndarray, List[float]]:
        """(wid per sid, distinct weight values) with value-level interning.

        ``build_mrf`` keys its matrix cache on the weight *value*, so two
        services with equal weights (and ranges) share one matrix; the
        interning here preserves that sharing.
        """
        weight_ids: Dict[float, int] = {}
        values: List[float] = []
        wid_of = np.zeros(len(self.service_names), dtype=np.int64)
        for sid, service in enumerate(self.service_names):
            weight = pairwise_weight
            if service_weights:
                weight *= float(service_weights.get(service, 1.0))
            wid = weight_ids.get(weight)
            if wid is None:
                wid = len(values)
                weight_ids[weight] = wid
                values.append(weight)
            wid_of[sid] = wid
        return wid_of, values

    # ---------------------------------------------------------- similarity

    def similarity_matrix(self, similarity: SimilarityTable) -> np.ndarray:
        """Dense product-pair similarity over the network's product universe."""
        return similarity.matrix(self.product_names)


def _check_weights(
    pairwise_weight: float, service_weights: Optional[Mapping[str, float]]
) -> None:
    """The builder's weight validation, shared by both conventions."""
    if pairwise_weight < 0:
        raise ValueError("pairwise_weight must be non-negative")
    if service_weights and any(w < 0 for w in service_weights.values()):
        raise ValueError("service weights must be non-negative")


def _base_unary(net: _NetworkIndex, unary_constant: float) -> np.ndarray:
    """The padded ``Pr_const`` unary stack (zeros outside the label mask)."""
    counts = net.label_counts
    lmax = int(counts.max()) if net.node_count else 0
    mask = np.arange(lmax)[None, :] < counts[:, None]
    return np.where(mask, float(unary_constant), 0.0)


def _range_matrix(
    net: _NetworkIndex, sim: np.ndarray, rid_a: int, rid_b: int, weight: float
) -> np.ndarray:
    """One λ·similarity cost matrix between two interned candidate ranges."""
    return weight * sim[np.ix_(net.range_pids[rid_a], net.range_pids[rid_b])]


def _appearance_rank(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(cid per key, first-occurrence position per cid) in appearance order.

    ``np.unique`` sorts; re-ranking by the first-occurrence index restores
    the first-appearance order that the ``id()``-dedup of ``MRFArrays``
    (and the builder's matrix cache) produce.
    """
    uniq, first_idx, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq))
    return rank[inverse], first_idx[order]


# ----------------------------------------------------------------- compile


def compile_parts(
    network: Network,
    similarity: SimilarityTable,
    constraints: Optional[ConstraintSet] = None,
    unary_constant: float = 0.01,
    pairwise_weight: float = 1.0,
    preferences: Optional[Mapping[Tuple[str, str, str], float]] = None,
    service_weights: Optional[Mapping[str, float]] = None,
) -> CompiledParts:
    """Compile raw plan parts in the ``build_mrf`` convention.

    Arguments mirror :func:`repro.core.costs.build_mrf`; the emitted parts
    reproduce its plan byte-for-byte once assembled (oriented transpose
    entries in the cost stack, similarity edges before combination edges,
    constraint masks accumulated in constraint order).
    """
    _check_weights(pairwise_weight, service_weights)
    constraint_set = constraints or ConstraintSet()
    constraint_set.validate_against(network)
    _reject_conflicting_fixes(constraint_set)

    phases = obs.phase_timer("compile")
    net = _NetworkIndex(network)
    phases.lap("compile.index", nodes=len(net.variables))
    counts = net.label_counts
    unary = _base_unary(net, unary_constant)

    # ---- soft preferences (one add per named (host, service, product)).
    if preferences:
        for (host, service, product), extra in preferences.items():
            node = net.index.get((host, service))
            if node is None:
                continue
            range_ = net.candidates[node]
            if product in range_:
                unary[node, range_.index(product)] += float(extra)

    # ---- hard unary masks, accumulated in constraint order like the
    # builder's add_unary calls (element-wise addition, same sequence).
    for constraint in constraint_set:
        if isinstance(constraint, (FixProduct, ForbidProduct)):
            node = net.index[(constraint.host, constraint.service)]
            count = int(counts[node])
            unary[node, :count] = unary[node, :count] + constraint_mask(
                net.candidates[node], constraint
            )
    phases.lap("compile.unary")

    # ---- similarity edges, cost stack deduplicated by oriented key.
    first, second, sid, _link_of = net.link_edges()
    wid_of, weight_values = net.service_weight_ids(
        pairwise_weight, service_weights
    )
    matrices: List[np.ndarray] = []
    if len(first):
        r_count = max(len(net.ranges), 1)
        w_count = max(len(weight_values), 1)
        keys = (
            net.node_rid[first] * r_count + net.node_rid[second]
        ) * w_count + wid_of[sid]
        edge_cid, first_pos = _appearance_rank(keys)
        sim = net.similarity_matrix(similarity)
        for position in first_pos:
            e = int(position)
            matrices.append(
                _range_matrix(
                    net,
                    sim,
                    int(net.node_rid[first[e]]),
                    int(net.node_rid[second[e]]),
                    weight_values[int(wid_of[sid[e]])],
                )
            )
    else:
        edge_cid = np.zeros(0, dtype=np.int64)
    phases.lap("compile.edges", edges=len(first), matrices=len(matrices))

    # ---- intra-host combination-constraint edges (appended after the
    # similarity edges, one table per node pair, insertion order).
    extra_first, extra_second, extra_cid, tables = _combination_edges(
        network, constraint_set, net, base_cid=len(matrices)
    )
    if extra_first:
        first = np.concatenate([first, np.asarray(extra_first, dtype=np.int64)])
        second = np.concatenate(
            [second, np.asarray(extra_second, dtype=np.int64)]
        )
        edge_cid = np.concatenate(
            [edge_cid, np.asarray(extra_cid, dtype=np.int64)]
        )
        matrices.extend(tables)
    phases.lap("compile.combo_edges", combo_edges=len(extra_first))

    return CompiledParts(
        variables=net.variables,
        index=net.index,
        candidates=net.candidates,
        unary=unary,
        label_counts=counts,
        edge_first=first,
        edge_second=second,
        edge_cid=edge_cid,
        matrices=matrices,
    )


def compile_plan(
    network: Network,
    similarity: SimilarityTable,
    constraints: Optional[ConstraintSet] = None,
    unary_constant: float = 0.01,
    pairwise_weight: float = 1.0,
    preferences: Optional[Mapping[Tuple[str, str, str], float]] = None,
    service_weights: Optional[Mapping[str, float]] = None,
) -> CompiledPlan:
    """Compile a network straight into an :class:`MRFArrays` plan.

    Byte-identical to ``MRFArrays(build_mrf(...).mrf)`` (asserted by the
    parity suite), built without materialising per-edge Python objects.
    """
    parts = compile_parts(
        network,
        similarity,
        constraints=constraints,
        unary_constant=unary_constant,
        pairwise_weight=pairwise_weight,
        preferences=preferences,
        service_weights=service_weights,
    )
    with obs.span("compile.assemble", cat="compile", edges=len(parts.edge_first)):
        plan = MRFArrays.from_dense(
            parts.unary,
            parts.label_counts,
            parts.edge_first,
            parts.edge_second,
            parts.edge_cid,
            parts.matrices,
        )
    return CompiledPlan(
        plan=plan,
        variables=parts.variables,
        index=parts.index,
        candidates=parts.candidates,
    )


def compile_stream_parts(
    network: Network,
    similarity: SimilarityTable,
    unary_constant: float = 0.01,
    pairwise_weight: float = 1.0,
    service_weights: Optional[Mapping[str, float]] = None,
    constraints: Optional[ConstraintSet] = None,
) -> CompiledParts:
    """Compile raw parts in the :class:`~repro.stream.plan.StreamPlan`
    convention: one matrix per *unordered* range pair (edges whose key was
    first seen in the opposite orientation flip their endpoints instead of
    storing a transpose), plus the per-edge (link key, service) list and
    per-matrix (range, range, weight) metadata the streaming engine's
    delta updates index by.

    With ``constraints``, Fix/Forbid masks land on the unary stack through
    :func:`constraint_mask` and combination constraints become intra-host
    edges appended after the similarity edges — the streaming extension of
    the batch encoding.  Combination edges carry an
    ``((host, host), (service_lo, service_hi))`` entry in ``edge_keys``
    (host self-pairs cannot collide with real links) and an empty-range
    placeholder in ``matrix_meta`` so feed re-scores never touch their
    tables.  Soft preferences stay on the batch path, exactly like
    :class:`StreamPlan` itself.
    """
    _check_weights(pairwise_weight, service_weights)
    constraint_set = constraints or ConstraintSet()
    constraint_set.validate_against(network)
    _reject_conflicting_fixes(constraint_set)
    phases = obs.phase_timer("compile")
    net = _NetworkIndex(network)
    phases.lap("compile.index", nodes=len(net.variables))
    counts = net.label_counts
    unary = _base_unary(net, unary_constant)

    for constraint in constraint_set:
        if isinstance(constraint, (FixProduct, ForbidProduct)):
            node = net.index[(constraint.host, constraint.service)]
            count = int(counts[node])
            unary[node, :count] = unary[node, :count] + constraint_mask(
                net.candidates[node], constraint
            )
    phases.lap("compile.unary")

    first, second, sid, link_of = net.link_edges()
    # StreamPlan weights every service through the same formula; the value
    # is identical to the builder's conditional multiply (w·1.0 == w).
    wid_of, weight_values = net.service_weight_ids(
        pairwise_weight, service_weights or None
    )
    matrices: List[np.ndarray] = []
    meta: List[Tuple[Tuple[str, ...], Tuple[str, ...], float]] = []
    if len(first):
        rid_a = net.node_rid[first]
        rid_b = net.node_rid[second]
        r_count = max(len(net.ranges), 1)
        w_count = max(len(weight_values), 1)
        keys = (
            np.minimum(rid_a, rid_b) * r_count + np.maximum(rid_a, rid_b)
        ) * w_count + wid_of[sid]
        edge_cid, first_pos = _appearance_rank(keys)
        # Stored orientation = the orientation of the key's first edge;
        # later reverse-orientation edges flip endpoints instead.
        stored_rid_a = rid_a[first_pos]
        flip = stored_rid_a[edge_cid] != rid_a
        out_first = np.where(flip, second, first)
        out_second = np.where(flip, first, second)
        sim = net.similarity_matrix(similarity)
        for position in first_pos:
            e = int(position)
            ra = int(net.node_rid[first[e]])
            rb = int(net.node_rid[second[e]])
            weight = weight_values[int(wid_of[sid[e]])]
            matrices.append(_range_matrix(net, sim, ra, rb, weight))
            meta.append((net.ranges[ra], net.ranges[rb], weight))
        first, second = out_first, out_second
    else:
        edge_cid = np.zeros(0, dtype=np.int64)

    phases.lap("compile.edges", edges=len(first), matrices=len(matrices))
    links = net._links
    service_names = net.service_names
    edge_keys = [
        (links[link], service_names[s])
        for link, s in zip(link_of.tolist(), sid.tolist())
    ]

    # ---- intra-host combination edges, appended after the similarity
    # edges exactly like the batch convention; their matrices are per node
    # pair (never deduplicated) and their meta entries are empty-range
    # placeholders a SimilarityUpdate scan can never match.
    extra_first, extra_second, extra_cid, tables = _combination_edges(
        network, constraint_set, net, base_cid=len(matrices)
    )
    if extra_first:
        for lo, hi in zip(extra_first, extra_second):
            host, svc_lo = net.variables[lo]
            svc_hi = net.variables[hi][1]
            edge_keys.append(((host, host), (svc_lo, svc_hi)))
            meta.append(COMBO_META)
        first = np.concatenate([first, np.asarray(extra_first, dtype=np.int64)])
        second = np.concatenate(
            [second, np.asarray(extra_second, dtype=np.int64)]
        )
        edge_cid = np.concatenate(
            [edge_cid, np.asarray(extra_cid, dtype=np.int64)]
        )
        matrices.extend(tables)
    phases.lap("compile.combo_edges", combo_edges=len(extra_first))

    return CompiledParts(
        variables=net.variables,
        index=net.index,
        candidates=net.candidates,
        unary=unary,
        label_counts=counts,
        edge_first=first,
        edge_second=second,
        edge_cid=edge_cid,
        matrices=matrices,
        matrix_meta=meta,
        edge_keys=edge_keys,
    )


# ------------------------------------------------------------- constraints


def constraint_mask(
    range_: Tuple[str, ...], constraint: Union[FixProduct, ForbidProduct]
) -> np.ndarray:
    """The hard unary mask of one Fix/Forbid constraint over a range.

    The builder's ``P_c ∝ ∞`` encoding as a reusable array-level writer: a
    :class:`FixProduct` masks every label except the pinned product with
    :data:`~repro.core.costs.HARD_COST`, a :class:`ForbidProduct` masks
    only the named product.  Masks *add* onto the base unary (and onto
    each other), which is what lets consumers — the batch compiler here,
    the streaming engine's in-place unary patching — recompute a node's
    unary from the live constraint set without replaying history.

    >>> constraint_mask(("w", "l"), ForbidProduct("h", "os", "w"))
    array([10000000.,        0.])
    """
    if isinstance(constraint, FixProduct):
        mask = np.full(len(range_), HARD_COST)
        mask[range_.index(constraint.product)] = 0.0
    else:
        mask = np.zeros(len(range_))
        mask[range_.index(constraint.product)] = HARD_COST
    return mask


def write_combination(
    constraint: Union[RequireCombination, AvoidCombination],
    range_m: Tuple[str, ...],
    range_n: Tuple[str, ...],
    m_is_first: bool,
    table: np.ndarray,
) -> None:
    """Accumulate one combination constraint into an intra-host table.

    ``table`` is the pairwise cost table of the (lower node, higher node)
    pair the constraint couples; ``m_is_first`` says whether the trigger
    service ``s_m`` is the lower-numbered node (rows) or the higher one
    (columns).  Constraints whose trigger/partner products fall outside
    the candidate ranges are vacuous and write nothing — exactly the
    builder's behaviour.  Shared by the batch compiler and the streaming
    engine's :class:`~repro.stream.events.CombinationUpdate` patching.
    """
    if isinstance(constraint, AvoidCombination):
        if (
            constraint.product_j not in range_m
            or constraint.product_k not in range_n
        ):
            return
        row = range_m.index(constraint.product_j)
        col = range_n.index(constraint.product_k)
        if m_is_first:
            table[row, col] = HARD_COST
        else:
            table[col, row] = HARD_COST
    elif isinstance(constraint, RequireCombination):
        if constraint.product_j not in range_m:
            return
        row = range_m.index(constraint.product_j)
        cols = np.asarray(
            [product != constraint.product_l for product in range_n], dtype=bool
        )
        if m_is_first:
            table[row, cols] = HARD_COST
        else:
            table[cols, row] = HARD_COST


def _combination_edges(
    network: Network,
    constraints: ConstraintSet,
    net: _NetworkIndex,
    base_cid: int,
) -> Tuple[List[int], List[int], List[int], List[np.ndarray]]:
    """Combination constraints as intra-host tables (builder-order parity).

    Mirrors :func:`repro.core.costs._add_combination_edges`: one table per
    (lower node, higher node) pair, accumulated across constraints in
    order, emitted in insertion order after the similarity edges.
    """
    tables: Dict[Tuple[int, int], np.ndarray] = {}
    counts = net.label_counts
    for constraint in constraints:
        if not isinstance(constraint, (RequireCombination, AvoidCombination)):
            continue
        hosts = network.hosts if constraint.host == GLOBAL else [constraint.host]
        for host in hosts:
            if not (
                network.has_service(host, constraint.service_m)
                and network.has_service(host, constraint.service_n)
            ):
                continue
            node_m = net.index[(host, constraint.service_m)]
            node_n = net.index[(host, constraint.service_n)]
            key = (min(node_m, node_n), max(node_m, node_n))
            table = tables.get(key)
            if table is None:
                table = np.zeros((int(counts[key[0]]), int(counts[key[1]])))
                tables[key] = table
            write_combination(
                constraint,
                net.candidates[node_m],
                net.candidates[node_n],
                key[0] == node_m,
                table,
            )
    first: List[int] = []
    second: List[int] = []
    cids: List[int] = []
    stack: List[np.ndarray] = []
    for position, ((lo, hi), table) in enumerate(tables.items()):
        first.append(lo)
        second.append(hi)
        cids.append(base_cid + position)
        stack.append(table)
    return first, second, cids, stack


# -------------------------------------------------- vectorized energy eval


def network_energy(
    network: Network,
    similarity: SimilarityTable,
    assignment: ProductAssignment,
    constraints: Optional[ConstraintSet] = None,
    unary_constant: float = 0.01,
    pairwise_weight: float = 1.0,
    service_weights: Optional[Mapping[str, float]] = None,
) -> float:
    """Vectorized E(N) (paper Eq. 1) of an assignment on the network model.

    The array-form backend of :func:`repro.core.costs.assignment_energy`:
    one interned pass over the network, one gather over the edge stream —
    no per-link/per-service Python loop.  Unassigned pairs contribute no
    pairwise cost, matching the reference implementation.
    """
    constraint_set = constraints or ConstraintSet()
    net = _NetworkIndex(network)
    total = unary_constant * float(network.variable_count())

    first, second, sid, _link_of = net.link_edges()
    if len(first):
        # Per-node product id (-1 where unassigned).
        pid = np.full(net.node_count, -1, dtype=np.int64)
        for node, (host, service) in enumerate(net.variables):
            product = assignment.get(host, service)
            if product is not None:
                pid[node] = net.product_ids[product]
        wid_of, weight_values = net.service_weight_ids(
            pairwise_weight, service_weights
        )
        weights = np.asarray(weight_values)[wid_of[sid]]
        pa = pid[first]
        pb = pid[second]
        live = (pa >= 0) & (pb >= 0)
        if live.any():
            sim = net.similarity_matrix(similarity)
            total += float(
                (weights[live] * sim[pa[live], pb[live]]).sum()
            )
    total += HARD_COST * len(constraint_set.violations(assignment, network))
    return total
