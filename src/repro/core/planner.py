"""Budgeted upgrade planning.

The paper's discussion (Section IX) pitches the approach as an advisor
"for a system operator to decide the most robust way to upgrade an
existing ICS".  In practice operators rarely reinstall everything at once:
changes cost money and downtime.  This module plans the best use of a
*bounded number of changes*:

* :func:`plan_upgrade` — greedy marginal-gain planning: starting from the
  current deployment, repeatedly apply the single (host, service, product)
  change that most reduces the energy (Eq. 1), until the budget is spent
  or no change helps.  Pinned pairs (FixProduct) and all combination
  constraints are honoured at every step.
* :func:`upgrade_frontier` — the energy achieved per budget 0..k, showing
  the diminishing-returns curve (useful for "how many changes buy 90 % of
  the optimum?" questions; see ``benchmarks/bench_ablation_budget.py``).

Greedy is not optimal for a fixed budget (the budgeted problem is NP-hard;
it generalises max-coverage), but each step is individually optimal, the
energy is monotonically non-increasing, and with unlimited budget the plan
ends at an ICM local optimum of the same energy function the global
optimiser minimises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.costs import assignment_energy
from repro.network.assignment import ProductAssignment
from repro.network.constraints import ConstraintSet
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = ["UpgradeStep", "UpgradePlan", "plan_upgrade", "upgrade_frontier"]


@dataclass(frozen=True)
class UpgradeStep:
    """One planned change.

    Attributes:
        host / service: the installation being changed.
        old_product / new_product: the replacement performed.
        energy_after: total energy once this step is applied.
        gain: energy reduction contributed by this step (> 0).
    """

    host: str
    service: str
    old_product: str
    new_product: str
    energy_after: float
    gain: float

    def describe(self) -> str:
        """Human-readable one-liner for this upgrade step."""
        return (
            f"{self.host}.{self.service}: {self.old_product} -> "
            f"{self.new_product}   (gain {self.gain:.4f}, "
            f"energy {self.energy_after:.4f})"
        )


@dataclass
class UpgradePlan:
    """A sequence of changes from the current deployment.

    Attributes:
        steps: the ordered changes (apply in order for the stated energies).
        initial_energy / final_energy: energy before / after the plan.
        final_assignment: the deployment after all steps.
        budget: the budget the plan was computed under.
    """

    steps: List[UpgradeStep]
    initial_energy: float
    final_energy: float
    final_assignment: ProductAssignment
    budget: int

    @property
    def changes(self) -> int:
        """Number of upgrade steps in the plan."""
        return len(self.steps)

    @property
    def total_gain(self) -> float:
        """Total energy reduction from the initial assignment."""
        return self.initial_energy - self.final_energy

    def describe(self) -> str:
        """Multi-line human-readable plan report."""
        lines = [
            f"upgrade plan: {self.changes} change(s) within budget "
            f"{self.budget}, energy {self.initial_energy:.4f} -> "
            f"{self.final_energy:.4f}"
        ]
        lines += [f"  {index + 1}. {step.describe()}"
                  for index, step in enumerate(self.steps)]
        return "\n".join(lines)


def plan_upgrade(
    network: Network,
    similarity: SimilarityTable,
    current: ProductAssignment,
    budget: int,
    constraints: Optional[ConstraintSet] = None,
    unary_constant: float = 0.01,
    pairwise_weight: float = 1.0,
    min_gain: float = 1e-9,
) -> UpgradePlan:
    """Greedy best-first upgrade plan within ``budget`` changes.

    Args:
        current: the existing (complete) deployment.
        budget: maximum number of (host, service) changes.
        constraints: pins and combination rules the plan must respect; the
            *current* deployment is taken as-is even where it violates them
            (legacy reality), but no step may introduce a new violation or
            touch a pinned pair.
        min_gain: stop when the best available step gains less than this.

    Raises:
        ValueError: on negative budget or incomplete current assignment.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if not current.is_complete():
        raise ValueError("current deployment must be a complete assignment")
    constraint_set = constraints or ConstraintSet()
    constraint_set.validate_against(network)
    pinned = {(c.host, c.service) for c in constraint_set.fixed_products()}

    working = current.copy()
    energy = assignment_energy(
        network, similarity, working,
        unary_constant=unary_constant, pairwise_weight=pairwise_weight,
    )
    baseline_violations = len(constraint_set.violations(working, network))
    initial_energy = energy
    steps: List[UpgradeStep] = []

    for _ in range(budget):
        best: Optional[Tuple[float, str, str, str]] = None
        for host in network.hosts:
            for service in network.services_of(host):
                if (host, service) in pinned:
                    continue
                old_product = working.get(host, service)
                for candidate in network.candidates(host, service):
                    if candidate == old_product:
                        continue
                    delta = _change_delta(
                        network, similarity, working, host, service,
                        candidate, pairwise_weight,
                    )
                    if delta >= -min_gain:
                        continue
                    working.assign(host, service, candidate)
                    violations = len(constraint_set.violations(working, network))
                    working.assign(host, service, old_product)
                    if violations > baseline_violations:
                        continue
                    if best is None or delta < best[0]:
                        best = (delta, host, service, candidate)
        if best is None:
            break
        delta, host, service, candidate = best
        old_product = working.get(host, service)
        working.assign(host, service, candidate)
        energy += delta
        steps.append(
            UpgradeStep(
                host=host,
                service=service,
                old_product=old_product,
                new_product=candidate,
                energy_after=energy,
                gain=-delta,
            )
        )

    return UpgradePlan(
        steps=steps,
        initial_energy=initial_energy,
        final_energy=energy,
        final_assignment=working,
        budget=budget,
    )


def upgrade_frontier(
    network: Network,
    similarity: SimilarityTable,
    current: ProductAssignment,
    max_budget: int,
    **options,
) -> Dict[int, float]:
    """Energy achieved for every budget 0..max_budget.

    Computed from one greedy run (the greedy plan's prefixes are exactly
    the smaller-budget plans), so the cost is a single :func:`plan_upgrade`
    call.
    """
    plan = plan_upgrade(network, similarity, current, max_budget, **options)
    frontier = {0: plan.initial_energy}
    for index, step in enumerate(plan.steps):
        frontier[index + 1] = step.energy_after
    # Budgets past the last useful step keep the final energy.
    for budget in range(len(plan.steps) + 1, max_budget + 1):
        frontier[budget] = plan.final_energy
    return frontier


def _change_delta(
    network: Network,
    similarity: SimilarityTable,
    assignment: ProductAssignment,
    host: str,
    service: str,
    candidate: str,
    pairwise_weight: float,
) -> float:
    """Energy delta of switching one installation (O(degree) evaluation)."""
    old_product = assignment.get(host, service)
    delta = 0.0
    for neighbor in network.neighbors(host):
        if not network.has_service(neighbor, service):
            continue
        neighbor_product = assignment.get(neighbor, service)
        if neighbor_product is None:
            continue
        delta += pairwise_weight * (
            similarity.get(candidate, neighbor_product)
            - similarity.get(old_product, neighbor_product)
        )
    return delta
