"""Baseline assignment strategies (paper Section VII-C comparisons).

The paper evaluates its optimum α̂ against a *mono-culture* assignment α_m
(the same product everywhere — the worst case that made Stuxnet fast) and a
*random* diversification α_r.  We additionally provide a degree-ordered
greedy colouring heuristic in the spirit of O'Donnell & Sethu's distributed
colouring, as the natural non-MRF competitor.

All baselines honour :class:`~repro.network.constraints.FixProduct`
constraints (legacy hosts stay pinned), mirroring how the paper's
mono/random assignments only touch "non-constrained hosts".
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, Optional, Tuple

from repro.network.assignment import ProductAssignment
from repro.network.constraints import ConstraintSet
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = ["mono_assignment", "random_assignment", "greedy_assignment"]


def mono_assignment(
    network: Network,
    constraints: Optional[ConstraintSet] = None,
) -> ProductAssignment:
    """The homogeneous assignment α_m.

    For each service, the product available at the most hosts is installed
    everywhere it is a candidate (falling back per-host to the first
    candidate when the majority product is unavailable there).  Pinned
    (host, service) pairs keep their fixed product.
    """
    pinned = _pinned(constraints)
    majority: Dict[str, str] = {}
    for service in network.all_services():
        counter: Counter = Counter()
        for host in network.hosts_with_service(service):
            counter.update(network.candidates(host, service))
        majority[service] = counter.most_common(1)[0][0]

    assignment = ProductAssignment(network)
    for host in network.hosts:
        for service in network.services_of(host):
            fixed = pinned.get((host, service))
            if fixed is not None:
                assignment.assign(host, service, fixed)
                continue
            candidates = network.candidates(host, service)
            choice = majority[service] if majority[service] in candidates else candidates[0]
            assignment.assign(host, service, choice)
    return assignment


def random_assignment(
    network: Network,
    seed: Optional[int] = None,
    constraints: Optional[ConstraintSet] = None,
) -> ProductAssignment:
    """A uniformly random assignment α_r (pinned pairs respected)."""
    rng = random.Random(seed)
    pinned = _pinned(constraints)
    assignment = ProductAssignment(network)
    for host in network.hosts:
        for service in network.services_of(host):
            fixed = pinned.get((host, service))
            if fixed is not None:
                assignment.assign(host, service, fixed)
            else:
                assignment.assign(
                    host, service, rng.choice(network.candidates(host, service))
                )
    return assignment


def greedy_assignment(
    network: Network,
    similarity: SimilarityTable,
    constraints: Optional[ConstraintSet] = None,
) -> ProductAssignment:
    """Degree-ordered greedy diversification (colouring-style heuristic).

    Hosts are processed from highest to lowest degree; each (host, service)
    picks the candidate minimising the summed similarity to the products
    already assigned on neighbouring hosts for the same service (first
    candidate wins ties, deterministically).  This is the classic greedy
    colouring generalised to weighted similarities; it is fast but myopic,
    and serves as the heuristic the MRF optimum is compared against.
    """
    pinned = _pinned(constraints)
    position = {host: index for index, host in enumerate(network.hosts)}
    # Ties broken by insertion order (not name), matching the MRF-level
    # greedy initialisation inside the TRW-S solvers.
    order = sorted(network.hosts, key=lambda h: (-network.degree(h), position[h]))
    assignment = ProductAssignment(network)
    for host in order:
        for service in network.services_of(host):
            fixed = pinned.get((host, service))
            if fixed is not None:
                assignment.assign(host, service, fixed)
                continue
            best_product = None
            best_cost = float("inf")
            for product in network.candidates(host, service):
                cost = 0.0
                for neighbor in network.neighbors(host):
                    neighbor_product = assignment.get(neighbor, service)
                    if neighbor_product is not None:
                        cost += similarity.get(product, neighbor_product)
                if cost < best_cost:
                    best_cost = cost
                    best_product = product
            assert best_product is not None
            assignment.assign(host, service, best_product)
    return assignment


def _pinned(constraints: Optional[ConstraintSet]) -> Dict[Tuple[str, str], str]:
    if constraints is None:
        return {}
    return {
        (c.host, c.service): c.product for c in constraints.fixed_products()
    }
