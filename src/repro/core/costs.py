"""Building the diversification MRF (paper Section V).

Variables are (host, service) pairs; the label space of a variable is the
candidate product range p(s) at that host.  Costs follow the paper's Eq. 1:

* **Unary** (Eq. 2): a small constant ``Pr_const`` per label expressing "no
  specific preference", optionally overridden by soft per-product
  preferences.  Hard host constraints (:class:`FixProduct` /
  :class:`ForbidProduct`) become large masks on the disallowed labels —
  the paper's ``P_c ∝ ∞`` encoding.
* **Pairwise, inter-host** (Eq. 3): for every link (h_i, h_j) and every
  shared service s, the cost of labels (p, q) is ``λ · sim(p, q)``.
  Matrices are cached and shared by reference across edges with identical
  candidate ranges, so memory is one matrix per (service, range) rather
  than one per edge.
* **Pairwise, intra-host**: combination constraints (Definition 4) couple
  two services at the same host, yielding 0/HARD tables on the
  (trigger, partner) label pairs.

Hard costs use a large finite value (:data:`HARD_COST`) rather than ``inf``
so message passing stays numerically sound; a solution that still pays a
hard cost indicates an infeasible constraint set and is reported as
``satisfied=False`` by :func:`repro.core.diversify.diversify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.mrf.graph import PairwiseMRF
from repro.network.assignment import ProductAssignment
from repro.network.constraints import (
    GLOBAL,
    AvoidCombination,
    Constraint,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.model import Network, NetworkError
from repro.nvd.similarity import SimilarityTable

__all__ = [
    "HARD_COST",
    "MRFBuild",
    "build_mrf",
    "assignment_energy",
    "decode_assignment",
    "encode_labels",
]

#: Cost standing in for the paper's ∞ on disallowed configurations.  Large
#: enough to dominate any realistic sum of similarity terms, small enough to
#: keep float arithmetic exact.
HARD_COST = 1.0e7


def decode_assignment(
    network: Network,
    variables: Sequence[Tuple[str, str]],
    candidates: Sequence[Tuple[str, ...]],
    labels: Sequence[int],
) -> ProductAssignment:
    """Decode a solver labelling over a variable mapping into α′.

    Shared by :class:`MRFBuild` and the compiled plans: labels index the
    mapping's own candidate ranges, so every decoded value is range-valid
    by construction and the per-pair validation of
    :meth:`ProductAssignment.assign` is skipped — this decode runs once
    per job across thousand-job grids.
    """
    values = {
        variable: candidates[node][int(labels[node])]
        for node, variable in enumerate(variables)
    }
    return ProductAssignment.from_decoded(network, values)


def encode_labels(
    variables: Sequence[Tuple[str, str]],
    candidates: Sequence[Tuple[str, ...]],
    assignment: ProductAssignment,
) -> List[int]:
    """Encode a complete assignment as a labelling of a variable mapping."""
    labels: List[int] = []
    for node, (host, service) in enumerate(variables):
        product = assignment.get(host, service)
        if product is None:
            raise NetworkError(
                f"assignment misses ({host!r}, {service!r}); "
                f"a labelling needs a complete assignment"
            )
        labels.append(candidates[node].index(product))
    return labels


@dataclass
class MRFBuild:
    """The constructed MRF plus the bidirectional variable mapping.

    Attributes:
        mrf: the pairwise MRF ready for a solver.
        variables: node index → (host, service).
        index: (host, service) → node index.
        candidates: node index → candidate product tuple (label order).
    """

    mrf: PairwiseMRF
    variables: List[Tuple[str, str]]
    index: Dict[Tuple[str, str], int]
    candidates: List[Tuple[str, ...]]

    def labels_to_assignment(
        self, network: Network, labels: Sequence[int]
    ) -> ProductAssignment:
        """Decode a solver labelling back into a product assignment."""
        return decode_assignment(network, self.variables, self.candidates, labels)

    def assignment_to_labels(self, assignment: ProductAssignment) -> List[int]:
        """Encode a complete assignment as a labelling of this MRF."""
        return encode_labels(self.variables, self.candidates, assignment)


def build_mrf(
    network: Network,
    similarity: SimilarityTable,
    constraints: Optional[ConstraintSet] = None,
    unary_constant: float = 0.01,
    pairwise_weight: float = 1.0,
    preferences: Optional[Mapping[Tuple[str, str, str], float]] = None,
    service_weights: Optional[Mapping[str, float]] = None,
) -> MRFBuild:
    """Construct the diversification MRF for a network.

    Args:
        network: the network N = ⟨H, L, S, P⟩.
        similarity: vulnerability-similarity table over product names.
        constraints: optional constraint set (validated against the network).
        unary_constant: the paper's ``Pr_const`` — per-label base cost.
        pairwise_weight: λ scaling of the similarity penalty (1.0 in the
            paper; exposed for the regularisation-strength ablation).
        preferences: optional soft preferences, mapping
            (host, service, product) → extra unary cost (negative favours).
        service_weights: optional per-service criticality multipliers of
            the pairwise penalty (e.g. weight the OS coupling above the
            browser coupling because an OS compromise is a full takeover).
            Unlisted services get weight 1.0; weights must be non-negative.

    Returns:
        An :class:`MRFBuild`; feed ``build.mrf`` to any solver and decode
        with :meth:`MRFBuild.labels_to_assignment`.
    """
    if pairwise_weight < 0:
        raise ValueError("pairwise_weight must be non-negative")
    if service_weights and any(w < 0 for w in service_weights.values()):
        raise ValueError("service weights must be non-negative")
    constraint_set = constraints or ConstraintSet()
    constraint_set.validate_against(network)
    _reject_conflicting_fixes(constraint_set)

    mrf = PairwiseMRF()
    variables: List[Tuple[str, str]] = []
    index: Dict[Tuple[str, str], int] = {}
    candidates: List[Tuple[str, ...]] = []

    # ---- nodes with base unary costs -----------------------------------
    for host in network.hosts:
        for service in network.services_of(host):
            range_ = network.candidates(host, service)
            unary = np.full(len(range_), float(unary_constant))
            if preferences:
                for position, product in enumerate(range_):
                    extra = preferences.get((host, service, product))
                    if extra is not None:
                        unary[position] += float(extra)
            node = mrf.add_node(unary)
            variables.append((host, service))
            index[(host, service)] = node
            candidates.append(range_)

    build = MRFBuild(mrf=mrf, variables=variables, index=index, candidates=candidates)

    # ---- hard unary masks from host constraints -------------------------
    for constraint in constraint_set:
        if isinstance(constraint, FixProduct):
            node = index[(constraint.host, constraint.service)]
            mask = np.full(len(candidates[node]), HARD_COST)
            mask[candidates[node].index(constraint.product)] = 0.0
            mrf.add_unary(node, mask)
        elif isinstance(constraint, ForbidProduct):
            node = index[(constraint.host, constraint.service)]
            mask = np.zeros(len(candidates[node]))
            mask[candidates[node].index(constraint.product)] = HARD_COST
            mrf.add_unary(node, mask)

    # ---- inter-host similarity edges (Eq. 3) ----------------------------
    matrix_cache: Dict[tuple, np.ndarray] = {}
    for a, b in network.links:
        for service in network.shared_services(a, b):
            node_a = index[(a, service)]
            node_b = index[(b, service)]
            weight = pairwise_weight
            if service_weights:
                weight *= float(service_weights.get(service, 1.0))
            matrix = _similarity_matrix(
                matrix_cache,
                candidates[node_a],
                candidates[node_b],
                similarity,
                weight,
            )
            mrf.add_edge(node_a, node_b, matrix)

    # ---- intra-host combination-constraint edges ------------------------
    _add_combination_edges(network, constraint_set, build)

    return build


def assignment_energy(
    network: Network,
    similarity: SimilarityTable,
    assignment: ProductAssignment,
    constraints: Optional[ConstraintSet] = None,
    unary_constant: float = 0.01,
    pairwise_weight: float = 1.0,
    service_weights: Optional[Mapping[str, float]] = None,
) -> float:
    """Evaluate the paper's E(N) (Eq. 1) directly on the network model.

    This is an MRF-free evaluation used to cross-validate
    :func:`build_mrf`: for any complete, constraint-satisfying assignment
    the value equals ``build.mrf.energy(labels)`` (to float summation
    order).  Violated hard constraints contribute :data:`HARD_COST` each,
    mirroring the MRF encoding.

    The evaluation is vectorized (:func:`repro.core.compile.
    network_energy`): one interned pass over the network, one gather over
    the (link, shared-service) edge stream — it runs once per job across
    thousand-job grids, where the former per-link Python loop added up.
    """
    from repro.core.compile import network_energy

    return network_energy(
        network,
        similarity,
        assignment,
        constraints=constraints,
        unary_constant=unary_constant,
        pairwise_weight=pairwise_weight,
        service_weights=service_weights,
    )


# --------------------------------------------------------------- internals


def _similarity_matrix(
    cache: Dict[tuple, np.ndarray],
    range_a: Tuple[str, ...],
    range_b: Tuple[str, ...],
    similarity: SimilarityTable,
    weight: float,
) -> np.ndarray:
    """λ-scaled similarity matrix between two candidate ranges (cached).

    The weight is part of the cache key so differently-weighted services
    never share a matrix.
    """
    key = (range_a, range_b, weight)
    matrix = cache.get(key)
    if matrix is None:
        matrix = np.empty((len(range_a), len(range_b)))
        for row, product_a in enumerate(range_a):
            for col, product_b in enumerate(range_b):
                matrix[row, col] = weight * similarity.get(product_a, product_b)
        matrix.setflags(write=False)
        cache[key] = matrix
        if range_a != range_b:
            # Cache the transposed orientation so (b, a) links share memory.
            cache[(range_b, range_a, weight)] = matrix.T
    return matrix


def _add_combination_edges(
    network: Network,
    constraints: ConstraintSet,
    build: MRFBuild,
) -> None:
    """Encode combination constraints as intra-host pairwise tables.

    Multiple constraints on the same (host, s_m, s_n) pair accumulate into
    one table; the MRF keeps a single edge per node pair.
    """
    tables: Dict[Tuple[int, int], np.ndarray] = {}
    for constraint in constraints:
        if not isinstance(constraint, (RequireCombination, AvoidCombination)):
            continue
        hosts = (
            network.hosts if constraint.host == GLOBAL else [constraint.host]
        )
        for host in hosts:
            if not (
                network.has_service(host, constraint.service_m)
                and network.has_service(host, constraint.service_n)
            ):
                continue
            node_m = build.index[(host, constraint.service_m)]
            node_n = build.index[(host, constraint.service_n)]
            key = (min(node_m, node_n), max(node_m, node_n))
            table = tables.get(key)
            if table is None:
                table = np.zeros(
                    (
                        build.mrf.label_count(key[0]),
                        build.mrf.label_count(key[1]),
                    )
                )
                tables[key] = table
            _accumulate_combination(constraint, build, node_m, node_n, key, table)
    for (first, second), table in tables.items():
        build.mrf.add_edge(first, second, table)


def _accumulate_combination(
    constraint: Constraint,
    build: MRFBuild,
    node_m: int,
    node_n: int,
    key: Tuple[int, int],
    table: np.ndarray,
) -> None:
    range_m = build.candidates[node_m]
    range_n = build.candidates[node_n]
    if isinstance(constraint, AvoidCombination):
        if (
            constraint.product_j not in range_m
            or constraint.product_k not in range_n
        ):
            return  # the combination cannot occur at this host
        row = range_m.index(constraint.product_j)
        col = range_n.index(constraint.product_k)
        if key[0] == node_m:
            table[row, col] = HARD_COST
        else:
            table[col, row] = HARD_COST
    elif isinstance(constraint, RequireCombination):
        if constraint.product_j not in range_m:
            return  # trigger product unavailable; constraint vacuous here
        row = range_m.index(constraint.product_j)
        for col, product in enumerate(range_n):
            if product == constraint.product_l:
                continue
            if key[0] == node_m:
                table[row, col] = HARD_COST
            else:
                table[col, row] = HARD_COST


def _reject_conflicting_fixes(constraints: ConstraintSet) -> None:
    """Two FixProduct constraints pinning one variable differently is a
    configuration error; surface it before building an infeasible MRF."""
    pinned: Dict[Tuple[str, str], str] = {}
    for constraint in constraints.fixed_products():
        key = (constraint.host, constraint.service)
        existing = pinned.get(key)
        if existing is not None and existing != constraint.product:
            raise NetworkError(
                f"conflicting FixProduct constraints at {key}: "
                f"{existing!r} vs {constraint.product!r}"
            )
        pinned[key] = constraint.product
