"""Attacker knowledge models.

A knowledge model maps the network's *true* directed infection rates to the
rates the attacker *believes* when planning.  Three levels:

* :class:`FullKnowledge` — perfect reconnaissance: perceived == true.
* :class:`NoisyKnowledge` — partial reconnaissance: each perceived rate is
  the true rate plus seeded uniform noise (clipped to (0, 1]); the
  ``noise`` parameter interpolates between full knowledge (0.0) and
  near-blindness.
* :class:`BlindKnowledge` — topology-only knowledge: the attacker knows
  which hosts connect (e.g. from a network scan) but nothing about the
  installed products, so every exploitable edge looks equally attractive.

All models only assign a positive perceived rate to edges whose true rate
is positive — the attacker cannot believe in attack vectors that do not
exist at all (shared services are observable from the scan); what it
misjudges is *how exploitable* each vector is.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Protocol, Tuple

__all__ = ["KnowledgeModel", "FullKnowledge", "NoisyKnowledge", "BlindKnowledge"]

RateMap = Dict[Tuple[str, str], float]


class KnowledgeModel(Protocol):
    """Maps true directed rates to the attacker's perceived rates."""

    name: str

    def perceive(self, true_rates: RateMap) -> RateMap:  # pragma: no cover
        """Map the true per-edge success rates to the attacker's view."""
        ...


@dataclass(frozen=True)
class FullKnowledge:
    """Perfect reconnaissance: the attacker sees the true rates."""

    name: str = "full"

    def perceive(self, true_rates: RateMap) -> RateMap:
        """Perfect knowledge: the true rates, unchanged."""
        return dict(true_rates)


@dataclass(frozen=True)
class NoisyKnowledge:
    """Partial reconnaissance: true rates blurred by uniform noise.

    Attributes:
        noise: half-width of the uniform perturbation; 0 is full knowledge.
        seed: makes the perceived world deterministic.
        floor: minimum perceived rate for existing vectors (keeps planning
            well-defined on edges the attacker underestimates to ~zero).
    """

    noise: float = 0.2
    seed: int = 0
    floor: float = 1e-3
    name: str = "noisy"

    def __post_init__(self) -> None:
        if self.noise < 0:
            raise ValueError("noise must be non-negative")
        if not 0 < self.floor <= 1:
            raise ValueError("floor must be in (0, 1]")

    def perceive(self, true_rates: RateMap) -> RateMap:
        """Perturb every true rate with the model's deterministic noise."""
        rng = random.Random(self.seed)
        perceived: RateMap = {}
        for edge in sorted(true_rates):
            rate = true_rates[edge]
            if rate <= 0.0:
                perceived[edge] = 0.0
                continue
            blurred = rate + rng.uniform(-self.noise, self.noise)
            perceived[edge] = min(1.0, max(self.floor, blurred))
        return perceived


@dataclass(frozen=True)
class BlindKnowledge:
    """Topology-only knowledge: every existing vector looks the same."""

    assumed_rate: float = 0.5
    name: str = "blind"

    def __post_init__(self) -> None:
        if not 0 < self.assumed_rate <= 1:
            raise ValueError("assumed_rate must be in (0, 1]")

    def perceive(self, true_rates: RateMap) -> RateMap:
        """Ignore the truth; assume one flat success rate everywhere."""
        return {
            edge: (self.assumed_rate if rate > 0.0 else 0.0)
            for edge, rate in true_rates.items()
        }
