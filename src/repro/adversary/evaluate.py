"""Executing attack plans against the true network.

The attacker plans with *perceived* rates (its knowledge model) but the
world responds with *true* rates: each tick it retries the next hop of its
committed path, succeeding with the true probability.  The gap between the
plan's perceived quality and its true cost quantifies the value of
reconnaissance — and how much a diversified network amplifies the price of
getting it wrong.

Two evaluations are provided: the analytic expectation
(Σ 1/true-rate over the planned path, the mean of the sum of geometrics)
and a seeded tick simulation for distributions.  A sweep driver compares
knowledge levels side by side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.adversary.knowledge import (
    BlindKnowledge,
    FullKnowledge,
    KnowledgeModel,
    NoisyKnowledge,
)
from repro.adversary.planner import AttackPlan, plan_attack
from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.sim.attacker import make_attacker
from repro.sim.malware import InfectionModel

__all__ = ["AdversaryResult", "evaluate_attacker", "knowledge_sweep"]


@dataclass(frozen=True)
class AdversaryResult:
    """Outcome of one knowledge-bounded attack evaluation.

    Attributes:
        knowledge: name of the knowledge model.
        plan: the committed attack plan (chosen under perceived rates).
        true_expected_ticks: analytic E[time] of the plan under true rates;
            ``inf`` when the plan crosses a truly impossible edge.
        true_success: one-shot success probability of the plan under true
            rates.
        simulated_mttc: mean simulated ticks (censored runs at the cap).
        simulated_success_rate: fraction of simulated runs that finished.
        runs: simulation batch size.
    """

    knowledge: str
    plan: AttackPlan
    true_expected_ticks: float
    true_success: float
    simulated_mttc: float
    simulated_success_rate: float
    runs: int

    def row(self) -> str:
        """One formatted row for the knowledge-sweep table."""
        return (
            f"{self.knowledge:<8} plan={'->'.join(self.plan.path):<40} "
            f"E[ticks]={self.true_expected_ticks:8.2f} "
            f"simulated={self.simulated_mttc:8.2f} "
            f"(success {100 * self.simulated_success_rate:5.1f}%)"
        )


def evaluate_attacker(
    network: Network,
    assignment: ProductAssignment,
    similarity: SimilarityTable,
    entry: str,
    target: str,
    knowledge: KnowledgeModel,
    runs: int = 500,
    max_ticks: int = 2000,
    p_avg: float = 0.1,
    p_max: float = 0.3,
    attacker: str = "sophisticated",
    seed: Optional[int] = None,
) -> AdversaryResult:
    """Plan under ``knowledge``, execute against the truth.

    The infection-rate calibration matches the MTTC experiments
    (:mod:`repro.metrics.mttc`) so results are comparable.
    """
    model = InfectionModel(
        similarity=similarity,
        p_avg=p_avg,
        p_max=p_max,
        attacker=make_attacker(attacker),
    )
    true_rates = model.rate_matrix(network, assignment)
    perceived = knowledge.perceive(true_rates)
    plan = plan_attack(network, perceived, entry, target)

    expected = 0.0
    success = 1.0
    feasible = True
    for edge in plan.edges():
        rate = true_rates[edge]
        if rate <= 0.0:
            feasible = False
            break
        expected += 1.0 / rate
        success *= rate
    if not feasible:
        expected = float("inf")
        success = 0.0

    simulated_times: List[int] = []
    successes = 0
    master = random.Random(seed)
    for _ in range(runs):
        rng = random.Random(master.randrange(2**63))
        tick = 0
        reached = True
        for edge in plan.edges():
            rate = true_rates[edge]
            if rate <= 0.0:
                reached = False
                tick = max_ticks
                break
            while True:
                tick += 1
                if tick >= max_ticks:
                    break
                if rng.random() < rate:
                    break
            if tick >= max_ticks:
                reached = target == plan.path[0]
                break
        if reached and tick < max_ticks:
            successes += 1
            simulated_times.append(tick)
        else:
            simulated_times.append(max_ticks)

    return AdversaryResult(
        knowledge=knowledge.name,
        plan=plan,
        true_expected_ticks=expected,
        true_success=success,
        simulated_mttc=sum(simulated_times) / len(simulated_times),
        simulated_success_rate=successes / runs,
        runs=runs,
    )


def knowledge_sweep(
    network: Network,
    assignment: ProductAssignment,
    similarity: SimilarityTable,
    entry: str,
    target: str,
    noise_levels: Sequence[float] = (0.1, 0.3),
    seed: int = 0,
    **options,
) -> Dict[str, AdversaryResult]:
    """Evaluate full / noisy(σ) / blind attackers on one assignment.

    Returns a dict keyed ``"full"``, ``"noisy-0.1"``, ..., ``"blind"`` in
    increasing order of ignorance.
    """
    models: List[KnowledgeModel] = [FullKnowledge()]
    for noise in noise_levels:
        models.append(NoisyKnowledge(noise=noise, seed=seed, name=f"noisy-{noise}"))
    models.append(BlindKnowledge())
    return {
        model.name: evaluate_attacker(
            network, assignment, similarity, entry, target, model,
            seed=seed, **options,
        )
        for model in models
    }
