"""Attack planning under perceived rates.

The attacker model matches the MTTC simulations: each hop is *retried*
every tick until it succeeds, so the cost of a path is its expected
duration ``Σ 1/rate`` — an additive edge weight, minimised exactly by
Dijkstra.  (Maximising the one-shot success product ``Π rate`` is a
different objective that can prefer short-but-hard paths; with retries the
expected-time objective is the rational one, and it guarantees that better
knowledge never plans a slower attack.)  The plan reports both quantities.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.model import Network

__all__ = ["AttackPlan", "plan_attack"]

RateMap = Dict[Tuple[str, str], float]


@dataclass(frozen=True)
class AttackPlan:
    """A committed attack path.

    Attributes:
        path: hosts from entry to target inclusive.
        perceived_success: Π perceived rates along the path (one-shot
            success probability as the attacker estimates it).
        perceived_expected_ticks: Σ 1/perceived rate — the attacker's own
            estimate of the retry-until-success duration.
    """

    path: Tuple[str, ...]
    perceived_success: float
    perceived_expected_ticks: float

    @property
    def hops(self) -> int:
        """Number of link traversals in the path."""
        return len(self.path) - 1

    def edges(self) -> List[Tuple[str, str]]:
        """The path as (source, destination) link pairs."""
        return list(zip(self.path, self.path[1:]))

    def describe(self) -> str:
        """Human-readable plan summary."""
        return (
            f"{' -> '.join(self.path)}  "
            f"(perceived success {self.perceived_success:.4f}, "
            f"~{self.perceived_expected_ticks:.1f} ticks)"
        )


def plan_attack(
    network: Network,
    perceived_rates: RateMap,
    entry: str,
    target: str,
) -> AttackPlan:
    """Minimum expected-duration path under the perceived rates.

    Raises:
        KeyError: unknown entry/target.
        ValueError: no path with strictly positive perceived rates exists.
    """
    if entry not in network:
        raise KeyError(f"unknown entry host {entry!r}")
    if target not in network:
        raise KeyError(f"unknown target host {target!r}")
    if entry == target:
        return AttackPlan(path=(entry,), perceived_success=1.0,
                          perceived_expected_ticks=0.0)

    counter = itertools.count()
    best: Dict[str, float] = {entry: 0.0}
    back: Dict[str, Optional[str]] = {entry: None}
    queue: List[Tuple[float, int, str]] = [(0.0, next(counter), entry)]
    done = set()

    while queue:
        cost, _, host = heapq.heappop(queue)
        if host in done:
            continue
        done.add(host)
        if host == target:
            break
        for neighbor in network.neighbors(host):
            rate = perceived_rates.get((host, neighbor), 0.0)
            if rate <= 0.0 or neighbor in done:
                continue
            candidate = cost + 1.0 / rate
            if candidate < best.get(neighbor, float("inf")) - 1e-15:
                best[neighbor] = candidate
                back[neighbor] = host
                heapq.heappush(queue, (candidate, next(counter), neighbor))

    if target not in back:
        raise ValueError(
            f"no exploitable path from {entry!r} to {target!r} under the "
            f"perceived rates"
        )

    path: List[str] = [target]
    while back[path[-1]] is not None:
        path.append(back[path[-1]])  # type: ignore[arg-type]
    path.reverse()

    success = 1.0
    expected = 0.0
    for u, v in zip(path, path[1:]):
        rate = perceived_rates[(u, v)]
        success *= rate
        expected += 1.0 / rate
    return AttackPlan(
        path=tuple(path),
        perceived_success=success,
        perceived_expected_ticks=expected,
    )
