"""Adversarial evaluation under bounded attacker knowledge.

The paper closes with a future-work direction: "evaluate the diversified
network from an adversarial perspective, subject to different level of
attacker's knowledge about the network configuration and vulnerabilities"
(Section IX).  This subpackage implements that evaluation:

``repro.adversary.knowledge``
    Attacker knowledge models — full, noisy and blind views of the
    per-edge infection rates.
``repro.adversary.planner``
    Attack planning: the most-likely-to-succeed path under the attacker's
    *perceived* rates (Dijkstra on −log rate).
``repro.adversary.evaluate``
    Executing a plan against the *true* rates: analytic expected
    time-to-compromise plus a seeded simulation, and a comparison driver
    across knowledge levels.

The headline result (see ``benchmarks/bench_ablation_knowledge.py``): on a
well-diversified network an attacker pays a large penalty for imperfect
knowledge, while on a mono-culture knowledge is nearly worthless — every
path is equally easy — which quantifies *why* diversity also buys
resilience against reconnaissance-limited adversaries.
"""

from repro.adversary.knowledge import (
    BlindKnowledge,
    FullKnowledge,
    KnowledgeModel,
    NoisyKnowledge,
)
from repro.adversary.planner import AttackPlan, plan_attack
from repro.adversary.evaluate import (
    AdversaryResult,
    evaluate_attacker,
    knowledge_sweep,
)

__all__ = [
    "KnowledgeModel",
    "FullKnowledge",
    "NoisyKnowledge",
    "BlindKnowledge",
    "AttackPlan",
    "plan_attack",
    "AdversaryResult",
    "evaluate_attacker",
    "knowledge_sweep",
]
