"""Sensitivity analyses.

Two of the reproduction's inputs are uncertain, and this module quantifies
how much the conclusions depend on them:

1. **Infection-rate calibration.**  The paper does not publish its
   ``P_avg`` / edge-rate function; DESIGN.md documents ours.
   :func:`calibration_sensitivity` re-evaluates the Table V diversity
   ordering over a grid of (p_avg, p_max) calibrations and reports where
   the paper's ordering (α̂ > α̂_C1 ≥ α̂_C2 > α_r > α_m) holds — evidence
   that the reproduced shape is not an artefact of one lucky calibration.

2. **Similarity measurement error.**  The paper flags NVD "publication
   bias" as a threat (Section IX).  :func:`similarity_perturbation_sensitivity`
   perturbs every measured similarity by seeded relative noise,
   re-optimises, and reports (a) how much of the optimal assignment
   survives and (b) how sub-optimal the original assignment becomes under
   the perturbed ground truth — the price of having optimised against
   slightly-wrong data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, List, Sequence, Tuple

from repro.core.costs import assignment_energy
from repro.core.diversify import diversify
from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.runner import Job, run_jobs

__all__ = [
    "CalibrationCell",
    "calibration_sensitivity",
    "PerturbationResult",
    "perturbed_similarity",
    "similarity_perturbation_sensitivity",
]


@dataclass(frozen=True)
class CalibrationCell:
    """Table V orderings under one (p_avg, p_max) calibration.

    Attributes:
        p_avg / p_max: the calibration evaluated.
        d_bn: assignment label → metric value.
        ordering_holds: True when the paper's full Table V ordering holds.
        optimal_wins: True for the weaker headline claim (α̂ beats α_r and
            α_m) alone.
    """

    p_avg: float
    p_max: float
    d_bn: Dict[str, float]
    ordering_holds: bool
    optimal_wins: bool

    def row(self) -> str:
        """One formatted row of the calibration table."""
        values = "  ".join(f"{k}={v:.4f}" for k, v in self.d_bn.items())
        flag = "full-order" if self.ordering_holds else (
            "optimal-wins" if self.optimal_wins else "VIOLATED"
        )
        return f"p_avg={self.p_avg:<5} p_max={self.p_max:<5} [{flag}] {values}"


def _calibration_cell(
    case, entry: str, seed: int, p_avg: float, p_max: float
) -> CalibrationCell:
    """Evaluate the Table V ordering under one (p_avg, p_max) calibration.

    Module-level so the runner can ship it to worker processes.
    """
    from repro.experiments import table5_diversity

    reports = table5_diversity(case, entry=entry, p_avg=p_avg,
                               p_max=p_max, seed=seed)
    d_bn = {label: report.d_bn for label, report in reports.items()}
    ordering = (
        d_bn["optimal"] > d_bn["host_constrained"] - 1e-12
        and d_bn["host_constrained"] >= d_bn["product_constrained"] - 1e-9
        and d_bn["product_constrained"] > d_bn["random"] - 1e-12
        and d_bn["random"] > d_bn["mono"] - 1e-12
    )
    optimal_wins = (
        d_bn["optimal"] > d_bn["random"] - 1e-12
        and d_bn["optimal"] > d_bn["mono"] - 1e-12
    )
    return CalibrationCell(
        p_avg=p_avg,
        p_max=p_max,
        d_bn=d_bn,
        ordering_holds=ordering,
        optimal_wins=optimal_wins,
    )


def calibration_sensitivity(
    case=None,
    p_avgs: Sequence[float] = (0.05, 0.1, 0.15),
    p_maxs: Sequence[float] = (0.2, 0.3, 0.4),
    entry: str = "c4",
    seed: int = 11,
    workers: Optional[int] = None,
) -> List[CalibrationCell]:
    """Evaluate the Table V ordering over a calibration grid.

    Invalid combinations (p_max < p_avg) are skipped.  Each grid point is
    an independent runner job keyed by its calibration, so the grid can be
    spread over ``workers`` processes; cell order (and every value) is
    identical serial or parallel.
    """
    from repro.casestudy.stuxnet import stuxnet_case_study

    case = case or stuxnet_case_study()
    # Keys carry the grid position so duplicate calibrations in the input
    # sequences run (and report) once each, like the original loops did.
    jobs = [
        Job(
            key=(position, p_avg, p_max),
            fn=_calibration_cell,
            kwargs=dict(case=case, entry=entry, seed=seed,
                        p_avg=p_avg, p_max=p_max),
        )
        for position, (p_avg, p_max) in enumerate(
            (p_avg, p_max)
            for p_avg in p_avgs
            for p_max in p_maxs
            if p_max >= p_avg
        )
    ]
    return list(run_jobs(jobs, workers=workers).values())


@dataclass(frozen=True)
class PerturbationResult:
    """Effect of similarity measurement error on the optimum.

    Attributes:
        noise: relative noise level applied to every similarity.
        seed: perturbation seed.
        agreement: fraction of (host, service) choices the re-optimised
            assignment shares with the original optimum.
        regret: how much worse the *original* optimum scores under the
            perturbed ground truth, relative to the perturbed optimum:
            (E_perturbed(α̂_orig) − E_perturbed(α̂_pert)) / E_perturbed(α̂_pert).
    """

    noise: float
    seed: int
    agreement: float
    regret: float

    def row(self) -> str:
        """One formatted row of the perturbation table."""
        return (
            f"noise={self.noise:<5} seed={self.seed:<3} "
            f"agreement={100 * self.agreement:5.1f}%  "
            f"regret={100 * self.regret:6.2f}%"
        )


def perturbed_similarity(
    table: SimilarityTable, noise: float, seed: int
) -> SimilarityTable:
    """A copy of ``table`` with every pair scaled by U(1−noise, 1+noise).

    Values are clipped to [0, 1]; zero similarities stay zero (absent
    evidence is not invented), which mirrors how publication bias under- or
    over-counts *reported* overlaps.
    """
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be in [0, 1], got {noise}")
    rng = random.Random(seed)
    perturbed = SimilarityTable(products=table.products)
    products = table.products
    for i, a in enumerate(products):
        for b in products[i + 1 :]:
            value = table.get(a, b)
            if value <= 0.0:
                continue
            scaled = value * rng.uniform(1.0 - noise, 1.0 + noise)
            perturbed.set(a, b, min(1.0, max(0.0, scaled)))
    perturbed.vulnerability_counts.update(table.vulnerability_counts)
    return perturbed


def _perturbation_cell(
    network: Network,
    similarity: SimilarityTable,
    original_choices: Mapping[Tuple[str, str], str],
    noise: float,
    seed: int,
    diversify_options: Mapping,
) -> PerturbationResult:
    """Re-optimise one perturbed world and score drift vs the original.

    Module-level so the runner can ship it to worker processes; the
    original optimum travels as its plain (host, service) → product
    mapping and is rebuilt into an assignment for the energy evaluation.
    """
    world = perturbed_similarity(similarity, noise, seed)
    reoptimised = diversify(network, world, **diversify_options)
    agreement = sum(
        1
        for key, product in original_choices.items()
        if reoptimised.assignment.get(*key) == product
    ) / len(original_choices)
    original_assignment = ProductAssignment(network)
    for (host, service), product in original_choices.items():
        original_assignment.assign(host, service, product)
    energy_original = assignment_energy(network, world, original_assignment)
    energy_reoptimised = assignment_energy(
        network, world, reoptimised.assignment
    )
    regret = (
        (energy_original - energy_reoptimised) / energy_reoptimised
        if energy_reoptimised > 0
        else 0.0
    )
    return PerturbationResult(
        noise=noise, seed=seed, agreement=agreement, regret=regret
    )


def similarity_perturbation_sensitivity(
    network: Network,
    similarity: SimilarityTable,
    noise_levels: Sequence[float] = (0.1, 0.3, 0.5),
    seeds: Sequence[int] = (0, 1, 2),
    workers: Optional[int] = None,
    **diversify_options,
) -> List[PerturbationResult]:
    """Re-optimise under perturbed similarities and measure the drift.

    Returns one :class:`PerturbationResult` per (noise, seed) pair; the
    original optimum is computed once, then every (noise, seed) world is an
    independent runner job — spread them with ``workers``, the result rows
    are byte-identical to a serial run.
    """
    original = diversify(network, similarity, **diversify_options)
    original_choices = {
        (host, service): original.assignment.get(host, service)
        for host in network.hosts
        for service in network.services_of(host)
    }
    # Keys carry the grid position so duplicate (noise, seed) pairs in the
    # input sequences still yield one row each, like the original loops.
    jobs = [
        Job(
            key=(position, noise, seed),
            fn=_perturbation_cell,
            kwargs=dict(
                network=network,
                similarity=similarity,
                original_choices=original_choices,
                noise=noise,
                seed=seed,
                diversify_options=dict(diversify_options),
            ),
        )
        for position, (noise, seed) in enumerate(
            (noise, seed) for noise in noise_levels for seed in seeds
        )
    ]
    return list(run_jobs(jobs, workers=workers).values())
