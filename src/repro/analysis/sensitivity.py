"""Sensitivity analyses.

Two of the reproduction's inputs are uncertain, and this module quantifies
how much the conclusions depend on them:

1. **Infection-rate calibration.**  The paper does not publish its
   ``P_avg`` / edge-rate function; DESIGN.md documents ours.
   :func:`calibration_sensitivity` re-evaluates the Table V diversity
   ordering over a grid of (p_avg, p_max) calibrations and reports where
   the paper's ordering (α̂ > α̂_C1 ≥ α̂_C2 > α_r > α_m) holds — evidence
   that the reproduced shape is not an artefact of one lucky calibration.

2. **Similarity measurement error.**  The paper flags NVD "publication
   bias" as a threat (Section IX).  :func:`similarity_perturbation_sensitivity`
   perturbs every measured similarity by seeded relative noise,
   re-optimises, and reports (a) how much of the optimal assignment
   survives and (b) how sub-optimal the original assignment becomes under
   the perturbed ground truth — the price of having optimised against
   slightly-wrong data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.costs import assignment_energy
from repro.core.diversify import diversify
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = [
    "CalibrationCell",
    "calibration_sensitivity",
    "PerturbationResult",
    "perturbed_similarity",
    "similarity_perturbation_sensitivity",
]


@dataclass(frozen=True)
class CalibrationCell:
    """Table V orderings under one (p_avg, p_max) calibration.

    Attributes:
        p_avg / p_max: the calibration evaluated.
        d_bn: assignment label → metric value.
        ordering_holds: True when the paper's full Table V ordering holds.
        optimal_wins: True for the weaker headline claim (α̂ beats α_r and
            α_m) alone.
    """

    p_avg: float
    p_max: float
    d_bn: Dict[str, float]
    ordering_holds: bool
    optimal_wins: bool

    def row(self) -> str:
        values = "  ".join(f"{k}={v:.4f}" for k, v in self.d_bn.items())
        flag = "full-order" if self.ordering_holds else (
            "optimal-wins" if self.optimal_wins else "VIOLATED"
        )
        return f"p_avg={self.p_avg:<5} p_max={self.p_max:<5} [{flag}] {values}"


def calibration_sensitivity(
    case=None,
    p_avgs: Sequence[float] = (0.05, 0.1, 0.15),
    p_maxs: Sequence[float] = (0.2, 0.3, 0.4),
    entry: str = "c4",
    seed: int = 11,
) -> List[CalibrationCell]:
    """Evaluate the Table V ordering over a calibration grid.

    Invalid combinations (p_max < p_avg) are skipped.  The expensive parts
    (the three optimisations and the baselines) are computed once and
    reused for every grid point; only the BN metric is re-run.
    """
    from repro.casestudy.stuxnet import stuxnet_case_study
    from repro.experiments import table5_diversity

    case = case or stuxnet_case_study()
    cells: List[CalibrationCell] = []
    for p_avg in p_avgs:
        for p_max in p_maxs:
            if p_max < p_avg:
                continue
            reports = table5_diversity(case, entry=entry, p_avg=p_avg,
                                       p_max=p_max, seed=seed)
            d_bn = {label: report.d_bn for label, report in reports.items()}
            ordering = (
                d_bn["optimal"] > d_bn["host_constrained"] - 1e-12
                and d_bn["host_constrained"] >= d_bn["product_constrained"] - 1e-9
                and d_bn["product_constrained"] > d_bn["random"] - 1e-12
                and d_bn["random"] > d_bn["mono"] - 1e-12
            )
            optimal_wins = (
                d_bn["optimal"] > d_bn["random"] - 1e-12
                and d_bn["optimal"] > d_bn["mono"] - 1e-12
            )
            cells.append(
                CalibrationCell(
                    p_avg=p_avg,
                    p_max=p_max,
                    d_bn=d_bn,
                    ordering_holds=ordering,
                    optimal_wins=optimal_wins,
                )
            )
    return cells


@dataclass(frozen=True)
class PerturbationResult:
    """Effect of similarity measurement error on the optimum.

    Attributes:
        noise: relative noise level applied to every similarity.
        seed: perturbation seed.
        agreement: fraction of (host, service) choices the re-optimised
            assignment shares with the original optimum.
        regret: how much worse the *original* optimum scores under the
            perturbed ground truth, relative to the perturbed optimum:
            (E_perturbed(α̂_orig) − E_perturbed(α̂_pert)) / E_perturbed(α̂_pert).
    """

    noise: float
    seed: int
    agreement: float
    regret: float

    def row(self) -> str:
        return (
            f"noise={self.noise:<5} seed={self.seed:<3} "
            f"agreement={100 * self.agreement:5.1f}%  "
            f"regret={100 * self.regret:6.2f}%"
        )


def perturbed_similarity(
    table: SimilarityTable, noise: float, seed: int
) -> SimilarityTable:
    """A copy of ``table`` with every pair scaled by U(1−noise, 1+noise).

    Values are clipped to [0, 1]; zero similarities stay zero (absent
    evidence is not invented), which mirrors how publication bias under- or
    over-counts *reported* overlaps.
    """
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be in [0, 1], got {noise}")
    rng = random.Random(seed)
    perturbed = SimilarityTable(products=table.products)
    products = table.products
    for i, a in enumerate(products):
        for b in products[i + 1 :]:
            value = table.get(a, b)
            if value <= 0.0:
                continue
            scaled = value * rng.uniform(1.0 - noise, 1.0 + noise)
            perturbed.set(a, b, min(1.0, max(0.0, scaled)))
    perturbed.vulnerability_counts.update(table.vulnerability_counts)
    return perturbed


def similarity_perturbation_sensitivity(
    network: Network,
    similarity: SimilarityTable,
    noise_levels: Sequence[float] = (0.1, 0.3, 0.5),
    seeds: Sequence[int] = (0, 1, 2),
    **diversify_options,
) -> List[PerturbationResult]:
    """Re-optimise under perturbed similarities and measure the drift.

    Returns one :class:`PerturbationResult` per (noise, seed) pair; the
    original optimum is computed once.
    """
    original = diversify(network, similarity, **diversify_options)
    variables = [
        (host, service)
        for host in network.hosts
        for service in network.services_of(host)
    ]
    results: List[PerturbationResult] = []
    for noise in noise_levels:
        for seed in seeds:
            world = perturbed_similarity(similarity, noise, seed)
            reoptimised = diversify(network, world, **diversify_options)
            agreement = sum(
                1
                for key in variables
                if original.assignment.get(*key) == reoptimised.assignment.get(*key)
            ) / len(variables)
            energy_original = assignment_energy(
                network, world, original.assignment
            )
            energy_reoptimised = assignment_energy(
                network, world, reoptimised.assignment
            )
            regret = (
                (energy_original - energy_reoptimised) / energy_reoptimised
                if energy_reoptimised > 0
                else 0.0
            )
            results.append(
                PerturbationResult(
                    noise=noise, seed=seed, agreement=agreement, regret=regret
                )
            )
    return results
