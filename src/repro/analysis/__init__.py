"""Robustness analyses of the reproduction's conclusions.

``repro.analysis.sensitivity``
    Sensitivity of (i) the Table V ordering to the infection-rate
    calibration the paper did not publish, and (ii) the optimal assignment
    to perturbations of the NVD-measured similarities (the paper's own
    "publication bias" concern, Section IX).
"""

from repro.analysis.sensitivity import (
    CalibrationCell,
    PerturbationResult,
    calibration_sensitivity,
    perturbed_similarity,
    similarity_perturbation_sensitivity,
)

__all__ = [
    "CalibrationCell",
    "calibration_sensitivity",
    "PerturbationResult",
    "perturbed_similarity",
    "similarity_perturbation_sensitivity",
]
