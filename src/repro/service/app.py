"""The always-on diversification daemon behind ``repro serve``.

:class:`DiversificationService` turns the streaming engine into a
long-lived asyncio service:

* **Ingestion** — churn/constraint events arrive as JSON over HTTP
  (``POST /events``, the :func:`~repro.stream.events.event_from_dict` wire
  format), land on a bounded queue, and are applied in batches by a
  **single writer task** driving one
  :class:`~repro.stream.incremental.DynamicDiversifier`.  Past the
  configured high-water mark ingestion answers ``429`` with a
  ``Retry-After`` header — backpressure instead of unbounded memory.
* **Reads** — ``GET /assignment``, ``GET /hosts/<host>`` and the what-if
  ``POST /energy`` are served from an immutable :class:`ReadView` swapped
  in atomically after every solve.  Readers never touch live engine
  state, so they never block the writer and never observe a half-applied
  batch; the solver itself runs on a one-thread executor, keeping the
  event loop free to answer reads mid-solve.
* **Durability** — with a write-ahead log configured
  (:mod:`repro.service.wal`), every acknowledged event is appended to a
  checksummed, segmented log *before* the 202 goes out, under the
  configured fsync policy.  Restart recovery is snapshot + WAL-tail
  replay (:meth:`DiversificationService.from_snapshot` +
  :meth:`DiversificationService.start`), byte-identical to a process
  that never crashed.  The writer degrades gracefully: a solver
  exception escalates to a forced cold rebuild, and a batch that fails
  both attempts is quarantined to a dead-letter sidecar instead of
  wedging the queue.  :mod:`repro.service.faults` injects deterministic
  failures at every stage of this pipeline for the recovery tests.
* **Operations** — ``GET /healthz``, Prometheus-format ``GET /metrics``
  (solve/shard-solve latency histograms, per-reason escalation counters,
  ``repro_build_info``), the ``GET /debug/trace`` tail of the
  :mod:`repro.obs` span ring buffer (``ServiceConfig.trace_tail``),
  structured logs via :mod:`repro.obs.logging`, periodic plan snapshots
  to disk (:mod:`repro.service.snapshot`) and a graceful shutdown
  (``POST /shutdown`` or SIGINT/SIGTERM) that drains the queue,
  snapshots, and only then stops answering.

The single-writer design is what makes the consistency story trivial:
every mutation of network, plan, and message state happens on one task in
batch order, exactly like an offline :func:`~repro.stream.driver.
replay_trace` — which is why the HTTP path reproduces its energies
bit-for-bit (the parity contract of ``tests/test_service_http.py`` and
``tools/service_smoke.py``).

``docs/service.md`` is the operator-facing reference for everything here.
"""

from __future__ import annotations

import asyncio
import json
import platform
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro import __version__, obs
from repro.core.costs import HARD_COST, assignment_energy
from repro.obs.logging import get_logger, kv
from repro.network.assignment import ProductAssignment
from repro.network.constraints import ConstraintSet
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.service.config import ServiceConfig
from repro.service.faults import InjectedFault
from repro.service.metrics import ServiceMetrics
from repro.service.snapshot import (
    latest_valid_snapshot,
    prune_snapshots,
    restore_engine,
    save_snapshot,
)
from repro.service.wal import WriteAheadLog
from repro.stream.events import Event, event_from_dict, event_to_dict
from repro.stream.incremental import DynamicDiversifier

__all__ = ["ReadView", "DiversificationService"]

#: writer-queue sentinel: drain what is left, then exit the writer task.
_STOP = object()

#: request bodies above this are rejected with 413 before parsing.
_MAX_BODY = 16 * 1024 * 1024

#: bound on the idempotency cache of seen ``request_id`` values.
_SEEN_LIMIT = 1024


@dataclass(frozen=True)
class ReadView:
    """One immutable, snapshot-consistent view of the service state.

    Built by the writer after every solve and swapped in atomically;
    every read endpoint answers from the view current at request time, so
    a response is always internally consistent (assignment, energy and
    version all describe the same solve) even while the next batch is
    being applied.  The network/similarity/constraints members are
    *copies* — what-if evaluation works on them without ever touching
    live engine state.
    """

    version: int
    events_applied: int
    energy: float
    lower_bound: float
    certified_optimal: bool
    warm: bool
    stability: float
    solve_seconds: float
    values: Dict[Tuple[str, str], str]
    network: Network
    similarity: SimilarityTable
    constraints: ConstraintSet
    cost_model: Dict[str, object] = field(default_factory=dict)
    shards_total: int = 1
    shards_solved: int = 1

    def assignment_payload(self) -> Dict[str, object]:
        """The ``GET /assignment`` response body."""
        nested: Dict[str, Dict[str, str]] = {}
        for (host, service), product in sorted(self.values.items()):
            nested.setdefault(host, {})[service] = product
        return {
            "version": self.version,
            "events_applied": self.events_applied,
            "energy": self.energy,
            "lower_bound": self.lower_bound,
            "certified_optimal": self.certified_optimal,
            "warm": self.warm,
            "stability": self.stability,
            "hosts": len(self.network),
            "links": self.network.edge_count(),
            "assignment": nested,
        }

    def host_payload(self, host: str) -> Optional[Dict[str, object]]:
        """The ``GET /hosts/<host>`` response body, or None if unknown."""
        if host not in self.network:
            return None
        services = {}
        for service in self.network.services_of(host):
            services[service] = {
                "assigned": self.values.get((host, service)),
                "candidates": list(self.network.candidates(host, service)),
            }
        return {
            "version": self.version,
            "host": host,
            "services": services,
            "neighbors": self.network.neighbors(host),
            "constraints": [
                constraint.describe()
                for constraint in self.constraints
                if getattr(constraint, "host", None) == host
            ],
        }

    def whatif_energy(self, changes: Mapping[str, Mapping[str, str]]) -> Dict[str, object]:
        """The ``POST /energy`` evaluation: current assignment + overrides.

        Builds the current assignment on the view's *copies*, applies the
        ``{host: {service: product}}`` overrides, and evaluates the
        paper's E(N) via :func:`repro.core.costs.assignment_energy` —
        a pure read, the live plan is never touched.  Unknown hosts,
        services or products raise ``ValueError`` (HTTP 400).

        The baseline is re-evaluated with the same function rather than
        taken from the solver-reported ``self.energy`` (whose summation
        order differs by float round-off), so a no-op what-if reports a
        delta of exactly ``0.0``.
        """
        assignment = ProductAssignment.from_decoded(self.network, self.values)
        baseline = assignment_energy(
            self.network,
            self.similarity,
            assignment,
            constraints=self.constraints,
            **self.cost_model,
        )
        changed = 0
        for host, overrides in changes.items():
            if host not in self.network:
                raise ValueError(f"unknown host {host!r}")
            for service, product in overrides.items():
                assignment.assign(host, service, product)
                changed += 1
        if changed:
            energy = assignment_energy(
                self.network,
                self.similarity,
                assignment,
                constraints=self.constraints,
                **self.cost_model,
            )
        else:
            energy = baseline
        return {
            "version": self.version,
            "energy": energy,
            "baseline_energy": baseline,
            "delta": energy - baseline,
            "changed": changed,
            "feasible": bool(energy < HARD_COST),
        }


class DiversificationService:
    """Asyncio daemon owning one live plan and answering traffic over HTTP.

    Args:
        network / similarity / constraints: the initial model state; the
            service owns and mutates them as events stream in (pass copies
            to keep originals).
        config: every operational knob (:class:`ServiceConfig`).
        engine: pre-built engine to adopt instead of constructing one —
            the warm-restart path (:meth:`from_snapshot`) uses it.
        events_applied: ingestion counter to resume from (restarts).
        initial_view: a pre-crash :class:`ReadView` to republish instead
            of running a boot solve (restored from snapshot meta).
        version: solve counter to resume from (keeps the read-view
            version monotonic across restarts).
        wal_floor: the WAL sequence already reflected in the adopted
            engine state — recovery replays only records past it.
        recover: allow (and perform, at :meth:`start`) WAL-tail replay.
            Without it, a configured WAL directory that already holds
            records is refused — silently appending new history after
            an unreplayed past would poison future recoveries.

    Use as::

        service = DiversificationService(network, similarity, config=config)
        asyncio.run(service.run())          # serve until SIGINT/SIGTERM

    or drive the lifecycle explicitly in a running loop —
    ``await service.start()`` … ``await service.shutdown()`` — which is
    what the tests and benchmarks do.
    """

    def __init__(
        self,
        network: Optional[Network] = None,
        similarity: Optional[SimilarityTable] = None,
        config: Optional[ServiceConfig] = None,
        constraints: Optional[ConstraintSet] = None,
        engine: Optional[DynamicDiversifier] = None,
        events_applied: int = 0,
        initial_view: Optional[ReadView] = None,
        version: int = 0,
        wal_floor: int = 0,
        recover: bool = False,
    ) -> None:
        self.config = config or ServiceConfig()
        if engine is None:
            if network is None or similarity is None:
                raise ValueError(
                    "DiversificationService needs (network, similarity) "
                    "or a pre-built engine"
                )
            engine = DynamicDiversifier(
                network,
                similarity,
                solver=self.config.solver,
                warm_start=self.config.warm_start,
                sharded=self.config.sharded,
                constraints=constraints,
                **self.config.engine_options,
            )
        self._engine = engine
        self.metrics = ServiceMetrics(solve_buckets=self.config.solve_buckets)
        self.metrics.set_gauge("queue_high_water", self.config.high_water)
        self.metrics.set_build_info(
            version=__version__,
            python=platform.python_version(),
            solver=self.config.solver,
            sharded=self.config.sharded,
            warm_start=self.config.warm_start,
        )
        self._log = get_logger("service")
        #: the trace ring buffer this service owns (None when disabled or
        #: when an ambient trace — e.g. ``repro trace`` — was joined).
        self._trace: Optional[obs.Trace] = None
        if self.config.trace_tail > 0 and not obs.enabled():
            self._trace = obs.Trace(limit=self.config.trace_tail)
            obs.activate(self._trace)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._view: Optional[ReadView] = initial_view
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-writer"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        self._draining = False
        self._shutting_down = False
        self._solves = version
        self._inflight = 0
        self._events_applied = events_applied
        self._last_snapshot_path: Optional[str] = None
        self._recover = recover
        self._seq = wal_floor
        self._applied_seq = wal_floor
        self._seen_requests: "OrderedDict[str, Dict[str, object]]" = (
            OrderedDict()
        )
        self._wal: Optional[WriteAheadLog] = None
        self._wal_executor: Optional[ThreadPoolExecutor] = None
        if self.config.wal_enabled:
            self._wal = WriteAheadLog(
                self.config.wal_dir,  # type: ignore[arg-type]
                fsync=self.config.fsync,
                segment_bytes=self.config.wal_segment_bytes,
                segment_records=self.config.wal_segment_records,
                faults=self.config.fault_plan,
            )
            if self._wal.last_seq > wal_floor and not recover:
                raise ValueError(
                    f"WAL directory {self.config.wal_dir} already holds "
                    f"records up to seq {self._wal.last_seq}; restart with "
                    "--restore to replay them, or point --wal at a fresh "
                    "directory"
                )
            # Appends are serialized on their own one-thread executor so
            # an fsync never stalls reads on the event loop and never
            # queues behind a multi-second solve on the writer executor.
            self._wal_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-wal"
            )
            self._seq = self._wal.last_seq
            self.metrics.set_gauge("wal_last_seq", self._wal.last_seq)
            self.metrics.set_gauge("wal_segments", self._wal.segment_count)
        self._dead_letter_path = None
        if self.config.wal_enabled:
            self._dead_letter_path = (
                self.config.wal_dir / "dead-letter.jsonl"  # type: ignore
            )
        elif self.config.snapshots_enabled:
            self._dead_letter_path = (
                self.config.snapshot_dir / "dead-letter.jsonl"  # type: ignore
            )

    @classmethod
    def from_snapshot(
        cls, config: ServiceConfig, path: Optional[str] = None
    ) -> "DiversificationService":
        """Warm-restart a service from a snapshot directory.

        ``path`` names one ``snap-<version>/`` directory; by default the
        newest *valid* snapshot under ``config.snapshot_dir`` is used —
        corrupt or partial directories (failed sha256, torn write) are
        skipped with a warning, falling back to the next-newest.  The
        first solve after restart is warm (restored messages + labels),
        the ingestion and version counters resume where the snapshot
        left them, and the saved read view is republished as-is, so no
        boot solve runs.  With a WAL configured, :meth:`start` then
        replays every record past the snapshot's ``wal_seq`` — recovery
        is snapshot + tail, byte-identical to a never-crashed twin.
        """
        if path is None:
            if not config.snapshots_enabled:
                raise ValueError("config.snapshot_dir is not set")
            found = latest_valid_snapshot(config.snapshot_dir)  # type: ignore[arg-type]
            if found is None:
                raise ValueError(
                    f"no valid snapshot under {config.snapshot_dir}"
                )
            path = found[1]
        engine, snapshot = restore_engine(
            path,
            solver=config.solver,
            warm_start=config.warm_start,
            sharded=config.sharded,
            **config.engine_options,
        )
        meta_view = snapshot.view
        initial_view = None
        if (
            meta_view is not None
            and meta_view.get("energy") is not None
            and engine._previous is not None
        ):
            plan = engine.plan
            initial_view = ReadView(
                version=int(meta_view.get("version", snapshot.version)),
                events_applied=int(
                    meta_view.get("events_applied", snapshot.events_applied)
                ),
                energy=float(meta_view["energy"]),
                lower_bound=float(meta_view.get("lower_bound", float("-inf"))),
                certified_optimal=bool(
                    meta_view.get("certified_optimal", False)
                ),
                warm=bool(meta_view.get("warm", False)),
                stability=float(meta_view.get("stability", 1.0)),
                solve_seconds=float(meta_view.get("solve_seconds", 0.0)),
                values=dict(engine._previous),
                network=engine.network.copy(),
                similarity=engine.similarity.copy(),
                constraints=engine.constraints.copy(),
                cost_model={
                    "unary_constant": plan.unary_constant,
                    "pairwise_weight": plan.pairwise_weight,
                    "service_weights": plan.service_weights or None,
                },
                shards_total=int(meta_view.get("shards_total", 1)),
                shards_solved=int(meta_view.get("shards_solved", 1)),
            )
        return cls(
            config=config,
            engine=engine,
            events_applied=snapshot.events_applied,
            initial_view=initial_view,
            version=snapshot.version,
            wal_floor=snapshot.wal_seq,
            recover=True,
        )

    # ------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The bound listen port (resolves port 0 after :meth:`start`)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def view(self) -> Optional[ReadView]:
        """The current immutable read view (None before :meth:`start`)."""
        return self._view

    async def start(self) -> None:
        """Recover (WAL replay), publish the first view, start serving.

        A fresh service runs the boot solve here; a restored one
        republishes the snapshot's view instead, then replays the WAL
        tail through the ordinary ingest path — so the first solve a
        recovered daemon runs is exactly the solve its never-crashed
        twin would have run next.
        """
        loop = asyncio.get_running_loop()
        if self._view is None:
            # The boot solve comes FIRST: a never-crashed twin solved the
            # bootstrap state before any event arrived, so a WAL-only
            # recovery (no snapshot view) must too, or version drifts.
            await loop.run_in_executor(self._executor, self._ingest, [])
        if self._wal is not None and self._recover:
            await loop.run_in_executor(self._executor, self._replay_wal)
        self._writer_task = asyncio.create_task(self._writer_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._log.info(
            "service listening",
            extra=kv(
                host=self.config.host,
                port=self.port,
                solver=self.config.solver,
                sharded=self.config.sharded,
                trace_tail=self.config.trace_tail,
            ),
        )

    async def run(self) -> None:
        """Start, install signal handlers, serve until shutdown completes."""
        await self.start()
        await self.run_until_stopped()

    async def run_until_stopped(self) -> None:
        """After :meth:`start`: handle SIGINT/SIGTERM, block until stopped."""
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful stop: drain the queue, final snapshot, close the server.

        Idempotent.  New events are refused (503) the moment draining
        starts; everything already queued is still applied and solved, so
        an acknowledged event is never lost by a clean shutdown.
        """
        if self._shutting_down:
            await self._stopped.wait()
            return
        self._shutting_down = True
        self._draining = True
        await self._queue.put(_STOP)
        if self._writer_task is not None:
            await self._writer_task
        loop = asyncio.get_running_loop()
        if self.config.snapshots_enabled:
            await loop.run_in_executor(self._executor, self._write_snapshot)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=True)
        if self._wal_executor is not None:
            self._wal_executor.shutdown(wait=True)
        if self._wal is not None:
            self._wal.close()
        if self._trace is not None and obs.current_trace() is self._trace:
            obs.deactivate()
        self._log.info(
            "service stopped",
            extra=kv(solves=self._solves, events=self._events_applied),
        )
        self._stopped.set()

    async def abort(self) -> None:
        """Die in place — the crash-simulation stop the recovery tests use.

        Unlike :meth:`shutdown` this is deliberately *not* graceful: the
        queue is NOT drained, no snapshot is written, and the WAL is
        dropped without a final fsync — exactly the state a ``SIGKILL``
        leaves behind, minus the dead process.  Everything durable must
        therefore be recoverable by snapshot + WAL-tail replay alone.
        """
        if self._shutting_down:
            await self._stopped.wait()
            return
        self._shutting_down = True
        self._draining = True
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
            except Exception:  # pragma: no cover - crash path is best-effort
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=True, cancel_futures=True)
        if self._wal_executor is not None:
            self._wal_executor.shutdown(wait=True, cancel_futures=True)
        if self._wal is not None:
            self._wal.abandon()
        if self._trace is not None and obs.current_trace() is self._trace:
            obs.deactivate()
        self._log.warning(
            "service aborted (simulated crash)",
            extra=kv(solves=self._solves, queued=self._queue.qsize()),
        )
        self._stopped.set()

    # ------------------------------------------------------------ writer side

    async def _writer_loop(self) -> None:
        """The single writer: batch events off the queue, apply, solve."""
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            stop = item is _STOP
            batch: List[Tuple[int, Event]] = [] if stop else [item]
            while not stop and len(batch) < self.config.batch_max:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _STOP:
                    stop = True
                    break
                batch.append(item)
            if batch:
                self._inflight = len(batch)
                try:
                    await loop.run_in_executor(self._executor, self._ingest, batch)
                finally:
                    self._inflight = 0
                self.metrics.set_gauge("queue_depth", self._queue.qsize())
            if stop:
                # Drain whatever raced in behind the sentinel, then exit.
                leftovers: List[Tuple[int, Event]] = []
                while True:
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if item is not _STOP:
                        leftovers.append(item)
                if leftovers:
                    self._inflight = len(leftovers)
                    try:
                        await loop.run_in_executor(
                            self._executor, self._ingest, leftovers
                        )
                    finally:
                        self._inflight = 0
                self.metrics.set_gauge("queue_depth", 0)
                return

    def _replay_wal(self) -> None:
        """Replay the WAL tail through the ingest path (writer thread).

        Records past the snapshot anchor are re-applied in ``batch_max``
        groups — the same batching discipline live traffic gets — so at
        ``batch_max=1`` the recovered engine walks the exact solve
        sequence of its never-crashed twin.  Torn trailing records were
        already dropped (with a warning) when the WAL opened.
        """
        assert self._wal is not None
        records = list(self._wal.replay(after_seq=self._applied_seq))
        if not records:
            return
        with obs.span(
            "wal.replay",
            cat="service",
            records=len(records),
            after_seq=self._applied_seq,
        ):
            for start in range(0, len(records), self.config.batch_max):
                chunk = records[start : start + self.config.batch_max]
                self._ingest(chunk, replay=True)
        self.metrics.inc("wal_replayed_total", len(records))
        self._log.info(
            "wal tail replayed",
            extra=kv(records=len(records), last_seq=records[-1][0]),
        )

    def _solve_batch(self, force_cold: bool = False):
        """One engine solve, routed through the ``solve`` fault point."""
        faults = self.config.fault_plan
        if faults is not None:
            action = faults.fire("solve")
            if action == "crash":
                faults.crash()
            if action == "error":
                raise InjectedFault("injected solver failure")
        return self._engine.solve(force_cold=force_cold)

    def _dead_letter(self, batch: List[Tuple[int, Event]], problem) -> None:
        """Quarantine a twice-failed batch to the dead-letter sidecar."""
        self.metrics.inc("dead_letter_total", len(batch))
        path = self._dead_letter_path
        self._log.error(
            "batch quarantined to dead letter",
            extra=kv(
                events=len(batch), error=str(problem), path=str(path)
            ),
        )
        if path is None:
            return
        try:
            with open(path, "a") as sidecar:
                for seq, event in batch:
                    sidecar.write(
                        json.dumps(
                            {
                                "seq": seq,
                                "event": event_to_dict(event),
                                "error": str(problem),
                            }
                        )
                        + "\n"
                    )
        except OSError:  # pragma: no cover - sidecar is best-effort
            self._log.error("dead-letter write failed")

    def _ingest(
        self, batch: List[Tuple[int, Event]], replay: bool = False
    ) -> None:
        """Apply one ``(seq, event)`` batch and re-solve (writer thread only).

        A bad event — e.g. removing a link that is already gone — fails
        alone: it is counted and skipped, the rest of the batch applies.
        After the solve the fresh :class:`ReadView` is swapped in and, when
        due, a snapshot is written.  Failure handling degrades in stages:
        a solver exception is retried once as a forced cold rebuild
        (escalation ``"forced"``), and a batch failing both attempts is
        quarantined to the dead-letter sidecar — the queue keeps moving
        and readers keep the last good view.
        """
        if self._wal is not None and not replay:
            # The batch-policy flush point: everything acknowledged so far
            # (including this batch) becomes durable before it mutates
            # engine state.  "always" already synced; "off" no-ops.
            try:
                self._wal.sync()
            except OSError as problem:
                self.metrics.inc("wal_failures_total")
                self._log.error(
                    "wal fsync failed; durability window extended",
                    extra=kv(error=str(problem)),
                )
        last_seq = batch[-1][0] if batch else self._applied_seq
        with obs.span(
            "service.batch", cat="service", events=len(batch), replay=replay
        ) as batch_span:
            applied = 0
            for _, event in batch:
                try:
                    self._engine.apply(event)
                except Exception:
                    self.metrics.inc("events_failed_total")
                    self._log.warning(
                        "event failed",
                        extra=kv(event=type(event).__name__),
                    )
                else:
                    applied += 1
            try:
                result = self._solve_batch()
            except Exception as problem:
                self.metrics.inc("writer_failures_total")
                self._log.warning(
                    "solver failed; escalating to cold rebuild",
                    extra=kv(error=str(problem)),
                )
                try:
                    result = self._solve_batch(force_cold=True)
                except Exception as worse:
                    self.metrics.inc("writer_failures_total")
                    self._dead_letter(batch, worse)
                    self._events_applied += applied
                    self._applied_seq = last_seq
                    self.metrics.inc("events_applied_total", applied)
                    batch_span.add(applied=applied, dead_letter=True)
                    return
            batch_span.add(
                applied=applied,
                warm=result.warm,
                energy=result.energy,
                seconds=result.seconds,
            )
        self._events_applied += applied
        self._applied_seq = last_seq
        self._solves += 1
        self.metrics.inc("events_applied_total", applied)
        self.metrics.inc("solves_total")
        self.metrics.inc(
            "solves_warm_total" if result.warm else "solves_cold_total"
        )
        self.metrics.observe_solve(result.seconds)
        if result.escalation is not None:
            self.metrics.inc_escalation(result.escalation)
        for shard_seconds in result.shard_seconds:
            self.metrics.observe_shard_solve(shard_seconds)
        self._log.debug(
            "batch solved",
            extra=kv(
                version=self._solves,
                events=applied,
                warm=result.warm,
                escalation=result.escalation,
                seconds=round(result.seconds, 6),
                energy=result.energy,
            ),
        )
        plan = self._engine.plan
        self.metrics.set_gauge("plan_nodes", plan.node_count)
        self.metrics.set_gauge("plan_edges", plan.edge_count)
        self._view = ReadView(
            version=self._solves,
            events_applied=self._events_applied,
            energy=result.energy,
            lower_bound=result.lower_bound,
            certified_optimal=result.certified_optimal,
            warm=result.warm,
            stability=result.stability,
            solve_seconds=result.seconds,
            values=dict(result.assignment.as_dict()),
            network=self._engine.network.copy(),
            similarity=self._engine.similarity.copy(),
            constraints=self._engine.constraints.copy(),
            cost_model={
                "unary_constant": plan.unary_constant,
                "pairwise_weight": plan.pairwise_weight,
                "service_weights": plan.service_weights or None,
            },
            shards_total=result.shards_total,
            shards_solved=result.shards_solved,
        )
        if (
            self.config.snapshots_enabled
            and self.config.snapshot_every
            and self._solves % self.config.snapshot_every == 0
        ):
            self._write_snapshot()

    def _write_snapshot(self) -> None:
        """Write a snapshot of the live engine (writer thread only).

        The snapshot records the WAL sequence it is anchored at and the
        published read-view counters; on success, WAL segments wholly
        below the anchor are compacted away.  A failed write (including
        an injected ``snapshot`` fault) is counted and logged but never
        takes the writer down — the staged temp dir is cleaned up and the
        previous snapshot generation keeps covering recovery.
        """
        if not self.config.snapshots_enabled:
            return
        view = self._view
        view_meta = None
        if view is not None:
            view_meta = {
                "version": view.version,
                "events_applied": view.events_applied,
                "energy": view.energy,
                "lower_bound": view.lower_bound,
                "certified_optimal": view.certified_optimal,
                "warm": view.warm,
                "stability": view.stability,
                "solve_seconds": view.solve_seconds,
                "shards_total": view.shards_total,
                "shards_solved": view.shards_solved,
            }
        with obs.span("service.snapshot", cat="service", version=self._solves):
            try:
                path = save_snapshot(
                    self._engine,
                    self.config.snapshot_dir,  # type: ignore[arg-type]
                    version=self._solves,
                    events_applied=self._events_applied,
                    energy=view.energy if view is not None else None,
                    wal_seq=self._applied_seq,
                    view=view_meta,
                    faults=self.config.fault_plan,
                )
            except Exception as problem:
                self.metrics.inc("snapshot_failures_total")
                self._log.error(
                    "snapshot failed; previous generation still covers "
                    "recovery",
                    extra=kv(error=str(problem)),
                )
                return
            prune_snapshots(
                self.config.snapshot_dir,  # type: ignore[arg-type]
                self.config.keep_snapshots,
            )
        self._last_snapshot_path = str(path)
        self.metrics.inc("snapshots_total")
        if self._wal is not None:
            removed = self._wal.compact(self._applied_seq)
            if removed:
                self._log.debug(
                    "wal compacted",
                    extra=kv(
                        segments=len(removed), up_to=self._applied_seq
                    ),
                )
            self.metrics.set_gauge("wal_segments", self._wal.segment_count)
        self._log.debug("snapshot written", extra=kv(path=str(path)))

    # -------------------------------------------------------------- HTTP side

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One HTTP/1.1 exchange (``Connection: close`` semantics)."""
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, body = request
            status, payload, headers = await self._route(method, path, body)
            text = (
                payload
                if isinstance(payload, str)
                else json.dumps(payload, indent=1) + "\n"
            )
            content_type = (
                "text/plain; charset=utf-8"
                if isinstance(payload, str)
                else "application/json"
            )
            raw = text.encode()
            head = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(raw)}",
                "Connection: close",
            ]
            head.extend(f"{name}: {value}" for name, value in headers.items())
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + raw)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, object, Dict[str, str]]:
        """Dispatch one request; returns (status, payload, extra headers)."""
        no_headers: Dict[str, str] = {}
        if method == "GET" and path == "/healthz":
            return 200, self._health_payload(), no_headers
        if method == "GET" and path == "/metrics":
            return 200, self.metrics.render(), no_headers
        if method == "GET" and path == "/debug/trace":
            trace = obs.current_trace()
            if trace is None:
                return (
                    409,
                    {"error": "tracing is disabled (set trace_tail > 0)"},
                    no_headers,
                )
            return 200, trace.chrome(), no_headers
        if method == "GET" and path == "/assignment":
            self.metrics.inc("reads_total")
            view = self._view
            if view is None:  # pragma: no cover - start() always publishes
                return 503, {"error": "no solve yet"}, no_headers
            return 200, view.assignment_payload(), no_headers
        if method == "GET" and path.startswith("/hosts/"):
            self.metrics.inc("reads_total")
            view = self._view
            if view is None:  # pragma: no cover
                return 503, {"error": "no solve yet"}, no_headers
            payload = view.host_payload(path[len("/hosts/") :])
            if payload is None:
                return 404, {"error": "unknown host"}, no_headers
            return 200, payload, no_headers
        if method == "POST" and path == "/energy":
            return self._route_whatif(body)
        if method == "POST" and path == "/events":
            return await self._route_events(body)
        if method == "POST" and path == "/snapshot":
            if not self.config.snapshots_enabled:
                return 409, {"error": "snapshots are disabled"}, no_headers
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, self._write_snapshot)
            return 200, {"snapshot": self._last_snapshot_path}, no_headers
        if method == "POST" and path == "/shutdown":
            # refuse new events before the response even goes out — an
            # event acknowledged after shutdown would race the drain
            self._draining = True
            asyncio.ensure_future(self.shutdown())
            return 202, {"status": "draining"}, no_headers
        return 404, {"error": f"no route {method} {path}"}, no_headers

    async def _route_events(
        self, body: bytes
    ) -> Tuple[int, object, Dict[str, str]]:
        """``POST /events``: decode, dedup, WAL-append, enqueue.

        Accepts a bare event dict, a list of them, or the idempotency
        envelope ``{"request_id": ..., "events": [...]}`` — a request id
        already acknowledged returns the cached 202 with ``duplicate:
        true`` and queues nothing, so a client retry after a lost
        response never double-applies a chunk.  With a WAL configured
        the events are appended (and, under ``--fsync always``, synced)
        *before* the 202: acknowledged means durable.  A failed append
        rolls back cleanly and answers 503 — nothing was queued, so the
        client retry is safe.
        """
        if self._draining:
            return 503, {"error": "service is draining"}, {}
        try:
            payload = json.loads(body.decode() or "null")
            request_id = None
            if isinstance(payload, dict) and "events" in payload:
                request_id = payload.get("request_id")
                if request_id is not None and not isinstance(
                    request_id, str
                ):
                    raise ValueError("request_id must be a string")
                payload = payload["events"]
            entries = payload if isinstance(payload, list) else [payload]
            events = [event_from_dict(entry) for entry in entries]
        except (ValueError, UnicodeDecodeError) as problem:
            return 400, {"error": str(problem)}, {}
        if request_id is not None and request_id in self._seen_requests:
            cached = dict(self._seen_requests[request_id])
            cached["duplicate"] = True
            return 202, cached, {}
        depth = self._queue.qsize()
        if depth + len(events) > self.config.high_water:
            self.metrics.inc("events_rejected_total", len(events))
            return (
                429,
                {
                    "error": "ingestion queue past its high-water mark",
                    "queue_depth": depth,
                    "high_water": self.config.high_water,
                },
                {"Retry-After": f"{self.config.retry_after:g}"},
            )
        if events and self._wal is not None:
            loop = asyncio.get_running_loop()
            try:
                first, _last = await loop.run_in_executor(
                    self._wal_executor, self._wal.append, events
                )
            except (OSError, RuntimeError) as problem:
                self.metrics.inc("wal_failures_total")
                self._log.error(
                    "wal append failed; events refused",
                    extra=kv(error=str(problem)),
                )
                return (
                    503,
                    {"error": f"write-ahead log append failed: {problem}"},
                    {},
                )
            self.metrics.inc("wal_appends_total")
            self.metrics.inc("wal_records_total", len(events))
            self.metrics.set_gauge("wal_last_seq", self._wal.last_seq)
            self._seq = self._wal.last_seq
        else:
            first = self._seq + 1
            self._seq += len(events)
        for position, event in enumerate(events):
            self._queue.put_nowait((first + position, event))
        self.metrics.inc("events_ingested_total", len(events))
        depth = self._queue.qsize()
        self.metrics.set_gauge("queue_depth", depth)
        response: Dict[str, object] = {
            "queued": len(events),
            "queue_depth": depth,
        }
        if request_id is not None:
            response["request_id"] = request_id
            self._seen_requests[request_id] = response
            while len(self._seen_requests) > _SEEN_LIMIT:
                self._seen_requests.popitem(last=False)
        return 202, response, {}

    def _route_whatif(
        self, body: bytes
    ) -> Tuple[int, object, Dict[str, str]]:
        """``POST /energy``: what-if evaluation on the current view."""
        self.metrics.inc("reads_total")
        view = self._view
        if view is None:  # pragma: no cover - start() always publishes
            return 503, {"error": "no solve yet"}, {}
        try:
            payload = json.loads(body.decode() or "{}")
            changes = payload.get("changes", {}) if isinstance(payload, dict) else None
            if not isinstance(changes, dict):
                raise ValueError(
                    'body must be {"changes": {host: {service: product}}}'
                )
            return 200, view.whatif_energy(changes), {}
        except (ValueError, UnicodeDecodeError, KeyError) as problem:
            return 400, {"error": str(problem)}, {}

    def _health_payload(self) -> Dict[str, object]:
        """The ``GET /healthz`` body."""
        view = self._view
        depth = self._queue.qsize()
        return {
            "status": "draining" if self._draining else "ok",
            "version": view.version if view is not None else 0,
            "events_applied": self._events_applied,
            "queue_depth": depth,
            "idle": depth == 0 and self._inflight == 0,
            "solver": self._engine.solver_name,
            "sharded": self.config.sharded,
            "wal": self._wal is not None,
            "wal_seq": self._wal.last_seq if self._wal is not None else 0,
        }


#: the subset of HTTP reason phrases the service emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one HTTP/1.x request: (method, path, body), or None on EOF.

    Minimal by design: request line, headers (only ``Content-Length`` is
    honoured), then the body.  Query strings are stripped from the path.
    Oversized bodies raise ``ValueError`` → connection closed.
    """
    line = await reader.readline()
    if not line or not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, target = parts[0].upper(), parts[1]
    length = 0
    while True:
        header = await reader.readline()
        if not header or header in (b"\r\n", b"\n"):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
    if length > _MAX_BODY:
        raise ValueError("request body too large")
    body = await reader.readexactly(length) if length else b""
    path = target.partition("?")[0]
    return method, path, body
