"""The always-on diversification service (``repro serve``).

Layers the streaming engine (:mod:`repro.stream`) behind a long-lived
asyncio daemon:

* :mod:`repro.service.app` — :class:`DiversificationService`, the daemon:
  HTTP ingestion with bounded backpressure, a single writer task applying
  event batches and re-solving warm, snapshot-consistent reads from an
  immutable :class:`ReadView`, health/metrics endpoints, graceful drain;
* :mod:`repro.service.config` — :class:`ServiceConfig`, every operational
  knob validated at startup;
* :mod:`repro.service.snapshot` — versioned on-disk plan snapshots with
  byte-identical restore (warm restarts survive process death);
* :mod:`repro.service.metrics` — :class:`ServiceMetrics`, the Prometheus
  text exposition behind ``GET /metrics``;
* :mod:`repro.service.client` — :class:`ServiceClient`, blocking stdlib
  helpers used by the tests, benchmarks and the CI smoke check.

``docs/service.md`` is the operator-facing reference.
"""

from repro.service.app import DiversificationService, ReadView
from repro.service.client import Backpressure, ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.metrics import SOLVE_BUCKETS, ServiceMetrics
from repro.service.snapshot import (
    SNAPSHOT_SCHEMA,
    Snapshot,
    latest_snapshot,
    load_snapshot,
    prune_snapshots,
    restore_engine,
    restore_plan,
    save_snapshot,
)

__all__ = [
    "Backpressure",
    "DiversificationService",
    "ReadView",
    "SNAPSHOT_SCHEMA",
    "SOLVE_BUCKETS",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "Snapshot",
    "latest_snapshot",
    "load_snapshot",
    "prune_snapshots",
    "restore_engine",
    "restore_plan",
    "save_snapshot",
]
