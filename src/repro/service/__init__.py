"""The always-on diversification service (``repro serve``).

Layers the streaming engine (:mod:`repro.stream`) behind a long-lived
asyncio daemon:

* :mod:`repro.service.app` — :class:`DiversificationService`, the daemon:
  HTTP ingestion with bounded backpressure, a single writer task applying
  event batches and re-solving warm, snapshot-consistent reads from an
  immutable :class:`ReadView`, health/metrics endpoints, graceful drain;
* :mod:`repro.service.config` — :class:`ServiceConfig`, every operational
  knob validated at startup;
* :mod:`repro.service.wal` — :class:`WriteAheadLog`, the segmented,
  checksummed durable event log behind ``--wal``; recovery is snapshot +
  WAL-tail replay, byte-identical to a never-crashed twin;
* :mod:`repro.service.faults` — :class:`FaultPlan`, deterministic fault
  injection (crash/torn-write/fsync-error/solver-error/snapshot-failure)
  driving the crash-recovery tests;
* :mod:`repro.service.snapshot` — versioned on-disk plan snapshots with
  byte-identical restore (warm restarts survive process death), sha256
  integrity checks and corrupt-snapshot fallback;
* :mod:`repro.service.metrics` — :class:`ServiceMetrics`, the Prometheus
  text exposition behind ``GET /metrics``;
* :mod:`repro.service.client` — :class:`ServiceClient`, blocking stdlib
  helpers with transient-error retry and idempotent resend, used by the
  tests, benchmarks and the CI smoke check.

``docs/service.md`` is the operator-facing reference.
"""

from repro.service.app import DiversificationService, ReadView
from repro.service.client import Backpressure, ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    parse_fault_plan,
    random_fault_plan,
)
from repro.service.metrics import SOLVE_BUCKETS, ServiceMetrics
from repro.service.snapshot import (
    SNAPSHOT_SCHEMA,
    Snapshot,
    latest_snapshot,
    latest_valid_snapshot,
    load_snapshot,
    prune_snapshots,
    restore_engine,
    restore_plan,
    save_snapshot,
)
from repro.service.wal import (
    WriteAheadLog,
    inspect_wal,
    replay_wal,
    truncate_torn_tail,
)

__all__ = [
    "Backpressure",
    "DiversificationService",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "ReadView",
    "SNAPSHOT_SCHEMA",
    "SOLVE_BUCKETS",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "Snapshot",
    "WriteAheadLog",
    "inspect_wal",
    "latest_snapshot",
    "latest_valid_snapshot",
    "load_snapshot",
    "parse_fault_plan",
    "prune_snapshots",
    "random_fault_plan",
    "replay_wal",
    "restore_engine",
    "restore_plan",
    "save_snapshot",
    "truncate_torn_tail",
]
