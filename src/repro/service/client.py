"""Blocking client helpers for the diversification service.

:class:`ServiceClient` wraps the daemon's HTTP surface in plain method
calls over :mod:`http.client` (stdlib, one connection per request) so
scripts, tests, and benchmarks never hand-roll requests.  Backpressure is
a first-class outcome: a 429 raises :class:`Backpressure` carrying the
server's ``Retry-After``, and :meth:`ServiceClient.send` will sleep and
retry on the caller's behalf.

>>> from repro.stream.events import LinkAdd
>>> ServiceClient.normalize_events([LinkAdd("h0", "h1"), {"type": "host_leave", "host": "h2"}])
[{'type': 'link_add', 'a': 'h0', 'b': 'h1'}, {'type': 'host_leave', 'host': 'h2'}]
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.stream.events import Event, event_to_dict

__all__ = ["ServiceClient", "ServiceError", "Backpressure"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service (other than backpressure)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class Backpressure(ServiceError):
    """A 429 from ``POST /events``; honours the server's ``Retry-After``."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class ServiceClient:
    """Typed access to one running :class:`~repro.service.app.DiversificationService`.

    Args:
        host / port: where the daemon listens.
        timeout: socket timeout (seconds) per request.

    Every method performs one HTTP request and returns the decoded JSON
    body (or raw text for ``/metrics``); error statuses raise
    :class:`ServiceError` / :class:`Backpressure`.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8351, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @staticmethod
    def normalize_events(
        events: Iterable[Union[Event, Mapping[str, object]]],
    ) -> List[Dict[str, object]]:
        """Typed events and/or raw wire dicts → a list of wire dicts."""
        normalized: List[Dict[str, object]] = []
        for event in events:
            if isinstance(event, Mapping):
                normalized.append(dict(event))
            else:
                normalized.append(event_to_dict(event))
        return normalized

    # -------------------------------------------------------------- plumbing

    def _request(
        self, method: str, path: str, payload: Optional[object] = None
    ):
        """One request/response cycle; returns (status, headers, raw body)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()

    def _json(self, method: str, path: str, payload: Optional[object] = None):
        """Request + decode, mapping error statuses onto exceptions."""
        status, headers, raw = self._request(method, path, payload)
        try:
            decoded = json.loads(raw.decode() or "null")
        except ValueError:
            decoded = {"error": raw.decode(errors="replace")}
        if status == 429:
            retry_after = float(headers.get("Retry-After", 1.0))
            message = decoded.get("error", "backpressure") if isinstance(decoded, dict) else "backpressure"
            raise Backpressure(message, retry_after)
        if status >= 400:
            message = decoded.get("error", raw.decode(errors="replace")) if isinstance(decoded, dict) else str(decoded)
            raise ServiceError(status, message)
        return decoded

    # ------------------------------------------------------------- ingestion

    def post_events(
        self, events: Iterable[Union[Event, Mapping[str, object]]]
    ) -> Dict[str, object]:
        """One ``POST /events`` with no retries; raises on 429."""
        return self._json("POST", "/events", self.normalize_events(events))

    def send(
        self,
        events: Iterable[Union[Event, Mapping[str, object]]],
        chunk: int = 64,
        max_wait: float = 60.0,
    ) -> int:
        """Deliver every event, chunking and honouring backpressure.

        Splits the trace into ``chunk``-sized posts; on a 429 sleeps the
        server's ``Retry-After`` and retries the same chunk, giving up
        (re-raising :class:`Backpressure`) once ``max_wait`` seconds of
        cumulative waiting is exceeded.  Returns the number of events
        accepted.
        """
        wire = self.normalize_events(events)
        accepted = 0
        waited = 0.0
        position = 0
        while position < len(wire):
            piece = wire[position : position + chunk]
            try:
                self._json("POST", "/events", piece)
            except Backpressure as pushback:
                if waited >= max_wait:
                    raise
                pause = min(pushback.retry_after, max_wait - waited)
                time.sleep(pause)
                waited += pause
                continue
            accepted += len(piece)
            position += chunk
        return accepted

    # ----------------------------------------------------------------- reads

    def healthz(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")

    def assignment(self) -> Dict[str, object]:
        """``GET /assignment`` — the full current-view payload."""
        return self._json("GET", "/assignment")

    def host_view(self, name: str) -> Dict[str, object]:
        """``GET /hosts/<name>`` — one host's services and constraints."""
        return self._json("GET", f"/hosts/{name}")

    def what_if(
        self, changes: Mapping[str, Mapping[str, str]]
    ) -> Dict[str, object]:
        """``POST /energy`` — evaluate overrides against the current view."""
        return self._json("POST", "/energy", {"changes": dict(changes)})

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition text."""
        status, _, raw = self._request("GET", "/metrics")
        if status >= 400:
            raise ServiceError(status, raw.decode(errors="replace"))
        return raw.decode()

    def debug_trace(self) -> Dict[str, object]:
        """``GET /debug/trace`` — the Chrome trace-event tail.

        Raises :class:`ServiceError` (409) when the service runs with
        tracing disabled (``trace_tail`` unset).
        """
        return self._json("GET", "/debug/trace")

    # ------------------------------------------------------------ operations

    def snapshot(self) -> Dict[str, object]:
        """``POST /snapshot`` — force a snapshot to disk now."""
        return self._json("POST", "/snapshot")

    def shutdown(self) -> Dict[str, object]:
        """``POST /shutdown`` — begin the graceful drain."""
        return self._json("POST", "/shutdown")

    def wait_idle(
        self, timeout: float = 30.0, poll: float = 0.02
    ) -> Dict[str, object]:
        """Poll ``/healthz`` until the service reports itself idle.

        Idle means the ingestion queue is empty *and* no batch is being
        applied, so the current view reflects every accepted event.
        Returns the final health payload; raises :class:`TimeoutError`
        if the service is still busy after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            health = self.healthz()
            if health.get("idle"):
                return health
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"queue still at depth {health.get('queue_depth')} "
                    f"after {timeout}s"
                )
            time.sleep(poll)
