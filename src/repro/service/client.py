"""Blocking client helpers for the diversification service.

:class:`ServiceClient` wraps the daemon's HTTP surface in plain method
calls over :mod:`http.client` (stdlib, one connection per request) so
scripts, tests, and benchmarks never hand-roll requests.  Backpressure is
a first-class outcome: a 429 raises :class:`Backpressure` carrying the
server's ``Retry-After``, and :meth:`ServiceClient.send` will sleep and
retry on the caller's behalf.

Transient connection failures — refused, reset, timed out — are retried
with capped exponential backoff plus jitter (``retries``/``backoff``
knobs).  Retrying a ``POST /events`` is safe because every post carries a
``request_id`` the server remembers: if the first attempt was actually
applied and only the response was lost, the resend comes back as a
``duplicate`` acknowledgement instead of double-applying the chunk.

>>> from repro.stream.events import LinkAdd
>>> ServiceClient.normalize_events([LinkAdd("h0", "h1"), {"type": "host_leave", "host": "h2"}])
[{'type': 'link_add', 'a': 'h0', 'b': 'h1'}, {'type': 'host_leave', 'host': 'h2'}]
"""

from __future__ import annotations

import http.client
import json
import random
import time
import uuid
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.stream.events import Event, event_to_dict

__all__ = ["ServiceClient", "ServiceError", "Backpressure"]

#: connection-level failures worth a retry: the server was restarting,
#: the socket died mid-flight, or the request timed out.  HTTP error
#: *statuses* are never retried here — they are real answers.
_TRANSIENT = (ConnectionError, TimeoutError, http.client.BadStatusLine)


class ServiceError(RuntimeError):
    """A non-2xx response from the service (other than backpressure)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class Backpressure(ServiceError):
    """A 429 from ``POST /events``; honours the server's ``Retry-After``."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class ServiceClient:
    """Typed access to one running :class:`~repro.service.app.DiversificationService`.

    Args:
        host / port: where the daemon listens.
        timeout: socket timeout (seconds) per request.
        retries: transient-connection-error retries per request (0
            disables).  Safe for every endpoint: reads are pure, the
            operational posts are idempotent, and event posts are
            deduplicated server-side by request id.
        backoff / backoff_cap: initial and maximum retry pause (seconds);
            the actual sleep doubles per attempt, capped, and is jittered
            by a uniform factor in [0.5, 1.5) to avoid thundering herds.
        default_retry_after: the pause assumed when a 429 arrives with a
            missing or malformed ``Retry-After`` header.

    Every method performs one HTTP request and returns the decoded JSON
    body (or raw text for ``/metrics``); error statuses raise
    :class:`ServiceError` / :class:`Backpressure`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8351,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        default_retry_after: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.default_retry_after = default_retry_after
        self._rng = rng or random.Random()

    @staticmethod
    def normalize_events(
        events: Iterable[Union[Event, Mapping[str, object]]],
    ) -> List[Dict[str, object]]:
        """Typed events and/or raw wire dicts → a list of wire dicts."""
        normalized: List[Dict[str, object]] = []
        for event in events:
            if isinstance(event, Mapping):
                normalized.append(dict(event))
            else:
                normalized.append(event_to_dict(event))
        return normalized

    # -------------------------------------------------------------- plumbing

    def _request(
        self, method: str, path: str, payload: Optional[object] = None
    ):
        """One request/response cycle; returns (status, headers, raw body).

        Transient connection errors are retried up to ``self.retries``
        times with capped exponential backoff + jitter; anything else
        propagates immediately.
        """
        attempts = self.retries + 1
        delay = self.backoff
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload)
            except _TRANSIENT:
                if attempt == attempts - 1:
                    raise
                pause = min(self.backoff_cap, delay)
                pause *= 0.5 + self._rng.random()
                time.sleep(pause)
                delay *= 2

    def _request_once(
        self, method: str, path: str, payload: Optional[object] = None
    ):
        """One attempt of one request/response cycle (no retries)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()

    def _json(self, method: str, path: str, payload: Optional[object] = None):
        """Request + decode, mapping error statuses onto exceptions."""
        status, headers, raw = self._request(method, path, payload)
        try:
            decoded = json.loads(raw.decode() or "null")
        except ValueError:
            decoded = {"error": raw.decode(errors="replace")}
        if status == 429:
            try:
                retry_after = float(headers.get("Retry-After", ""))
            except (TypeError, ValueError):
                retry_after = self.default_retry_after
            if retry_after <= 0:
                retry_after = self.default_retry_after
            message = decoded.get("error", "backpressure") if isinstance(decoded, dict) else "backpressure"
            raise Backpressure(message, retry_after)
        if status >= 400:
            message = decoded.get("error", raw.decode(errors="replace")) if isinstance(decoded, dict) else str(decoded)
            raise ServiceError(status, message)
        return decoded

    # ------------------------------------------------------------- ingestion

    def post_events(
        self,
        events: Iterable[Union[Event, Mapping[str, object]]],
        request_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """One ``POST /events`` (no backpressure retry); raises on 429.

        The post is wrapped in the idempotency envelope: ``request_id``
        defaults to a fresh UUID, and reusing one marks a resend — the
        server acknowledges without re-applying (``duplicate: true`` in
        the response).
        """
        return self._json(
            "POST",
            "/events",
            {
                "request_id": request_id or uuid.uuid4().hex,
                "events": self.normalize_events(events),
            },
        )

    def send(
        self,
        events: Iterable[Union[Event, Mapping[str, object]]],
        chunk: int = 64,
        max_wait: float = 60.0,
    ) -> int:
        """Deliver every event, chunking and honouring backpressure.

        Splits the trace into ``chunk``-sized posts; on a 429 sleeps the
        server's ``Retry-After`` and retries the same chunk, giving up
        (re-raising :class:`Backpressure`) once ``max_wait`` seconds of
        cumulative waiting is exceeded.  Every chunk keeps one request id
        across all its retries — backpressure or transient connection
        failure — so the server applies it at most once no matter how
        the first attempt died.  Returns the number of events accepted.
        """
        wire = self.normalize_events(events)
        accepted = 0
        waited = 0.0
        position = 0
        request_id = uuid.uuid4().hex
        while position < len(wire):
            piece = wire[position : position + chunk]
            try:
                self.post_events(piece, request_id=request_id)
            except Backpressure as pushback:
                if waited >= max_wait:
                    raise
                pause = min(pushback.retry_after, max_wait - waited)
                time.sleep(pause)
                waited += pause
                continue
            accepted += len(piece)
            position += chunk
            request_id = uuid.uuid4().hex
        return accepted

    # ----------------------------------------------------------------- reads

    def healthz(self) -> Dict[str, object]:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")

    def assignment(self) -> Dict[str, object]:
        """``GET /assignment`` — the full current-view payload."""
        return self._json("GET", "/assignment")

    def host_view(self, name: str) -> Dict[str, object]:
        """``GET /hosts/<name>`` — one host's services and constraints."""
        return self._json("GET", f"/hosts/{name}")

    def what_if(
        self, changes: Mapping[str, Mapping[str, str]]
    ) -> Dict[str, object]:
        """``POST /energy`` — evaluate overrides against the current view."""
        return self._json("POST", "/energy", {"changes": dict(changes)})

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition text."""
        status, _, raw = self._request("GET", "/metrics")
        if status >= 400:
            raise ServiceError(status, raw.decode(errors="replace"))
        return raw.decode()

    def debug_trace(self) -> Dict[str, object]:
        """``GET /debug/trace`` — the Chrome trace-event tail.

        Raises :class:`ServiceError` (409) when the service runs with
        tracing disabled (``trace_tail`` unset).
        """
        return self._json("GET", "/debug/trace")

    # ------------------------------------------------------------ operations

    def snapshot(self) -> Dict[str, object]:
        """``POST /snapshot`` — force a snapshot to disk now."""
        return self._json("POST", "/snapshot")

    def shutdown(self) -> Dict[str, object]:
        """``POST /shutdown`` — begin the graceful drain."""
        return self._json("POST", "/shutdown")

    def wait_idle(
        self, timeout: float = 30.0, poll: float = 0.02
    ) -> Dict[str, object]:
        """Poll ``/healthz`` until the service reports itself idle.

        Idle means the ingestion queue is empty *and* no batch is being
        applied, so the current view reflects every accepted event.
        Returns the final health payload; raises :class:`TimeoutError`
        if the service is still busy after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            health = self.healthz()
            if health.get("idle"):
                return health
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"queue still at depth {health.get('queue_depth')} "
                    f"after {timeout}s"
                )
            time.sleep(poll)
