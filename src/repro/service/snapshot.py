"""Versioned plan snapshots: save a live engine, warm-restart it later.

A snapshot captures everything a :class:`~repro.stream.incremental.
DynamicDiversifier` needs to resume exactly where it stopped:

* the **model state** — network, similarity table and operator constraint
  set (JSON, the human-auditable part);
* the **plan parts** — padded unary stack, edge arrays, the deduplicated
  cost-matrix stack and the stream bookkeeping (edge keys, matrix meta,
  combination cost ids) that maps future events onto them;
* the **solver state** — the directed-message array and the
  previous-solution labels that make the first post-restart solve *warm*.

Restoring rebuilds the :class:`~repro.stream.plan.StreamPlan` from the
saved parts (no recompile), so the plan arrays are **byte-identical** to
the saved ones and the next warm solve is bit-for-bit the solve a
never-restarted engine would have run — the restart-parity contract
asserted in ``tests/test_service.py``.

Layout (format ``schema = 2``): one ``snap-<version>/`` directory per
snapshot holding ``meta.json`` (model state + bookkeeping) and
``arrays.npz`` (the NumPy blocks).  Directories are written under a
temporary name and renamed into place, so a crash mid-write never leaves a
half snapshot where :func:`latest_snapshot` would find it.  Since schema 2
the meta also records a sha256 of ``arrays.npz`` (verified on load), the
write-ahead-log sequence number the snapshot is anchored at (``wal_seq``
— WAL segments at or below it are prunable) and the published read-view
counters, so a restore republishes the exact pre-crash view without an
extra boot solve.  Schema-1 snapshots still load (no hash to verify,
``wal_seq`` 0).  :func:`latest_valid_snapshot` is the crash-tolerant
lookup: it walks snapshots newest-first and *skips* corrupt or partial
directories with a warning instead of raising, so one torn write never
blocks ``--restore``.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.mrf.vectorized import MRFArrays
from repro.obs.logging import get_logger
from repro.service.faults import InjectedFault
from repro.network.constraints import ConstraintSet
from repro.network.io import network_from_json, network_to_json
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.stream.incremental import DynamicDiversifier
from repro.stream.plan import StreamPlan

__all__ = [
    "SNAPSHOT_SCHEMA",
    "Snapshot",
    "save_snapshot",
    "load_snapshot",
    "restore_plan",
    "restore_engine",
    "latest_snapshot",
    "latest_valid_snapshot",
    "prune_snapshots",
]

#: on-disk format version; bump on breaking layout changes.  Schema 2
#: added ``arrays_sha256``/``wal_seq``/``view`` to the meta; schema-1
#: directories remain loadable.
SNAPSHOT_SCHEMA = 2

_ACCEPTED_SCHEMAS = (1, 2)

_META_NAME = "meta.json"
_ARRAYS_NAME = "arrays.npz"
_PREFIX = "snap-"

_LOG = get_logger("service.snapshot")


@dataclass
class Snapshot:
    """One loaded snapshot: model state, plan parts and solver state.

    The in-memory form of a ``snap-<version>/`` directory, as
    :func:`load_snapshot` returns it and :func:`restore_plan` /
    :func:`restore_engine` consume it.  ``meta`` keeps the raw
    ``meta.json`` payload (cost model, bookkeeping, counters).
    """

    version: int
    network: Network
    similarity: SimilarityTable
    constraints: ConstraintSet
    meta: Dict[str, object]
    unaries: List[np.ndarray]
    edge_first: np.ndarray
    edge_second: np.ndarray
    edge_cid: np.ndarray
    matrices: List[np.ndarray]
    messages: np.ndarray
    labels: Optional[np.ndarray]
    lmax: int

    @property
    def events_applied(self) -> int:
        """Events the saved engine had ingested when the snapshot ran."""
        return int(self.meta.get("events_applied", 0))

    @property
    def wal_seq(self) -> int:
        """WAL sequence the snapshot is anchored at (0 = no WAL/schema 1)."""
        return int(self.meta.get("wal_seq") or 0)

    @property
    def view(self) -> Optional[Dict[str, object]]:
        """The read-view counters published when the snapshot ran, if saved."""
        view = self.meta.get("view")
        return dict(view) if isinstance(view, dict) else None


# ---------------------------------------------------------------------- save


def save_snapshot(
    engine: DynamicDiversifier,
    directory: Union[str, Path],
    version: int,
    events_applied: int = 0,
    energy: Optional[float] = None,
    wal_seq: Optional[int] = None,
    view: Optional[Dict[str, object]] = None,
    faults=None,
) -> Path:
    """Write one snapshot of a live engine; returns the snapshot path.

    Flushes pending structural deltas first (the saved plan is always the
    materialised one), then writes ``arrays.npz`` + ``meta.json`` into
    ``directory/snap-<version>/`` via a temp-dir rename, so readers never
    observe a partial snapshot.  The meta records a sha256 of the arrays
    blob (verified on load), the WAL anchor ``wal_seq`` and the published
    read-view counters ``view``.  ``faults`` is the optional
    :class:`~repro.service.faults.FaultPlan` consulted at the
    ``snapshot`` fault point (after staging, before the rename — the
    worst place to die).  The engine is not otherwise disturbed —
    message state, labels and dirty counters stay live.
    """
    plan = engine.plan
    plan.flush()
    plan.pad_messages()
    lmax = int(plan.messages.shape[1]) if plan.messages.size else plan.plan.lmax
    lmax = max(lmax, plan.plan.lmax)

    counts = np.asarray([len(u) for u in plan._unaries], dtype=np.int64)
    unary = np.zeros((len(counts), lmax))
    for node, vector in enumerate(plan._unaries):
        unary[node, : len(vector)] = vector
    mat_shapes = np.asarray(
        [m.shape for m in plan._matrices], dtype=np.int64
    ).reshape(len(plan._matrices), 2)
    mat_data = (
        np.concatenate([m.ravel() for m in plan._matrices])
        if plan._matrices
        else np.zeros(0)
    )
    labels = plan.labels
    meta = {
        "schema": SNAPSHOT_SCHEMA,
        "version": int(version),
        "created_unix": int(time.time()),
        "solver": engine.solver_name,
        "events_applied": int(events_applied),
        "energy": None if energy is None else float(energy),
        "wal_seq": int(wal_seq or 0),
        "view": dict(view) if view else None,
        "has_labels": labels is not None,
        "unary_constant": plan.unary_constant,
        "pairwise_weight": plan.pairwise_weight,
        "service_weights": plan.service_weights,
        "network": json.loads(
            network_to_json(plan.network, plan.constraints)
        ),
        "similarity": _similarity_to_dict(plan.similarity),
        "variables": [list(variable) for variable in plan.variables],
        "edge_keys": [
            [list(link), list(tag) if isinstance(tag, tuple) else tag]
            for link, tag in plan._edge_keys
        ],
        "matrix_meta": [
            [list(range_a), list(range_b), weight]
            for range_a, range_b, weight in plan._matrix_meta
        ],
        "combo_cids": [
            [host, svc_lo, svc_hi, int(cid)]
            for (host, svc_lo, svc_hi), cid in plan._combo_cids.items()
        ],
        # The sharded engine's per-shard solve summaries.  Restoring them
        # matters for recovery parity: a rebuilt cache means clean shards
        # are NOT re-solved after a restart, exactly as they would not
        # have been had the process never died (a re-solve from restored
        # messages can tie-break equal-energy optima differently).
        "shard_cache": [
            [
                sorted(list(variable) for variable in key),
                float(entry.energy),
                float(entry.lower_bound),
                bool(entry.converged),
            ]
            for key, entry in getattr(engine, "_shard_cache", {}).items()
        ],
    }

    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    target = root / f"{_PREFIX}{int(version):08d}"
    staging = root / f".{target.name}.tmp"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        np.savez(
            staging / _ARRAYS_NAME,
            unary=unary,
            label_counts=counts,
            lmax=np.asarray([lmax], dtype=np.int64),
            edge_first=np.asarray(plan._edge_first, dtype=np.int64),
            edge_second=np.asarray(plan._edge_second, dtype=np.int64),
            edge_cid=np.asarray(plan._edge_cid, dtype=np.int64),
            mat_shapes=mat_shapes,
            mat_data=mat_data,
            messages=plan.messages,
            labels=(
                labels if labels is not None else np.zeros(0, dtype=np.int64)
            ),
        )
        meta["arrays_sha256"] = _sha256_file(staging / _ARRAYS_NAME)
        (staging / _META_NAME).write_text(json.dumps(meta, indent=1))
        if faults is not None:
            action = faults.fire("snapshot")
            if action == "error":
                raise InjectedFault("injected snapshot failure mid-stage")
            if action == "crash":
                faults.crash()
        if target.exists():
            shutil.rmtree(target)
        os.replace(staging, target)
    finally:
        if staging.exists():  # pragma: no cover - crash-path hygiene
            shutil.rmtree(staging)
    return target


# ---------------------------------------------------------------------- load


def load_snapshot(path: Union[str, Path]) -> Snapshot:
    """Read one ``snap-<version>/`` directory back into a :class:`Snapshot`.

    Validates the format version; raises ``ValueError`` on unknown schemas
    or malformed layouts (missing files, inconsistent array sizes).
    """
    root = Path(path)
    meta_path = root / _META_NAME
    arrays_path = root / _ARRAYS_NAME
    if not meta_path.exists() or not arrays_path.exists():
        raise ValueError(f"{root} is not a snapshot directory")
    meta = json.loads(meta_path.read_text())
    if meta.get("schema") not in _ACCEPTED_SCHEMAS:
        raise ValueError(
            f"snapshot schema {meta.get('schema')!r} unsupported "
            f"(this build reads schemas {_ACCEPTED_SCHEMAS})"
        )
    expected_sha = meta.get("arrays_sha256")
    if expected_sha is not None:
        actual_sha = _sha256_file(arrays_path)
        if actual_sha != expected_sha:
            raise ValueError(
                f"snapshot {root.name} is corrupt: arrays.npz sha256 "
                f"{actual_sha[:12]}... does not match recorded "
                f"{str(expected_sha)[:12]}..."
            )
    network, constraints = network_from_json(json.dumps(meta["network"]))
    similarity = _similarity_from_dict(meta["similarity"])

    with np.load(arrays_path) as blob:
        counts = blob["label_counts"]
        unary = blob["unary"]
        unaries = [
            unary[node, : int(count)].copy()
            for node, count in enumerate(counts)
        ]
        shapes = blob["mat_shapes"]
        data = blob["mat_data"]
        matrices: List[np.ndarray] = []
        offset = 0
        for rows, cols in shapes:
            size = int(rows) * int(cols)
            matrices.append(
                data[offset : offset + size].reshape(int(rows), int(cols)).copy()
            )
            offset += size
        if offset != data.size:
            raise ValueError("snapshot matrix block size mismatch")
        labels = blob["labels"].astype(np.int64)
        snapshot = Snapshot(
            version=int(meta["version"]),
            network=network,
            similarity=similarity,
            constraints=constraints,
            meta=meta,
            unaries=unaries,
            edge_first=blob["edge_first"].astype(np.int64),
            edge_second=blob["edge_second"].astype(np.int64),
            edge_cid=blob["edge_cid"].astype(np.int64),
            matrices=matrices,
            messages=blob["messages"].copy(),
            labels=labels if meta.get("has_labels") else None,
            lmax=int(blob["lmax"][0]),
        )
    if len(snapshot.edge_first) * 2 != len(snapshot.messages):
        raise ValueError("snapshot message block does not match edge count")
    return snapshot


def restore_plan(snapshot: Snapshot, track_touched: bool = True) -> StreamPlan:
    """Reconstruct the live :class:`StreamPlan` a snapshot captured.

    Builds the plan straight from the saved parts — **no recompile** — so
    every plan array is byte-identical to the saved one, and the message
    and label state resume exactly.  The returned plan is fully live:
    future events patch it the same way they would have patched the
    original.
    """
    meta = snapshot.meta
    plan = StreamPlan.__new__(StreamPlan)
    plan.network = snapshot.network
    plan.similarity = snapshot.similarity
    plan.constraints = snapshot.constraints
    plan.unary_constant = float(meta["unary_constant"])
    plan.pairwise_weight = float(meta["pairwise_weight"])
    plan.service_weights = dict(meta.get("service_weights") or {})
    plan.track_touched = track_touched

    plan.touched = set()
    plan.variables = [
        (str(host), str(service)) for host, service in meta["variables"]
    ]
    plan.index = {variable: n for n, variable in enumerate(plan.variables)}
    plan.candidates = [
        snapshot.network.candidates(host, service)
        for host, service in plan.variables
    ]
    plan._unaries = list(snapshot.unaries)
    plan._matrices = list(snapshot.matrices)
    plan._matrix_meta = [
        (tuple(range_a), tuple(range_b), float(weight))
        for range_a, range_b, weight in meta["matrix_meta"]
    ]
    plan._matrix_ids = {
        key: cid for cid, key in enumerate(plan._matrix_meta) if key[0]
    }
    plan._edge_keys = [
        (
            (str(link[0]), str(link[1])),
            tuple(tag) if isinstance(tag, list) else str(tag),
        )
        for link, tag in meta["edge_keys"]
    ]
    plan._combo_cids = {
        (str(host), str(svc_lo), str(svc_hi)): int(cid)
        for host, svc_lo, svc_hi, cid in meta.get("combo_cids", ())
    }
    plan._edge_first = snapshot.edge_first.tolist()
    plan._edge_second = snapshot.edge_second.tolist()
    plan._edge_cid = snapshot.edge_cid.tolist()

    plan.plan = MRFArrays.from_parts(
        plan._unaries,
        snapshot.edge_first,
        snapshot.edge_second,
        snapshot.edge_cid,
        plan._matrices,
        lmax=snapshot.lmax,
    )
    plan.messages = snapshot.messages.copy()
    plan.labels = (
        snapshot.labels.copy() if snapshot.labels is not None else None
    )
    plan._edges_dirty = False
    plan._nodes_dirty = False
    plan.reset_dirty_counters()
    return plan


def restore_engine(
    path: Union[str, Path, Snapshot],
    solver: Optional[str] = None,
    warm_start: bool = True,
    sharded: bool = False,
    **engine_options,
) -> Tuple[DynamicDiversifier, Snapshot]:
    """Warm-restart an engine from a snapshot directory.

    Loads the snapshot, builds a :class:`DynamicDiversifier` over the
    restored network/similarity/constraints with the saved cost model, and
    swaps in the restored plan + message + label state, so the first
    :meth:`~DynamicDiversifier.solve` after a restart is warm.  ``solver``
    defaults to the one the snapshot was taken with; ``engine_options``
    are forwarded to the engine (``rebuild_fraction``, ...).  ``path``
    also accepts an already-loaded :class:`Snapshot` (the
    :func:`latest_valid_snapshot` hand-off, avoiding a second read).

    Returns ``(engine, snapshot)`` — the snapshot carries the counters
    (``events_applied``, ``wal_seq``) a resuming service continues from.
    """
    snapshot = path if isinstance(path, Snapshot) else load_snapshot(path)
    meta = snapshot.meta
    engine = DynamicDiversifier(
        snapshot.network,
        snapshot.similarity,
        solver=solver or str(meta["solver"]),
        warm_start=warm_start,
        unary_constant=float(meta["unary_constant"]),
        pairwise_weight=float(meta["pairwise_weight"]),
        service_weights=dict(meta.get("service_weights") or {}) or None,
        constraints=snapshot.constraints,
        sharded=sharded,
        **engine_options,
    )
    engine.plan = restore_plan(snapshot, track_touched=sharded)
    engine._previous = (
        engine.plan.assignment_values(snapshot.labels)
        if snapshot.labels is not None
        else None
    )
    engine._shard_cache.clear()
    if sharded:
        # Rebuild the per-shard solve cache so a recovered engine skips
        # exactly the clean shards its never-crashed twin would skip —
        # re-solving a clean shard from restored messages can land on a
        # different equal-energy labeling and break recovery parity.
        from repro.stream.incremental import _ShardEntry

        for keys, energy, lower_bound, converged in meta.get(
            "shard_cache"
        ) or []:
            frozen = frozenset(tuple(variable) for variable in keys)
            engine._shard_cache[frozen] = _ShardEntry(
                energy=float(energy),
                lower_bound=float(lower_bound),
                converged=bool(converged),
            )
    return engine, snapshot


# ----------------------------------------------------------------- directory


def latest_snapshot(directory: Union[str, Path]) -> Optional[Path]:
    """The highest-versioned snapshot in a directory, or None when empty."""
    root = Path(directory)
    if not root.is_dir():
        return None
    best: Optional[Path] = None
    best_version = -1
    for entry in root.iterdir():
        version = _snapshot_version(entry)
        if version is not None and version > best_version:
            best, best_version = entry, version
    return best


def latest_valid_snapshot(
    directory: Union[str, Path],
) -> Optional[Tuple[Path, Snapshot]]:
    """The newest snapshot that actually loads, skipping corrupt ones.

    Walks ``snap-<version>/`` directories newest-first and returns the
    first that passes every integrity check (files present, schema known,
    sha256 matching, array blocks consistent).  Corrupt or partial
    directories — a torn ``arrays.npz``, a missing ``meta.json``, a
    bit-flip — are *skipped with a warning* instead of raising, so one
    bad write never blocks ``--restore``; the WAL tail covers the gap.
    Returns ``(path, snapshot)`` or ``None`` when nothing valid exists.
    """
    root = Path(directory)
    if not root.is_dir():
        return None
    candidates = sorted(
        (
            entry
            for entry in root.iterdir()
            if _snapshot_version(entry) is not None
        ),
        key=lambda entry: _snapshot_version(entry) or 0,
        reverse=True,
    )
    for entry in candidates:
        try:
            return entry, load_snapshot(entry)
        except (
            ValueError,
            OSError,
            KeyError,
            zipfile.BadZipFile,
        ) as problem:
            _LOG.warning(
                "skipping corrupt snapshot %s: %s", entry.name, problem
            )
    return None


def prune_snapshots(directory: Union[str, Path], keep: int) -> List[Path]:
    """Delete all but the newest ``keep`` snapshots; returns what was removed."""
    root = Path(directory)
    if not root.is_dir():
        return []
    snapshots = sorted(
        (entry for entry in root.iterdir() if _snapshot_version(entry) is not None),
        key=lambda entry: _snapshot_version(entry) or 0,
    )
    removed = []
    for entry in snapshots[: max(0, len(snapshots) - keep)]:
        shutil.rmtree(entry)
        removed.append(entry)
    return removed


def _snapshot_version(path: Path) -> Optional[int]:
    """Parse ``snap-<version>`` directory names; None for anything else."""
    if not path.is_dir() or not path.name.startswith(_PREFIX):
        return None
    try:
        return int(path.name[len(_PREFIX) :])
    except ValueError:
        return None


# ------------------------------------------------------------------ internal


def _sha256_file(path: Path) -> str:
    """Hex sha256 of a file, streamed in chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _similarity_to_dict(table: SimilarityTable) -> Dict[str, object]:
    """JSON form of a similarity table (products, pairs, counts)."""
    return {
        "products": table.products,
        "pairs": [
            [a, b, value] for (a, b), value in sorted(table._pairs.items())
        ],
        "vulnerability_counts": dict(table.vulnerability_counts),
        "shared_counts": [
            [a, b, count]
            for (a, b), count in sorted(table.shared_counts.items())
        ],
    }


def _similarity_from_dict(payload: Dict[str, object]) -> SimilarityTable:
    """Inverse of :func:`_similarity_to_dict`."""
    table = SimilarityTable(
        products=[str(p) for p in payload.get("products", ())],
        vulnerability_counts={
            str(k): int(v)
            for k, v in (payload.get("vulnerability_counts") or {}).items()
        },
    )
    for a, b, value in payload.get("pairs", ()):
        table.set(str(a), str(b), float(value))
    for a, b, count in payload.get("shared_counts", ()):
        table.shared_counts[(str(a), str(b))] = int(count)
    return table
