"""Segmented, checksummed write-ahead log of the service's typed events.

Every event acknowledged by ``POST /events`` is first appended here — one
CRC32-guarded record per event, in the same ``event_to_dict`` wire form
the HTTP API speaks — so a crash loses nothing that was acknowledged
(under ``--fsync always``; ``batch`` bounds the loss window to one writer
batch).  Recovery is *snapshot + tail*: the daemon restores the newest
valid snapshot, then replays every WAL record past the snapshot's
``wal_seq`` through the ordinary ingest path, landing byte-identical to a
process that never died (``docs/service.md`` states the parity contract).

On-disk layout — ``wal-<first_seq>.log`` segments under one directory::

    RWAL0001                      8-byte segment magic
    <seq:u64><len:u32><crc:u32>   16-byte record header (little-endian)
    <payload: len bytes>          canonical-JSON event dict
    ...

The CRC covers ``seq``, ``len`` and the payload, so a torn header, a torn
payload or a bit-flip all read as *end of log*: the valid prefix is kept,
the trailing garbage is dropped with a warning, and startup is never
poisoned by a mid-record truncation.  Segments rotate at a size/record
bound; each snapshot records the last applied sequence number and
segments entirely at or below it are pruned (snapshot-anchored
compaction).

>>> import tempfile
>>> from repro.stream.events import LinkAdd
>>> with tempfile.TemporaryDirectory() as root:
...     wal = WriteAheadLog(root, fsync="off")
...     wal.append([LinkAdd(a="h0", b="h1")])
...     wal.close()
...     [seq for seq, _ in replay_wal(root)]
(1, 1)
[1]
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs.logging import get_logger
from repro.service.faults import FaultPlan, InjectedFault
from repro.stream.events import Event, event_from_dict, event_to_dict

__all__ = [
    "FSYNC_POLICIES",
    "SegmentScan",
    "WalRecord",
    "WriteAheadLog",
    "inspect_wal",
    "replay_wal",
    "scan_segment",
    "truncate_torn_tail",
    "wal_segments",
]

#: fsync policies: ``always`` = fsync every append (zero acknowledged
#: loss), ``batch`` = fsync once per writer batch (bounded loss window),
#: ``off`` = never fsync (crash-safe against process death only).
FSYNC_POLICIES = ("always", "batch", "off")

_MAGIC = b"RWAL0001"
_HEADER = struct.Struct("<QII")
_PREFIX = "wal-"
_SUFFIX = ".log"
#: upper bound on a single record's payload — anything larger reads as
#: corruption (a real event dict is a few hundred bytes).
_MAX_RECORD = 16 << 20

_LOG = get_logger("service.wal")


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: sequence number, event dict, byte offset."""

    seq: int
    event: dict
    offset: int


@dataclass
class SegmentScan:
    """Result of scanning one segment file.

    ``torn`` means the file holds trailing bytes past the last valid
    record (truncated header/payload or checksum mismatch); ``valid_bytes``
    is the prefix length that survives, ``reason`` says what broke.
    """

    path: Path
    records: List[WalRecord]
    valid_bytes: int
    torn: bool
    reason: Optional[str] = None


def _segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"{_PREFIX}{first_seq:012d}{_SUFFIX}"


def _segment_first_seq(path: Path) -> int:
    return int(path.name[len(_PREFIX) : -len(_SUFFIX)])


def wal_segments(directory: Union[str, Path]) -> List[Path]:
    """Segment files under ``directory``, ordered by first sequence number."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    names = [
        path
        for path in directory.iterdir()
        if path.name.startswith(_PREFIX)
        and path.name.endswith(_SUFFIX)
        and path.name[len(_PREFIX) : -len(_SUFFIX)].isdigit()
    ]
    return sorted(names, key=_segment_first_seq)


def scan_segment(path: Union[str, Path]) -> SegmentScan:
    """Decode one segment, stopping (not raising) at the first bad byte."""
    path = Path(path)
    data = path.read_bytes()
    if data[: len(_MAGIC)] != _MAGIC:
        return SegmentScan(path, [], 0, True, "bad segment magic")
    records: List[WalRecord] = []
    offset = len(_MAGIC)
    reason = None
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            reason = "truncated record header"
            break
        seq, length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD:
            reason = "implausible record length"
            break
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if len(payload) < length:
            reason = "truncated record payload"
            break
        expected = zlib.crc32(
            payload, zlib.crc32(struct.pack("<QI", seq, length))
        )
        if crc != expected:
            reason = "checksum mismatch"
            break
        try:
            event = json.loads(payload)
        except ValueError:
            reason = "undecodable payload"
            break
        records.append(WalRecord(seq, event, offset))
        offset += _HEADER.size + length
    return SegmentScan(path, records, offset, reason is not None, reason)


def replay_wal(
    directory: Union[str, Path], after_seq: int = 0
) -> Iterator[Tuple[int, Event]]:
    """Yield ``(seq, event)`` for every valid record past ``after_seq``.

    Stops at the first corruption (end-of-log semantics): the torn tail is
    skipped with a warning and any segments past it are ignored — recovery
    applies the longest verifiable prefix, never a poisoned suffix.
    """
    last = after_seq
    segments = wal_segments(directory)
    for position, path in enumerate(segments):
        scan = scan_segment(path)
        for record in scan.records:
            if record.seq <= after_seq:
                continue
            if record.seq <= last:
                raise ValueError(
                    f"non-monotonic WAL sequence {record.seq} in {path.name}"
                )
            last = record.seq
            yield record.seq, event_from_dict(record.event)
        if scan.torn:
            dropped = len(segments) - position - 1
            _LOG.warning(
                "dropping torn WAL tail in %s (%s) at byte %d; "
                "%d later segment(s) ignored",
                path.name,
                scan.reason,
                scan.valid_bytes,
                dropped,
            )
            break


def truncate_torn_tail(directory: Union[str, Path]) -> List[dict]:
    """Repair a WAL in place: drop torn tails, unlink post-corruption segments.

    Returns one action dict per touched file (the ``repro wal truncate``
    output); an already-clean log returns ``[]``.
    """
    actions: List[dict] = []
    end_found = False
    for path in wal_segments(directory):
        if end_found:
            path.unlink()
            actions.append({"segment": path.name, "action": "unlinked"})
            continue
        scan = scan_segment(path)
        if not scan.torn:
            continue
        end_found = True
        if scan.valid_bytes < len(_MAGIC):
            path.unlink()
            actions.append(
                {
                    "segment": path.name,
                    "action": "unlinked",
                    "reason": scan.reason,
                }
            )
            continue
        dropped = path.stat().st_size - scan.valid_bytes
        with open(path, "r+b") as handle:
            handle.truncate(scan.valid_bytes)
        actions.append(
            {
                "segment": path.name,
                "action": "truncated",
                "reason": scan.reason,
                "dropped_bytes": dropped,
                "records_kept": len(scan.records),
            }
        )
    return actions


def inspect_wal(directory: Union[str, Path]) -> List[dict]:
    """Per-segment summaries (the ``repro wal inspect`` output)."""
    rows = []
    for path in wal_segments(directory):
        scan = scan_segment(path)
        rows.append(
            {
                "segment": path.name,
                "bytes": path.stat().st_size,
                "records": len(scan.records),
                "first_seq": scan.records[0].seq if scan.records else None,
                "last_seq": scan.records[-1].seq if scan.records else None,
                "torn": scan.torn,
                "reason": scan.reason,
            }
        )
    return rows


class WriteAheadLog:
    """Appender over a directory of segments, with recovery-on-open.

    Opening an existing directory re-reads it exactly like recovery does:
    the torn tail (if any) is truncated away with a warning, segments past
    a corruption are unlinked, and appends continue from the next
    sequence number.  All methods are thread-safe — the event loop
    appends while the writer thread calls :meth:`sync`.

    Args:
        directory: segment directory, created on demand.
        fsync: one of :data:`FSYNC_POLICIES`.
        segment_bytes / segment_records: rotation bounds.
        faults: optional :class:`~repro.service.faults.FaultPlan` consulted
            at the ``wal.append`` / ``wal.fsync`` fault points.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: str = "batch",
        segment_bytes: int = 4 << 20,
        segment_records: int = 4096,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 1 or segment_records < 1:
            raise ValueError("segment bounds must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.segment_bytes = int(segment_bytes)
        self.segment_records = int(segment_records)
        self.faults = faults
        self._lock = threading.Lock()
        self._file = None
        self._dirty = False
        self._poisoned = False
        self.records_appended = 0
        self._recover_open()

    # ------------------------------------------------------------ open/close

    def _recover_open(self) -> None:
        """Truncate torn tails, drop post-corruption segments, open the end."""
        actions = truncate_torn_tail(self.directory)
        for action in actions:
            _LOG.warning(
                "WAL recovery: %s %s (%s)",
                action["action"],
                action["segment"],
                action.get("reason", "past corruption"),
            )
        segments = wal_segments(self.directory)
        last_seq = 0
        tail_records = 0
        tail_bytes = 0
        for path in segments:
            scan = scan_segment(path)
            if scan.records:
                last_seq = scan.records[-1].seq
            tail_records = len(scan.records)
            tail_bytes = scan.valid_bytes
        self._next_seq = last_seq + 1
        if (
            segments
            and tail_bytes < self.segment_bytes
            and tail_records < self.segment_records
        ):
            self._file = open(segments[-1], "ab", buffering=0)
            self._size = tail_bytes
            self._segment_records_count = tail_records
        else:
            self._open_segment()

    def _open_segment(self) -> None:
        path = _segment_path(self.directory, self._next_seq)
        self._file = open(path, "ab", buffering=0)
        self._file.write(_MAGIC)
        self._size = len(_MAGIC)
        self._segment_records_count = 0
        self._poisoned = False
        if self.fsync_policy != "off":
            self._fsync_dir()

    def close(self) -> None:
        """Flush (per policy) and close the active segment."""
        with self._lock:
            if self._file is None:
                return
            if self.fsync_policy != "off" and self._dirty:
                try:
                    self._fsync_locked()
                except OSError:
                    pass
            self._file.close()
            self._file = None

    def abandon(self) -> None:
        """Drop the file handle without syncing — the crash-simulation close.

        Data already written survives (it reached the OS page cache, which
        outlives the process), exactly as if the process had been
        ``SIGKILL``-ed; only a power loss could lose it.
        """
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    # -------------------------------------------------------------- appending

    def append(self, events: Sequence[Event]) -> Tuple[int, int]:
        """Append one record per event; return the (first, last) sequences.

        Atomic against crashes: the whole batch lands in one ``write``,
        and a failed fsync (``always`` policy) rolls the segment back to
        its pre-append length so an un-acknowledged record never becomes
        durable state.
        """
        if not events:
            raise ValueError("append needs at least one event")
        with self._lock:
            if self._file is None:
                raise RuntimeError("write-ahead log is closed")
            if self._poisoned:
                self._rotate_locked()
            action = self.faults.fire("wal.append") if self.faults else None
            if action == "error":
                raise InjectedFault("injected WAL append failure")
            first = self._next_seq
            blob = bytearray()
            for position, event in enumerate(events):
                payload = json.dumps(
                    event_to_dict(event),
                    separators=(",", ":"),
                    sort_keys=True,
                ).encode("utf-8")
                seq = first + position
                crc = zlib.crc32(
                    payload,
                    zlib.crc32(struct.pack("<QI", seq, len(payload))),
                )
                blob += _HEADER.pack(seq, len(payload), crc)
                blob += payload
            if action == "torn":
                # Simulate a crash mid-write: half the batch hits the disk,
                # then the process dies.  Recovery must drop this tail.
                self._file.write(bytes(blob[: max(1, len(blob) // 2)]))
                self.faults.crash()
            start = self._size
            with obs.span(
                "wal.append", cat="service", events=len(events), seq=first
            ):
                self._file.write(bytes(blob))
                self._size += len(blob)
                self._dirty = True
                if self.fsync_policy == "always":
                    try:
                        self._fsync_locked()
                    except OSError:
                        self._rollback_locked(start)
                        raise
            self._next_seq = first + len(events)
            self._segment_records_count += len(events)
            self.records_appended += len(events)
            if action == "crash":
                # Crash-after-append: the records are durable, then we die.
                try:
                    self._fsync_locked()
                except OSError:
                    pass
                self.faults.crash()
            if (
                self._size >= self.segment_bytes
                or self._segment_records_count >= self.segment_records
            ):
                self._rotate_locked()
            return first, self._next_seq - 1

    def _rollback_locked(self, offset: int) -> None:
        """Undo a failed append: truncate back, or poison the segment."""
        try:
            self._file.truncate(offset)
            self._size = offset
        except OSError:
            # Can't even truncate — leave the garbage behind a rotation so
            # the next append lands in a fresh segment.  The stale bytes
            # read as a torn tail and are dropped on recovery.
            self._poisoned = True

    def _fsync_locked(self) -> None:
        if self.faults and self.faults.fire("wal.fsync") == "error":
            raise InjectedFault("injected WAL fsync failure")
        os.fsync(self._file.fileno())
        self._dirty = False

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def sync(self) -> None:
        """Fsync pending appends (the ``batch`` policy's flush point)."""
        with self._lock:
            if self.fsync_policy == "off" or not self._dirty:
                return
            if self._file is None:
                return
            self._fsync_locked()

    # -------------------------------------------------- rotation / compaction

    def _rotate_locked(self) -> None:
        if self.fsync_policy != "off" and self._dirty:
            try:
                self._fsync_locked()
            except OSError:
                pass
        self._file.close()
        self._open_segment()

    def rotate(self) -> None:
        """Seal the active segment and open a fresh one."""
        with self._lock:
            if self._file is None:
                raise RuntimeError("write-ahead log is closed")
            self._rotate_locked()

    def compact(self, up_to_seq: int) -> List[Path]:
        """Unlink sealed segments wholly covered by a snapshot.

        A segment is removable when every record in it has sequence
        ``<= up_to_seq`` — i.e. its successor's first sequence is past the
        snapshot anchor.  The active segment is never removed.
        """
        removed: List[Path] = []
        with self._lock:
            segments = wal_segments(self.directory)
            for path, successor in zip(segments, segments[1:]):
                if _segment_first_seq(successor) - 1 <= up_to_seq:
                    path.unlink()
                    removed.append(path)
                else:
                    break
            if removed and self.fsync_policy != "off":
                self._fsync_dir()
        return removed

    # ---------------------------------------------------------------- reading

    def replay(self, after_seq: int = 0) -> Iterator[Tuple[int, Event]]:
        """Typed events past ``after_seq`` (see :func:`replay_wal`)."""
        return replay_wal(self.directory, after_seq=after_seq)

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest appended record (0 = empty)."""
        return self._next_seq - 1

    @property
    def segment_count(self) -> int:
        """Number of segment files currently on disk."""
        return len(wal_segments(self.directory))
