"""Configuration of the always-on diversification service.

:class:`ServiceConfig` bundles every operational knob of the ``repro
serve`` daemon — where to listen, how ingestion backpressure behaves, how
events batch into solves, and when plan snapshots land on disk — with the
validation done once at construction, so a bad flag fails at startup, not
mid-traffic.  ``docs/service.md`` documents each knob from the operator's
side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.obs.logging import LEVELS

__all__ = ["ServiceConfig"]


@dataclass
class ServiceConfig:
    """Operational knobs of a :class:`~repro.service.app.DiversificationService`.

    Attributes:
        host / port: HTTP listen address.  Port 0 binds an ephemeral port
            (the bound port is reported by ``DiversificationService.port``)
            — the form the tests and benchmarks use.
        solver: ``"trws"`` (default) or ``"bp"`` — forwarded to the
            underlying :class:`~repro.stream.incremental.DynamicDiversifier`.
        sharded: re-solve only the connected-component shards each batch
            touches (the engine's ``sharded=True`` mode).
        warm_start: disable to force a cold rebuild+solve per batch — the
            measurement baseline, never the production setting.
        batch_max: events drained from the ingestion queue per solve.  The
            writer always takes everything already queued (up to this cap)
            before solving once, so bursts amortise the re-solve instead
            of paying one per event.
        high_water: ingestion backpressure threshold.  While the queue
            holds this many pending events, ``POST /events`` answers
            ``429 Too Many Requests`` with a ``Retry-After`` header
            instead of queueing more.
        retry_after: the ``Retry-After`` value (seconds) of a 429.
        snapshot_dir: directory for plan snapshots (created on demand).
            ``None`` disables snapshotting entirely, including the
            shutdown snapshot.
        snapshot_every: write a snapshot every N solves (0 = only the
            graceful-shutdown snapshot).
        keep_snapshots: retention — older snapshots beyond this many are
            deleted after each successful write.
        wal_dir: directory for the write-ahead log of acknowledged
            events (:mod:`repro.service.wal`).  ``None`` disables the
            WAL — restarts then recover from snapshots alone, losing
            whatever arrived after the last one.
        fsync: WAL durability policy — ``"always"`` (fsync every append;
            zero acknowledged loss across SIGKILL), ``"batch"``
            (default; fsync once per writer batch) or ``"off"`` (never;
            survives process death but not power loss).
        wal_segment_bytes / wal_segment_records: WAL segment rotation
            bounds.
        fault_plan: optional deterministic fault-injection script
            (:class:`~repro.service.faults.FaultPlan`) consulted at the
            WAL/solve/snapshot fault points — the testing hook behind
            ``repro serve --fault-plan``.  Never set in production.
        engine_options: extra keyword arguments forwarded verbatim to
            :class:`~repro.stream.incremental.DynamicDiversifier`
            (``rebuild_fraction``, ``warm_iterations``, cost model, ...).
        log_level: threshold of the service's structured log output
            (``"debug"`` / ``"info"`` / ``"warning"`` / ``"error"``) —
            the ``--log-level`` flag of ``repro serve``.
        trace_tail: keep the most recent N trace events in an in-process
            ring buffer and serve them on ``GET /debug/trace`` (Chrome
            trace-event JSON).  0 (default) disables tracing entirely —
            the instrumentation hooks then cost one pointer check.  When
            an ambient trace is already active (``repro trace
            serve-replay``) the service joins it instead of starting its
            own tail.
        solve_buckets: override the upper bounds (seconds) of the solve-
            latency histograms; ``None`` keeps
            :data:`repro.service.metrics.SOLVE_BUCKETS`.  Must be
            positive and strictly ascending.

    >>> config = ServiceConfig(port=0, batch_max=16)
    >>> config.high_water
    1024
    >>> ServiceConfig(batch_max=0)
    Traceback (most recent call last):
        ...
    ValueError: batch_max must be >= 1
    """

    host: str = "127.0.0.1"
    port: int = 8351
    solver: str = "trws"
    sharded: bool = False
    warm_start: bool = True
    batch_max: int = 64
    high_water: int = 1024
    retry_after: float = 1.0
    snapshot_dir: Optional[Union[str, Path]] = None
    snapshot_every: int = 0
    keep_snapshots: int = 3
    wal_dir: Optional[Union[str, Path]] = None
    fsync: str = "batch"
    wal_segment_bytes: int = 4 << 20
    wal_segment_records: int = 4096
    fault_plan: Optional[object] = None
    engine_options: Dict[str, object] = field(default_factory=dict)
    log_level: str = "info"
    trace_tail: int = 0
    solve_buckets: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.solver not in ("trws", "bp"):
            raise ValueError(
                f"solver must be 'trws' or 'bp', got {self.solver!r}"
            )
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.high_water < 1:
            raise ValueError("high_water must be >= 1")
        if self.retry_after <= 0:
            raise ValueError("retry_after must be positive")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.keep_snapshots < 1:
            raise ValueError("keep_snapshots must be >= 1")
        if self.snapshot_dir is not None:
            self.snapshot_dir = Path(self.snapshot_dir)
        if self.wal_dir is not None:
            self.wal_dir = Path(self.wal_dir)
        if self.fsync not in ("always", "batch", "off"):
            raise ValueError(
                f"fsync must be 'always', 'batch' or 'off', got {self.fsync!r}"
            )
        if self.wal_segment_bytes < 1:
            raise ValueError("wal_segment_bytes must be >= 1")
        if self.wal_segment_records < 1:
            raise ValueError("wal_segment_records must be >= 1")
        if self.log_level not in LEVELS:
            raise ValueError(
                f"log_level must be one of {sorted(LEVELS)}, "
                f"got {self.log_level!r}"
            )
        if self.trace_tail < 0:
            raise ValueError("trace_tail must be >= 0")
        if self.solve_buckets is not None:
            buckets = tuple(float(bound) for bound in self.solve_buckets)
            if not buckets or any(bound <= 0 for bound in buckets):
                raise ValueError("solve_buckets must be positive")
            if any(a >= b for a, b in zip(buckets, buckets[1:])):
                raise ValueError("solve_buckets must be strictly ascending")
            self.solve_buckets = buckets

    @property
    def snapshots_enabled(self) -> bool:
        """True when a snapshot directory is configured."""
        return self.snapshot_dir is not None

    @property
    def wal_enabled(self) -> bool:
        """True when a write-ahead log directory is configured."""
        return self.wal_dir is not None
