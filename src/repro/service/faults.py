"""Deterministic fault injection for the service durability tier.

A :class:`FaultPlan` is a small, seeded script of failures — *crash after
the Nth WAL append*, *fsync raises OSError*, *torn write*, *solver
exception*, *snapshot failure mid-stage* — that the write-ahead log, the
writer loop and the snapshot writer consult at well-defined **fault
points**.  Because the plan is data (parsed from a compact spec string or
drawn from a seeded RNG), the same failure fires at exactly the same
event on every run, which is what makes the crash-recovery parity tests
in ``tests/test_service_recovery.py`` and the ``--crash`` leg of
``tools/service_smoke.py`` reproducible instead of flaky.

Fault points and the actions they honour:

==============  ==========================  =================================
point           actions                     fired by
==============  ==========================  =================================
``wal.append``  ``crash``/``torn``/``error``  :meth:`WriteAheadLog.append`
``wal.fsync``   ``error``                     every WAL ``fsync`` call
``solve``       ``error``/``crash``           the writer loop, before solving
                                              (``crash`` also drives the
                                              dual outer-round drill)
``snapshot``    ``error``/``crash``           ``save_snapshot``, post-stage,
                                              pre-rename
==============  ==========================  =================================

Actions: ``error`` raises :class:`InjectedFault` (an ``OSError``) at the
point; ``torn`` writes only a prefix of the record then crashes; ``crash``
stops the process — ``SIGKILL`` for a real daemon (``hard=True``, the
``repro serve --fault-plan`` path) or an :class:`InjectedCrash` for
in-process tests.  :class:`InjectedCrash` derives from ``BaseException``
on purpose: ordinary ``except Exception`` recovery code must not swallow
a simulated machine death.

>>> plan = parse_fault_plan("wal.append:crash:3")
>>> plan.fire("wal.append"), plan.fire("wal.append")
(None, None)
>>> plan.fire("wal.append")
'crash'
>>> plan.fire("wal.append") is None
True
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "parse_fault_plan",
    "random_fault_plan",
]

#: fault points the service consults, mapped to the actions each honours.
FAULT_POINTS = {
    "wal.append": ("crash", "torn", "error"),
    "wal.fsync": ("error",),
    "solve": ("error", "crash"),
    "snapshot": ("error", "crash"),
}


class InjectedFault(OSError):
    """The I/O-level failure an ``error`` action raises at a fault point."""


class InjectedCrash(BaseException):
    """A simulated process death (``crash``/``torn`` in soft mode).

    Derives from ``BaseException`` so graceful-degradation handlers
    (``except Exception``) cannot absorb it — a crash is supposed to take
    the process down, and the in-process emulation must behave the same.
    """


@dataclass
class FaultRule:
    """One scripted failure: fire ``action`` at hits [after, after+count).

    ``count`` is the number of consecutive hits that fail (default 1);
    ``count=0`` means *every* hit from ``after`` onwards fails.
    """

    point: str
    action: str
    after: int = 1
    count: int = 1
    hits: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"expected one of {sorted(FAULT_POINTS)}"
            )
        if self.action not in FAULT_POINTS[self.point]:
            raise ValueError(
                f"point {self.point!r} does not support action "
                f"{self.action!r}; supported: {FAULT_POINTS[self.point]}"
            )
        if self.after < 1:
            raise ValueError("after must be >= 1")
        if self.count < 0:
            raise ValueError("count must be >= 0")

    def check(self) -> Optional[str]:
        """Count one hit; return the action when this hit is scripted."""
        self.hits += 1
        if self.hits < self.after:
            return None
        if self.count and self.hits >= self.after + self.count:
            return None
        return self.action


class FaultPlan:
    """A deterministic script of failures consulted at fault points.

    Args:
        rules: the scripted failures, each counting its own hits.
        hard: when True, ``crash()`` kills the process with ``SIGKILL``
            (real daemon runs); when False it raises
            :class:`InjectedCrash` (in-process tests).
    """

    def __init__(self, rules: List[FaultRule], hard: bool = False) -> None:
        self.rules = list(rules)
        self.hard = hard

    def fire(self, point: str) -> Optional[str]:
        """Count one hit at ``point``; return a scripted action or None."""
        for rule in self.rules:
            if rule.point != point:
                continue
            action = rule.check()
            if action is not None:
                return action
        return None

    def crash(self) -> None:
        """Die — for real (``SIGKILL``) or by raising :class:`InjectedCrash`."""
        if self.hard:
            os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedCrash("injected crash")

    def __repr__(self) -> str:
        specs = ",".join(
            f"{r.point}:{r.action}:{r.after}"
            + (f":{r.count}" if r.count != 1 else "")
            for r in self.rules
        )
        return f"FaultPlan({specs!r}, hard={self.hard})"


def parse_fault_plan(spec: str, hard: bool = False) -> FaultPlan:
    """Parse a compact fault-plan spec into a :class:`FaultPlan`.

    The spec is a comma-separated list of ``point:action[:after[:count]]``
    clauses — ``after`` is the 1-based hit that fails (default 1), and
    ``count`` how many consecutive hits fail from there (default 1,
    ``0`` = forever).  This is the format ``repro serve --fault-plan``
    accepts.

    >>> plan = parse_fault_plan("wal.fsync:error:2, solve:error:1:2")
    >>> len(plan.rules)
    2
    """
    rules = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(
                f"bad fault clause {clause!r}; "
                "expected point:action[:after[:count]]"
            )
        point, action = parts[0], parts[1]
        after = int(parts[2]) if len(parts) > 2 else 1
        count = int(parts[3]) if len(parts) > 3 else 1
        rules.append(FaultRule(point, action, after=after, count=count))
    if not rules:
        raise ValueError("empty fault plan")
    return FaultPlan(rules, hard=hard)


def random_fault_plan(
    seed: int, horizon: int, hard: bool = False
) -> FaultPlan:
    """A seeded single-crash plan: die on a random append within ``horizon``.

    The crash position is drawn deterministically from ``seed``, so a
    property-style test sweeping seeds explores different kill points
    while every individual run stays exactly reproducible.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    position = random.Random(seed).randint(1, horizon)
    return FaultPlan(
        [FaultRule("wal.append", "crash", after=position)], hard=hard
    )
