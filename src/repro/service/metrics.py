"""Operational metrics of the diversification service.

:class:`ServiceMetrics` is a tiny in-process registry — counters, gauges,
labeled escalation counters, a build-info gauge and two latency
histograms — rendered in the Prometheus text exposition format by
:meth:`ServiceMetrics.render` (the body of ``GET /metrics``).  No client
library: the format is a handful of lines of string building, and the
service has exactly one exporter.  All methods are thread-safe; the
writer thread records solves while the event loop renders scrapes.

``docs/service.md`` carries the metric glossary and
``docs/observability.md`` the cross-layer picture.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ServiceMetrics", "SOLVE_BUCKETS"]

#: default upper bounds (seconds) of the solve-latency histogram buckets;
#: the terminal +inf bucket is implicit.  Spans sub-millisecond warm
#: re-solves of small shards up to multi-second cold rebuilds of large
#: estates.  ``ServiceConfig.solve_buckets`` overrides per deployment.
SOLVE_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: counter names pre-registered so ``/metrics`` always exposes the full
#: glossary (a counter that never fired still scrapes as 0).
_COUNTERS = (
    "events_ingested_total",
    "events_rejected_total",
    "events_failed_total",
    "events_applied_total",
    "solves_total",
    "solves_warm_total",
    "solves_cold_total",
    "reads_total",
    "snapshots_total",
    "snapshot_failures_total",
    "wal_appends_total",
    "wal_records_total",
    "wal_replayed_total",
    "wal_failures_total",
    "writer_failures_total",
    "dead_letter_total",
)

_GAUGES = (
    "queue_depth",
    "queue_high_water",
    "plan_nodes",
    "plan_edges",
    "wal_last_seq",
    "wal_segments",
)

#: escalation reasons pre-registered so every ``repro_escalations_total``
#: series scrapes from 0 (see ``StreamSolveResult.escalation``).
_ESCALATIONS = (
    "first_solve",
    "warm_disabled",
    "node_churn",
    "edge_churn",
    "mask_churn",
    "cost_jump",
    "stranded",
    "forced",
)

_PREFIX = "repro_"


class _Histogram:
    """One cumulative-bucket latency histogram (caller holds the lock)."""

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        self.name = name
        self.bounds = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.observations = 0

    def observe(self, seconds: float) -> None:
        """Record one latency sample."""
        for position, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[position] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += seconds
        self.observations += 1

    def render(self) -> List[str]:
        """Prometheus text-format lines for this histogram."""
        lines = [f"# TYPE {_PREFIX}{self.name} histogram"]
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            lines.append(
                f'{_PREFIX}{self.name}_bucket{{le="{bound}"}} {cumulative}'
            )
        cumulative += self.counts[-1]
        lines.append(f'{_PREFIX}{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{_PREFIX}{self.name}_sum {self.total:.6f}")
        lines.append(f"{_PREFIX}{self.name}_count {self.observations}")
        return lines


class ServiceMetrics:
    """Thread-safe counters, gauges and solve-latency histograms.

    Args:
        solve_buckets: upper bounds (seconds) of both latency histograms
            (batch solves and per-shard solves); ``None`` keeps
            :data:`SOLVE_BUCKETS`.

    >>> metrics = ServiceMetrics()
    >>> metrics.inc("solves_total")
    >>> metrics.observe_solve(0.003)
    >>> metrics.counters()["solves_total"]
    1
    >>> 'repro_solves_total 1' in metrics.render()
    True
    >>> metrics.inc_escalation("cost_jump")
    >>> 'repro_escalations_total{reason="cost_jump"} 1' in metrics.render()
    True
    """

    def __init__(self, solve_buckets: Optional[Sequence[float]] = None) -> None:
        buckets = tuple(solve_buckets) if solve_buckets else SOLVE_BUCKETS
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self._gauges: Dict[str, float] = {name: 0.0 for name in _GAUGES}
        self._escalations: Dict[str, int] = {
            reason: 0 for reason in _ESCALATIONS
        }
        self._solve = _Histogram("solve_seconds", buckets)
        self._shard_solve = _Histogram("shard_solve_seconds", buckets)
        self._build_info: Dict[str, str] = {}

    # ------------------------------------------------------------- recording

    def inc(self, name: str, amount: int = 1) -> None:
        """Add to a counter (created on first use if unregistered)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def inc_escalation(self, reason: str) -> None:
        """Count one escalation/cold-solve trigger by reason label."""
        with self._lock:
            self._escalations[reason] = self._escalations.get(reason, 0) + 1

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to an absolute value."""
        with self._lock:
            self._gauges[name] = float(value)

    def set_build_info(self, **labels: object) -> None:
        """Set the ``repro_build_info`` labels (version, solver, mode...).

        Rendered as the conventional constant-1 info gauge so dashboards
        can join deployment metadata onto every other series.
        """
        with self._lock:
            self._build_info = {
                name: str(value) for name, value in sorted(labels.items())
            }

    def observe_solve(self, seconds: float) -> None:
        """Record one batch-solve latency into the histogram."""
        with self._lock:
            self._solve.observe(seconds)

    def observe_shard_solve(self, seconds: float) -> None:
        """Record one dirty-shard solve latency (sharded engines only)."""
        with self._lock:
            self._shard_solve.observe(seconds)

    # --------------------------------------------------------------- reading

    def counters(self) -> Dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def escalations(self) -> Dict[str, int]:
        """A point-in-time copy of the per-reason escalation counters."""
        with self._lock:
            return dict(self._escalations)

    def render(self) -> str:
        """The Prometheus text-format exposition (the ``/metrics`` body).

        Counters and gauges render as ``repro_<name> <value>``; escalation
        counters as ``repro_escalations_total{reason="..."}``; both latency
        histograms render cumulatively with ``le`` labels plus the
        ``_sum``/``_count`` pair; ``repro_build_info`` is the constant-1
        labeled info gauge.
        """
        with self._lock:
            lines = []
            for name in sorted(self._counters):
                lines.append(f"# TYPE {_PREFIX}{name} counter")
                lines.append(f"{_PREFIX}{name} {self._counters[name]}")
            lines.append(f"# TYPE {_PREFIX}escalations_total counter")
            for reason in sorted(self._escalations):
                lines.append(
                    f'{_PREFIX}escalations_total{{reason="{reason}"}} '
                    f"{self._escalations[reason]}"
                )
            for name in sorted(self._gauges):
                value = self._gauges[name]
                rendered = int(value) if float(value).is_integer() else value
                lines.append(f"# TYPE {_PREFIX}{name} gauge")
                lines.append(f"{_PREFIX}{name} {rendered}")
            if self._build_info:
                labels = ",".join(
                    f'{name}="{value}"'
                    for name, value in self._build_info.items()
                )
                lines.append(f"# TYPE {_PREFIX}build_info gauge")
                lines.append(f"{_PREFIX}build_info{{{labels}}} 1")
            lines.extend(self._solve.render())
            lines.extend(self._shard_solve.render())
            return "\n".join(lines) + "\n"
