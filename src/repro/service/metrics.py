"""Operational metrics of the diversification service.

:class:`ServiceMetrics` is a tiny in-process registry — counters, gauges
and one fixed-bucket latency histogram — rendered in the Prometheus text
exposition format by :meth:`ServiceMetrics.render` (the body of ``GET
/metrics``).  No client library: the format is five lines of string
building, and the service has exactly one exporter.  All methods are
thread-safe; the writer thread records solves while the event loop renders
scrapes.

``docs/service.md`` carries the metric glossary.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

__all__ = ["ServiceMetrics", "SOLVE_BUCKETS"]

#: upper bounds (seconds) of the solve-latency histogram buckets; the
#: terminal +inf bucket is implicit.  Spans sub-millisecond warm re-solves
#: of small shards up to multi-second cold rebuilds of large estates.
SOLVE_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: counter names pre-registered so ``/metrics`` always exposes the full
#: glossary (a counter that never fired still scrapes as 0).
_COUNTERS = (
    "events_ingested_total",
    "events_rejected_total",
    "events_failed_total",
    "events_applied_total",
    "solves_total",
    "solves_warm_total",
    "solves_cold_total",
    "reads_total",
    "snapshots_total",
)

_GAUGES = ("queue_depth", "queue_high_water", "plan_nodes", "plan_edges")

_PREFIX = "repro_"


class ServiceMetrics:
    """Thread-safe counters, gauges and a solve-latency histogram.

    >>> metrics = ServiceMetrics()
    >>> metrics.inc("solves_total")
    >>> metrics.observe_solve(0.003)
    >>> metrics.counters()["solves_total"]
    1
    >>> 'repro_solves_total 1' in metrics.render()
    True
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self._gauges: Dict[str, float] = {name: 0.0 for name in _GAUGES}
        self._buckets: List[int] = [0] * (len(SOLVE_BUCKETS) + 1)
        self._solve_sum = 0.0
        self._solve_count = 0

    # ------------------------------------------------------------- recording

    def inc(self, name: str, amount: int = 1) -> None:
        """Add to a counter (created on first use if unregistered)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to an absolute value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe_solve(self, seconds: float) -> None:
        """Record one solve latency into the histogram."""
        with self._lock:
            for position, bound in enumerate(SOLVE_BUCKETS):
                if seconds <= bound:
                    self._buckets[position] += 1
                    break
            else:
                self._buckets[-1] += 1
            self._solve_sum += seconds
            self._solve_count += 1

    # --------------------------------------------------------------- reading

    def counters(self) -> Dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def render(self) -> str:
        """The Prometheus text-format exposition (the ``/metrics`` body).

        Counters and gauges render as ``repro_<name> <value>``; the solve
        histogram renders cumulatively as ``repro_solve_seconds_bucket``
        with ``le`` labels plus the ``_sum``/``_count`` pair.
        """
        with self._lock:
            lines = []
            for name in sorted(self._counters):
                lines.append(f"# TYPE {_PREFIX}{name} counter")
                lines.append(f"{_PREFIX}{name} {self._counters[name]}")
            for name in sorted(self._gauges):
                value = self._gauges[name]
                rendered = int(value) if float(value).is_integer() else value
                lines.append(f"# TYPE {_PREFIX}{name} gauge")
                lines.append(f"{_PREFIX}{name} {rendered}")
            lines.append(f"# TYPE {_PREFIX}solve_seconds histogram")
            cumulative = 0
            for bound, count in zip(SOLVE_BUCKETS, self._buckets):
                cumulative += count
                lines.append(
                    f'{_PREFIX}solve_seconds_bucket{{le="{bound}"}} {cumulative}'
                )
            cumulative += self._buckets[-1]
            lines.append(
                f'{_PREFIX}solve_seconds_bucket{{le="+Inf"}} {cumulative}'
            )
            lines.append(f"{_PREFIX}solve_seconds_sum {self._solve_sum:.6f}")
            lines.append(f"{_PREFIX}solve_seconds_count {self._solve_count}")
            return "\n".join(lines) + "\n"
