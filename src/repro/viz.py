"""Text and Graphviz visualisation of networks and assignments.

No plotting dependencies: :func:`to_dot` emits Graphviz DOT source (render
with ``dot -Tpng``), and :func:`ascii_summary` prints a terminal-friendly
overview.  Both can colour-grade edges by the assigned-product similarity,
which is how Fig. 4-style "where is my network still fragile?" pictures
are produced from a :class:`~repro.core.diversify.DiversificationResult`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable

__all__ = ["to_dot", "ascii_summary"]


def to_dot(
    network: Network,
    assignment: Optional[ProductAssignment] = None,
    similarity: Optional[SimilarityTable] = None,
    zones: Optional[Mapping[str, Sequence[str]]] = None,
    title: str = "network",
) -> str:
    """Render the network as Graphviz DOT.

    Args:
        assignment: when given, each host's label lists its products.
        similarity: when given (with ``assignment``), edges are coloured by
            the mean assigned-product similarity across shared services —
            green (diverse) through red (similar) — so mono-culture
            corridors stand out.
        zones: optional zone → hosts grouping rendered as clusters (the
            case study passes its ``ZONES``).
        title: graph name / label.
    """
    lines = [f'graph "{_escape(title)}" {{']
    lines.append('  graph [label="%s", fontsize=18, style=rounded];' % _escape(title))
    lines.append("  node [shape=box, style=rounded, fontsize=10];")

    zone_of: Dict[str, str] = {}
    if zones:
        for zone, hosts in zones.items():
            for host in hosts:
                zone_of[host] = zone
        for index, (zone, hosts) in enumerate(zones.items()):
            lines.append(f"  subgraph cluster_{index} {{")
            lines.append(f'    label="{_escape(zone)}"; color=gray;')
            for host in hosts:
                if host in network:
                    lines.append(f"    {_node_line(network, host, assignment)}")
            lines.append("  }")
    for host in network.hosts:
        if host not in zone_of:
            lines.append(f"  {_node_line(network, host, assignment)}")

    for a, b in network.links:
        attributes = ""
        if assignment is not None and similarity is not None:
            value = _edge_similarity(network, assignment, similarity, a, b)
            if value is not None:
                colour = _heat_colour(value)
                attributes = (
                    f' [color="{colour}", penwidth={1 + 3 * value:.2f},'
                    f' tooltip="similarity {value:.3f}"]'
                )
        lines.append(f'  "{_escape(a)}" -- "{_escape(b)}"{attributes};')
    lines.append("}")
    return "\n".join(lines)


def ascii_summary(
    network: Network,
    assignment: Optional[ProductAssignment] = None,
    similarity: Optional[SimilarityTable] = None,
    top_edges: int = 10,
) -> str:
    """Terminal overview: size, degree stats, and the most similar edges."""
    degrees = [network.degree(host) for host in network.hosts]
    lines = [
        f"network: {len(network)} hosts, {network.edge_count()} links, "
        f"{network.variable_count()} (host, service) installations",
    ]
    if degrees:
        lines.append(
            f"degree: min {min(degrees)}, max {max(degrees)}, "
            f"mean {sum(degrees) / len(degrees):.2f}"
        )
    if assignment is not None and similarity is not None:
        scored = []
        for a, b in network.links:
            value = _edge_similarity(network, assignment, similarity, a, b)
            if value is not None:
                scored.append((value, a, b))
        scored.sort(reverse=True)
        lines.append(f"most similar edges (top {min(top_edges, len(scored))}):")
        for value, a, b in scored[:top_edges]:
            lines.append(f"  {a} -- {b}: mean similarity {value:.3f}")
    return "\n".join(lines)


def _node_line(
    network: Network, host: str, assignment: Optional[ProductAssignment]
) -> str:
    if assignment is None:
        label = host
    else:
        picks = assignment.products_at(host)
        products = "\\n".join(picks[s] for s in network.services_of(host) if s in picks)
        label = f"{host}\\n{products}" if products else host
    return f'"{_escape(host)}" [label="{label}"];'


def _edge_similarity(
    network: Network,
    assignment: ProductAssignment,
    similarity: SimilarityTable,
    a: str,
    b: str,
) -> Optional[float]:
    values = []
    for service in network.shared_services(a, b):
        product_a = assignment.get(a, service)
        product_b = assignment.get(b, service)
        if product_a is not None and product_b is not None:
            values.append(similarity.get(product_a, product_b))
    if not values:
        return None
    return sum(values) / len(values)


def _heat_colour(value: float) -> str:
    """Green (0) → yellow (0.5) → red (1) in HTML hex."""
    value = min(1.0, max(0.0, value))
    if value < 0.5:
        red = int(255 * (2 * value))
        green = 200
    else:
        red = 255
        green = int(200 * (2 - 2 * value))
    return f"#{red:02x}{green:02x}30"


def _escape(text: str) -> str:
    return text.replace('"', r"\"")
